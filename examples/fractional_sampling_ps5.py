"""Fractional sampling on a degree-5 power sum (§4.3, Fig. 8).

With integer samples only, the high-order terms of ps5 dominate and the
low-order coefficients cannot be recovered.  Relaxing the initial
values of (x, y) to the rational domain and sampling offsets on a 0.5
grid produces samples where all terms are on the same level, after
which the invariant 30x = 6y^5 + 15y^4 + 10y^3 - y is learned.

Usage:  python examples/fractional_sampling_ps5.py
"""

from repro.bench.nla import nla_problem
from repro.api import InvariantService
from repro.infer import InferenceConfig
from repro.sampling import collect_traces, fractional_inputs, loop_dataset, relax_initializers


def main() -> None:
    problem = nla_problem("ps5")

    # Show the relaxation itself: x = 0 + x__frac, y = 0 + y__frac.
    relaxed, names = relax_initializers(problem.program, ["x", "y"])
    print("relaxed initializers:", names)
    inputs = fractional_inputs([{"k": 3}], names, interval=0.5, limit=12)
    traces = collect_traces(relaxed, inputs)
    states = loop_dataset(traces, 0, max_states=8)
    print("fractionally sampled loop states (note non-integer y):")
    for state in states[:6]:
        print("  ", {k: str(v) for k, v in state.items() if not k.endswith("__frac")})

    # Full pipeline with fractional sampling (enabled by the problem).
    result = InvariantService(InferenceConfig(max_epochs=1500)).solve(problem)
    print(f"\nps5 solved: {result.solved} in {result.runtime_seconds:.1f}s")
    print("invariant:", result.invariant(0))

    # Ablation: the same problem with fractional sampling disabled.
    ablated = InvariantService(
        InferenceConfig(
            max_epochs=1500,
            fractional_sampling=False,
            dropout_schedule=(0.6, 0.7),
        )
    ).solve(problem)
    print(f"without fractional sampling: solved = {ablated.solved}")


if __name__ == "__main__":
    main()
