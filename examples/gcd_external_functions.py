"""Invariants over external function calls (§5.3): lcm2 and gcd.

The lcm2 loop maintains a*u + b*v == 2*x*y together with the
non-polynomial fact gcd(a, b) == gcd(x, y).  External functions are
sampled during execution and appear as extended terms (``gcd(a,b)``)
in the candidate basis, so the G-CLN learns constraints over them like
any other term.

Usage:  python examples/gcd_external_functions.py
"""

from repro.bench.nla import nla_problem
from repro.api import InvariantService
from repro.sampling import collect_traces, loop_dataset
from repro.sampling.termgen import extend_state


def main() -> None:
    problem = nla_problem("lcm2")
    print("external terms:", [e.name for e in problem.externals])

    # Peek at the extended samples the model trains on.
    traces = collect_traces(problem.program, problem.train_inputs[:20])
    states = loop_dataset(traces, 0, max_states=5)
    for state in states:
        extended = extend_state(state, problem.externals)
        print("  sample:", {k: extended[k] for k in ("a", "b", "u", "v", "gcd(a,b)", "gcd(x,y)")})

    result = InvariantService().solve(problem)
    print(f"\nlcm2 solved: {result.solved} in {result.runtime_seconds:.1f}s")
    print("invariant:", result.invariant(0))
    # SolveResult atoms are pre-rendered strings.
    gcd_atoms = [a for a in result.loops[0].sound_atoms if "gcd" in a]
    print("gcd-involving atoms:", gcd_atoms)


if __name__ == "__main__":
    main()
