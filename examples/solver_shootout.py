"""Compare every registered solver on one problem, streaming events.

Demonstrates the three pillars of the public API:

* the **registry** — iterate ``available_solvers()`` and dispatch by
  name, no per-strategy code;
* the **service** — one long-lived :class:`InvariantService` whose
  shared trace cache makes the second and later solvers skip program
  interpretation entirely (watch ``cache_stats``);
* the **event bus** — a subscriber receives typed lifecycle events;
  here we aggregate ``StageTimed`` events into a per-solver profile.

Usage:  python examples/solver_shootout.py
"""

from collections import defaultdict

from repro import InferenceConfig, InvariantService, Problem
from repro.api import StageTimed, available_solvers

SOURCE = """
program cubes;
input k;
assume (k >= 0);
n = 0; x = 0; y = 1; z = 6;
while (n < k) { n = n + 1; x = x + y; y = y + z; z = z + 6; }
assert (z == 6 * n + 6);
"""


def main() -> None:
    problem = Problem(
        name="cubes",
        source=SOURCE,
        train_inputs=[{"k": value} for value in range(0, 20)],
        max_degree=2,
        ground_truth={
            0: ["z == 6 * n + 6", "y == 3 * n * n + 3 * n + 1"],
        },
    )

    service = InvariantService(InferenceConfig(max_epochs=1200))
    profile: dict[tuple[str, str], float] = defaultdict(float)
    service.subscribe(
        lambda e: profile.__setitem__(
            (e.solver, e.stage), profile[(e.solver, e.stage)] + e.seconds
        ),
        kinds=(StageTimed,),
    )

    print(f"{'solver':<16} {'solved':<7} {'time':>7}  invariant")
    for name in available_solvers():
        result = service.solve(problem, solver=name)
        print(
            f"{name:<16} {str(result.solved):<7} "
            f"{result.runtime_seconds:6.1f}s  {result.invariant(0)[:60]}"
        )

    print("\nper-stage profile (seconds):")
    for (solver, stage), seconds in sorted(profile.items()):
        if seconds > 0.005:
            print(f"  {solver:<16} {stage:<8} {seconds:6.2f}")
    print(f"\nshared cache: {service.cache_stats}")


if __name__ == "__main__":
    main()
