"""Quickstart: infer a nonlinear loop invariant end to end.

Runs the full G-CLN pipeline on the power-sum loop ``ps2`` (Fig. 8a's
little sibling) through the public API: create an
:class:`~repro.api.service.InvariantService`, solve, and read the
structured :class:`~repro.api.solver.SolveResult`.  The same service
call with ``solver="numinv"`` (or any name from
``python -m repro solvers``) runs a baseline under the same schema.

Usage:  python examples/quickstart.py
"""

from repro import InferenceConfig, InvariantService, Problem

SOURCE = """
program ps2;
input k;
assume (k >= 0);
x = 0; y = 0;
while (y < k) { y = y + 1; x = x + y; }
assert (2 * x == y * y + y);
"""


def main() -> None:
    problem = Problem(
        name="ps2",
        source=SOURCE,
        train_inputs=[{"k": value} for value in range(0, 25)],
        check_inputs=[{"k": value} for value in range(0, 60, 2)],
        max_degree=2,
        ground_truth={0: ["2 * x == y * y + y"]},
    )
    service = InvariantService(InferenceConfig(max_epochs=1500))
    result = service.solve(problem)  # solver="gcln" is the default

    print(f"problem:   {problem.name}")
    print(f"solved:    {result.solved} "
          f"(in {result.runtime_seconds:.1f}s, {result.attempts} attempt(s))")
    for loop in result.loops:
        print(f"loop {loop.loop_index} invariant: {loop.invariant}")
        print(f"  ground truth implied: {loop.ground_truth_implied}")
    stages = result.to_dict()["stage_timings"]
    print("stage profile: "
          + ", ".join(f"{k}={v:.2f}s" for k, v in stages.items()))


if __name__ == "__main__":
    main()
