"""Quickstart: infer a nonlinear loop invariant end to end.

Runs the full G-CLN pipeline on the power-sum loop ``ps2`` (Fig. 8a's
little sibling): sample traces, train the gated CLN, extract and check
the invariant 2x = y^2 + y.

Usage:  python examples/quickstart.py
"""

from repro import InferenceConfig, Problem, format_formula, infer_invariants

SOURCE = """
program ps2;
input k;
assume (k >= 0);
x = 0; y = 0;
while (y < k) { y = y + 1; x = x + y; }
assert (2 * x == y * y + y);
"""


def main() -> None:
    problem = Problem(
        name="ps2",
        source=SOURCE,
        train_inputs=[{"k": value} for value in range(0, 25)],
        check_inputs=[{"k": value} for value in range(0, 60, 2)],
        max_degree=2,
        ground_truth={0: ["2 * x == y * y + y"]},
    )
    config = InferenceConfig(max_epochs=1500)
    result = infer_invariants(problem, config)

    print(f"problem:   {problem.name}")
    print(f"solved:    {result.solved} "
          f"(in {result.runtime_seconds:.1f}s, {result.attempts} attempt(s))")
    for loop in result.loops:
        print(f"loop {loop.loop_index} invariant: "
              f"{format_formula(loop.invariant)}")
        print(f"  ground truth implied: {loop.ground_truth_implied}")


if __name__ == "__main__":
    main()
