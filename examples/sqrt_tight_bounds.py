"""Tight inequality bounds with PBQU units (Fig. 1b / Fig. 10).

The integer square-root loop needs the *tight* quadratic bound
n >= a^2 — infinitely many looser bounds fit the data but cannot verify
the postcondition.  This example trains the PBQU bound bank directly
and shows which bounds survive extraction (all tight, touching the
data) and that the conjunction verifies the postcondition.

Usage:  python examples/sqrt_tight_bounds.py
"""

from fractions import Fraction

import numpy as np

from repro.bench.nla import nla_problem
from repro.checker import InvariantChecker
from repro.cln.bounds import (
    BoundBank,
    enumerate_bound_masks,
    extract_bound_atoms,
    train_bound_bank,
)
from repro.cln.model import GCLNConfig
from repro.api import InvariantService
from repro.sampling import (
    build_term_basis,
    collect_traces,
    evaluate_terms,
    loop_dataset,
    normalize_rows,
)

def main() -> None:
    problem = nla_problem("sqrt1")

    # 1. Collect traces and build the candidate-term matrix.
    traces = collect_traces(problem.program, problem.train_inputs)
    states = loop_dataset(traces, 0, max_states=90)
    basis = build_term_basis(["a", "s", "t", "n"], 2)
    data = normalize_rows(evaluate_terms(states, basis))

    # 2. Train one PBQU unit per small term combination (§5.2.2).
    config = GCLNConfig(max_epochs=1500)
    masks = enumerate_bound_masks(
        [m.variables for m in basis.monomials],
        [m.degree for m in basis.monomials],
        config,
    )
    bank = BoundBank(masks, config, np.random.default_rng(4))
    train_bound_bank(bank, data)
    atoms = extract_bound_atoms(bank, basis, states, data)

    print(f"{len(masks)} bound units trained; {len(atoms)} tight bounds kept:")
    for atom in atoms:
        slack = min(
            atom.poly.evaluate({k: Fraction(v) for k, v in s.items()})
            for s in states
        )
        print(f"  {atom}   (min slack on data: {slack})")

    # 3. The full pipeline combines these with the learned equalities
    #    and checks the three verification conditions.
    result = InvariantService().solve(problem)
    print(f"\nfull pipeline solved: {result.solved}")
    print(f"invariant: {result.invariant(0)[:200]} ...")

    checker = InvariantChecker(
        problem.program, problem.effective_check_inputs
    )
    posts = [s.cond for s in problem.program.asserts]
    # The checker wants the Formula object; the gcln solver keeps its
    # native InferenceResult on SolveResult.raw.
    report = checker.check_invariant(0, result.raw.invariant(0), posts)
    print(f"VC check: pre={report.precondition.value} "
          f"inductive={report.inductive.value} "
          f"post={report.postcondition.value}")


if __name__ == "__main__":
    main()
