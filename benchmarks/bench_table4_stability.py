"""Table 4 — stability: plain CLN vs G-CLN convergence rates.

Per problem, train each model N times with randomized initialization
and no restarts; a run converges when a valid invariant implying the
problem's ground truth (or, for Disj Eq, the target disjunction) is
extracted.  The paper: CLN averages 58.3%, G-CLN 97.5%.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.baselines.plain_cln import PlainCLN, train_plain_cln
from repro.bench.stability import stability_problems
from repro.cln.extract import extract_equalities, extract_formula
from repro.cln.model import GCLN, complexity_term_weights
from repro.cln.train import train_gcln
from repro.infer.pipeline import _ground_truth_implied
from repro.sampling import (
    build_term_basis,
    collect_traces,
    dedup_columns,
    evaluate_terms,
    growth_rate_filter,
    loop_dataset,
    normalize_rows,
)
from repro.utils import format_table

from benchmarks.conftest import full_mode

_EPOCHS = 2000


def _prepare(problem):
    traces = collect_traces(problem.program, problem.train_inputs)
    states = loop_dataset(traces, 0, max_states=80)
    variables = problem.loop_variables(0)
    basis = build_term_basis(variables, problem.max_degree)
    raw = evaluate_terms(states, basis)
    keep = growth_rate_filter(raw, [m.degree for m in basis.monomials])
    keep = [j for j in keep if j in set(dedup_columns(raw))]
    basis = basis.restrict(keep)
    raw = raw[:, keep]
    return states, basis, normalize_rows(raw)


def _disjunction_target_met(states, formula) -> bool:
    """Disj Eq converges when the formula captures (x=y) || (x=-y)."""
    for state in states:
        exact = {k: Fraction(v) for k, v in state.items()}
        if not formula.evaluate(exact):
            return False
    atoms = formula.atoms()
    return len(atoms) >= 2


def _gcln_run(problem, states, basis, data, seed) -> bool:
    from repro.cln.model import GCLNConfig

    config = GCLNConfig(max_epochs=_EPOCHS)
    rng = np.random.default_rng(seed)
    weights = complexity_term_weights(
        [m.degree for m in basis.monomials],
        [len(m.variables) for m in basis.monomials],
    )
    model = GCLN(
        len(basis), config, rng, protected_terms=[0], term_weights=weights
    )
    train_gcln(model, data)
    if problem.name == "disj_eq":
        formula = extract_formula(model, basis, states)
        return _disjunction_target_met(states, formula)
    atoms = extract_equalities(model, basis, states)
    truth = [a for lid in problem.ground_truth for a in problem.ground_truth_atoms(lid)]
    return _ground_truth_implied([a for a in truth if a.op == "=="], atoms)


def _plain_cln_run(problem, states, basis, data, seed) -> bool:
    rng = np.random.default_rng(seed)
    model = PlainCLN(
        len(basis),
        n_units=4,
        rng=rng,
        disjunction=(problem.name == "disj_eq"),
    )
    atoms = train_plain_cln(model, data, basis, states, max_epochs=_EPOCHS)
    if problem.name == "disj_eq":
        return len(atoms) >= 2
    truth = [a for lid in problem.ground_truth for a in problem.ground_truth_atoms(lid)]
    return _ground_truth_implied([a for a in truth if a.op == "=="], atoms)


@pytest.mark.benchmark(group="table4")
def test_table4_stability(benchmark, emit):
    runs = 20 if full_mode() else 3
    problems = stability_problems()

    def run():
        rows = []
        cln_rates = []
        gcln_rates = []
        for label, problem in problems.items():
            states, basis, data = _prepare(problem)
            cln_ok = sum(
                _plain_cln_run(problem, states, basis, data, seed)
                for seed in range(runs)
            )
            gcln_ok = sum(
                _gcln_run(problem, states, basis, data, 1000 + seed)
                for seed in range(runs)
            )
            cln_rates.append(cln_ok / runs)
            gcln_rates.append(gcln_ok / runs)
            rows.append(
                [label, f"{100 * cln_ok / runs:.0f}%", f"{100 * gcln_ok / runs:.0f}%"]
            )
        rows.append(
            [
                "AVERAGE",
                f"{100 * sum(cln_rates) / len(cln_rates):.1f}%",
                f"{100 * sum(gcln_rates) / len(gcln_rates):.1f}%",
            ]
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["problem", "CLN convergence", "G-CLN convergence"],
            rows,
            title=(
                f"Table 4 — stability over {runs} randomized runs "
                "(paper: CLN 58.3% avg, G-CLN 97.5% avg)"
            ),
        )
    )
