"""Shared helpers for the benchmark harnesses.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run every problem / full repetition counts
  (matches the paper's protocol; takes over an hour on one CPU core).
  The default uses representative subsets and reduced repetitions so
  the whole suite finishes in tens of minutes while preserving the
  tables' *shape*.
"""

from __future__ import annotations

import os

import pytest


def full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture
def emit():
    """Print a block of table output, visible with pytest -s and in
    benchmark summaries."""

    def _emit(text: str) -> None:
        print("\n" + text + "\n", flush=True)

    return _emit
