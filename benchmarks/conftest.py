"""Shared helpers for the benchmark harnesses.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run every problem / full repetition counts
  (matches the paper's protocol; takes over an hour on one CPU core).
  The default uses representative subsets and reduced repetitions so
  the whole suite finishes in tens of minutes while preserving the
  tables' *shape*.
* ``REPRO_BENCH_JOBS=N`` — fan suite benchmarks out over a process
  pool on this host.
* ``REPRO_BENCH_WORKERS=N`` — fan suite benchmarks out over the
  distributed queue runner instead (N local workers, or ``auto`` for
  an elastic fleet sized to queue depth; overrides
  ``REPRO_BENCH_JOBS``).  With ``REPRO_BENCH_QUEUE_DIR=PATH`` the
  queues are durable, so an interrupted ``REPRO_BENCH_FULL`` run
  resumes instead of starting over.
"""

from __future__ import annotations

import os

import pytest


def full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def batch_kwargs(label: str) -> dict:
    """``solve_many`` fan-out arguments from the environment.

    ``label`` keeps durable queues of different benchmark passes (e.g.
    the gcln and numinv columns of Table 2) apart: item ids embed only
    the problem index, so two passes must never share one queue.
    """
    raw = os.environ.get("REPRO_BENCH_WORKERS", "1")
    workers: "int | str" = raw if raw == "auto" else int(raw)
    if workers == "auto" or workers > 1:
        kwargs: dict = {"workers": workers}
        queue_base = os.environ.get("REPRO_BENCH_QUEUE_DIR", "")
        if queue_base:
            kwargs["queue_dir"] = os.path.join(queue_base, label)
        return kwargs
    return {"jobs": int(os.environ.get("REPRO_BENCH_JOBS", "1"))}


@pytest.fixture
def emit():
    """Print a block of table output, visible with pytest -s and in
    benchmark summaries."""

    def _emit(text: str) -> None:
        print("\n" + text + "\n", flush=True)

    return _emit
