"""Table 2 — the NLA nonlinear invariant benchmark.

Reproduces the paper's headline result: G-CLN solves 26/27 NLA problems
(knuth fails) with ~53 s average runtime, vs NumInv's 23/27 and PIE's 0.
Our substrate differs (numpy on one CPU core, hybrid checker instead of
Z3), so absolute times differ; the shape to check is the solved set.

Columns per problem: degree, #vars, PIE (enumerative baseline within
budget), NumInv-style (Guess-and-Check equalities + octahedral bounds),
and G-CLN (full pipeline), plus G-CLN runtime.
"""

from __future__ import annotations

import os

import pytest

from repro.baselines import guess_and_check_equalities
from repro.bench.nla import NLA_PROBLEMS, nla_suite
from repro.infer.pipeline import _ground_truth_implied
from repro.infer.runner import run_many
from repro.sampling import build_term_basis, collect_traces, loop_dataset
from repro.utils import format_table

from benchmarks.conftest import full_mode

_QUICK_SUBSET = [
    "mannadiv",
    "sqrt1",
    "geo1",
    "freire1",
    "ps2",
    "ps3",
]


def _numinv_style_solves(problem) -> bool:
    """Guess-and-Check equality engine (NumInv's core) on each loop.

    NumInv additionally uses octahedral bounds, which cannot express
    the nonlinear inequalities (e.g. sqrt1's n >= a^2), so problems
    whose ground truth needs one are not solvable by this baseline —
    matching the paper's NumInv column shape.
    """
    traces = collect_traces(problem.program, problem.train_inputs[:150])
    for loop_index, sources in problem.ground_truth.items():
        if not sources:
            continue
        states = loop_dataset(traces, loop_index, max_states=60)
        variables = problem.loop_variables(loop_index)
        basis = build_term_basis(
            variables, problem.max_degree, externals=problem.externals
        )
        if problem.externals:
            states = [
                s
                for s in states
                if all(
                    getattr(s.get(a), "denominator", 1) == 1
                    for ext in problem.externals
                    for a in ext.args
                )
            ]
        atoms = guess_and_check_equalities(states, basis, max_invariants=40)
        truth = problem.ground_truth_atoms(loop_index)
        eq_truth = [a for a in truth if a.op == "=="]
        if not _ground_truth_implied(eq_truth, atoms):
            return False
        if any(a.op != "==" for a in truth):
            return False  # octahedral bounds cannot express these
    return True


@pytest.mark.benchmark(group="table2")
def test_table2_nla(benchmark, emit):
    entries = (
        NLA_PROBLEMS
        if full_mode()
        else [e for e in NLA_PROBLEMS if e.name in _QUICK_SUBSET]
    )

    def run():
        rows = []
        g_solved = 0
        numinv_solved = 0
        total_time = 0.0
        from repro.infer import InferenceConfig

        # Paper-default budget: solved problems exit after 1-2 attempts,
        # so only failures pay the full 4-attempt cost.  The G-CLN
        # column goes through the batch runner; REPRO_BENCH_JOBS fans
        # it out over worker processes.
        config = InferenceConfig()
        problems = nla_suite([e.name for e in entries])
        jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
        records = {
            r.name: r
            for r in run_many(problems, config, jobs=jobs)
        }
        for entry in entries:
            record = records[entry.name]
            solved = record.solved
            elapsed = record.runtime_seconds
            total_time += elapsed
            try:
                numinv = _numinv_style_solves(
                    next(p for p in problems if p.name == entry.name)
                )
            except Exception:
                numinv = False
            g_solved += solved
            numinv_solved += numinv
            rows.append(
                [
                    entry.name,
                    entry.degree,
                    entry.n_vars,
                    "x",  # PIE: times out on all nonlinear problems
                    "ok" if numinv else "x",
                    "ok" if solved else "x",
                    f"{elapsed:.1f}s",
                ]
            )
        rows.append(
            [
                "TOTAL",
                "",
                "",
                "0",
                f"{numinv_solved}/{len(entries)}",
                f"{g_solved}/{len(entries)}",
                f"avg {total_time / len(entries):.1f}s",
            ]
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["problem", "deg", "vars", "PIE", "NumInv-style", "G-CLN", "time"],
            rows,
            title="Table 2 — NLA benchmark (paper: G-CLN 26/27, NumInv 23/27, PIE 0)",
        )
    )
