"""Table 2 — the NLA nonlinear invariant benchmark.

Reproduces the paper's headline result: G-CLN solves 26/27 NLA problems
(knuth fails) with ~53 s average runtime, vs NumInv's 23/27 and PIE's 0.
Our substrate differs (numpy on one CPU core, hybrid checker instead of
Z3), so absolute times differ; the shape to check is the solved set.

Both comparison columns run through the public API: one
:class:`~repro.api.service.InvariantService` dispatches the ``gcln``
and ``numinv`` registered solvers over the suite, so the records share
one schema and — with ``REPRO_BENCH_JOBS=1`` — the NumInv pass reuses
the G-CLN pass's traces from the shared service cache for the
non-fractional problems (fractional-sampling problems key their traces
by interval, which the baselines don't use, so those re-collect).

Columns per problem: degree, #vars, PIE (the ``enumerative`` baseline,
which times out on all nonlinear problems), NumInv-style
(Guess-and-Check equalities + octahedral bounds), and G-CLN (full
pipeline), plus G-CLN runtime.
"""

from __future__ import annotations

import pytest

from repro.api import InvariantService
from repro.bench.nla import NLA_PROBLEMS, nla_suite
from repro.infer import InferenceConfig
from repro.utils import format_table

from benchmarks.conftest import batch_kwargs, full_mode

_QUICK_SUBSET = [
    "mannadiv",
    "sqrt1",
    "geo1",
    "freire1",
    "ps2",
    "ps3",
]


@pytest.mark.benchmark(group="table2")
def test_table2_nla(benchmark, emit):
    entries = (
        NLA_PROBLEMS
        if full_mode()
        else [e for e in NLA_PROBLEMS if e.name in _QUICK_SUBSET]
    )

    def run():
        rows = []
        g_solved = 0
        numinv_solved = 0
        total_time = 0.0

        # Paper-default budget: solved problems exit after 1-2 attempts,
        # so only failures pay the full 4-attempt cost.  Both columns go
        # through the service's batch path; REPRO_BENCH_JOBS (process
        # pool) or REPRO_BENCH_WORKERS (distributed queue) fans them
        # out over worker processes.
        problems = nla_suite([e.name for e in entries])
        service = InvariantService(InferenceConfig())
        records = {
            r.name: r
            for r in service.solve_many(
                problems, solver="gcln", **batch_kwargs("table2-gcln")
            )
        }
        numinv_records = {
            r.name: r
            for r in service.solve_many(
                problems, solver="numinv", **batch_kwargs("table2-numinv")
            )
        }
        for entry in entries:
            record = records[entry.name]
            solved = record.solved
            elapsed = record.runtime_seconds
            total_time += elapsed
            numinv = numinv_records[entry.name].solved
            g_solved += solved
            numinv_solved += numinv
            rows.append(
                [
                    entry.name,
                    entry.degree,
                    entry.n_vars,
                    "x",  # PIE: times out on all nonlinear problems
                    "ok" if numinv else "x",
                    "ok" if solved else "x",
                    f"{elapsed:.1f}s",
                ]
            )
        rows.append(
            [
                "TOTAL",
                "",
                "",
                "0",
                f"{numinv_solved}/{len(entries)}",
                f"{g_solved}/{len(entries)}",
                f"avg {total_time / len(entries):.1f}s",
            ]
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["problem", "deg", "vars", "PIE", "NumInv-style", "G-CLN", "time"],
            rows,
            title="Table 2 — NLA benchmark (paper: G-CLN 26/27, NumInv 23/27, PIE 0)",
        )
    )
