"""Figure 8 — fractional sampling on ps4.

Regenerates both panels: (b) integer-only training data where the
high-order terms dwarf the low-order ones, and (c) fractionally sampled
data around y ~ 1 where all terms are on the same level, plus the
invariant learned from the densified data.
"""

from __future__ import annotations

import pytest

from repro.bench.nla import nla_problem
from repro.sampling import (
    collect_traces,
    fractional_inputs,
    loop_dataset,
    relax_initializers,
)
from repro.utils import format_table


@pytest.mark.benchmark(group="fig8")
def test_fig8_fractional_sampling(benchmark, emit):
    problem = nla_problem("ps4")

    def run():
        traces = collect_traces(problem.program, [{"k": 5}])
        integer_states = loop_dataset(traces, 0, dedup=False)
        relaxed, names = relax_initializers(problem.program, ["x", "y"])
        frac_in = fractional_inputs(
            [{"k": 3}], names, interval=0.5, span=1.0, limit=40
        )
        frac_traces = collect_traces(relaxed, frac_in)
        frac_states = loop_dataset(frac_traces, 0, max_states=40)
        return integer_states, frac_states

    integer_states, frac_states = benchmark.pedantic(run, rounds=1, iterations=1)

    def rows(states, n):
        out = []
        for s in states[:n]:
            y = float(s["y"])
            out.append(
                [f"{float(s['x']):g}", f"{y:g}", f"{y**2:g}", f"{y**3:g}", f"{y**4:g}"]
            )
        return out

    emit(
        format_table(
            ["x", "y", "y^2", "y^3", "y^4"],
            rows(integer_states, 6),
            title="Fig. 8b — ps4 without fractional sampling",
        )
    )
    emit(
        format_table(
            ["x", "y", "y^2", "y^3", "y^4"],
            rows(frac_states, 6),
            title="Fig. 8c — ps4 with fractional sampling (0.5 grid)",
        )
    )
    # Shape: fractional sampling produces non-integer y values.
    assert any(float(s["y"]) % 1 != 0 for s in frac_states)
    assert all(float(s["y"]) % 1 == 0 for s in integer_states)


@pytest.mark.benchmark(group="fig8")
def test_fig8_ps5_needs_fractional(benchmark, emit):
    """ps5 (degree 5) solves with fractional sampling enabled."""
    from repro.infer import InferenceConfig, InferenceEngine

    problem = nla_problem("ps5")
    config = InferenceConfig(max_epochs=1500, dropout_schedule=(0.6, 0.7))

    def run():
        return InferenceEngine(problem, config).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"Fig. 8 companion — ps5 solved with fractional sampling: {result.solved} "
        f"({result.runtime_seconds:.1f}s, attempts {result.attempts}; "
        "known deviation: the degree-5 relaxed invariant usually needs "
        "REPRO_BENCH_FULL budgets — see EXPERIMENTS.md)"
    )
