"""Performance microbenchmark: the perf trajectory of the training core.

Measures four things and writes them to ``BENCH_PERF.json``:

1. **units** — epochs/sec of ``train_units_independently`` on a bank of
   structured PBQU units: the sequential per-unit reference loop vs the
   batched (stacked matrix + fused kernels + tape) path.
2. **gcln** — epochs/sec of ``train_gcln`` on an auto-built equality
   model: the eager per-unit graph vs the vectorized taped path.
3. **suite** — ``suite_epochs_per_sec`` over a multi-problem batch of
   same-shape models, each with its own data matrix: one taped call
   per problem (what ``cross_batch=1`` does) vs one models-stacked
   ``train_gcln_restarts`` call for the whole batch (the
   ``cross_batch=N`` fast path).
4. **end_to_end** — wall-clock of full solves on a fixed problem set,
   with every optimization disabled (eager training, no attempt
   batching, no checker memoization) vs the defaults.
5. **replay** — ``tape.step``-only epochs/sec of the units training
   graph per replay backend: the reference closure walker (``numpy``)
   vs the compiled fused plan (``fused``) vs numba-JITted segments
   (``numba``, when importable).  This isolates the replay engine from
   optimizer/bookkeeping overhead; sections 1-3 pin ``backend="numpy"``
   so their trajectory stays comparable with historical records.
6. **serve** — the HTTP front end under concurrent load: one cold
   solve latency vs memoized replays hammered by 8 concurrent clients
   (req/s, p50/p95 latency, and the memo speedup ``check_perf.py``
   gates at >= 10x), plus N concurrent *identical* requests proving
   the in-flight dedup collapses them to exactly one solve.
7. **warm_start** — cross-attempt reuse: the per-attempt setup cost
   (eager record + plan compile) vs adopting a pooled tape (the
   attempts-2+ path, gated at >= 5x), and total ``train_epochs`` of
   full solves with ``warm_start`` on vs off (gated warm <= cold).

Speedups are ratios measured in the same process on the same machine,
so they are comparable across hosts; the absolute epochs/sec numbers
are what ``check_perf.py`` gates CI regressions against.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py --out BENCH_PERF.json
    PYTHONPATH=src python benchmarks/bench_perf.py --quick   # CI sizes
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import numpy as np

from repro.api import InvariantService
from repro.bench import nla_problem
from repro.autodiff import Tape, TapePool, Tensor, numba_available, numba_version
from repro.cln.model import (
    AtomicKind,
    GCLN,
    GCLNConfig,
    structured_inequality_units,
)
from repro.cln.train import (
    pbqu_ge,
    train_gcln,
    train_gcln_restarts,
    train_units_independently,
)
from repro.infer import InferenceConfig
from repro.sampling import normalize_rows
from repro.utils import format_table

# Never early-stop inside the microbenchmarks: epochs/sec must divide
# by a deterministic epoch count.
_NO_EARLY_STOP = 10**9


def _unit_bank_inputs(n_terms: int, samples: int, seed: int):
    """Synthetic data + structured GE units, deterministic in ``seed``."""
    rng = np.random.default_rng(seed)
    data = normalize_rows(np.abs(rng.normal(size=(samples, n_terms))) + 0.5)
    variables = [f"v{i}" for i in range(1, n_terms)]
    term_vars = [frozenset()] + [frozenset([v]) for v in variables]
    term_degs = [0] + [1] * (n_terms - 1)
    return data, term_vars, term_degs, variables


def bench_units(epochs: int, n_terms: int = 15, samples: int = 60) -> dict:
    data, term_vars, term_degs, variables = _unit_bank_inputs(
        n_terms, samples, seed=0
    )
    out: dict = {}
    for label, batched in (("sequential", False), ("batched", True)):
        # backend="numpy": this section tracks graph batching, not the
        # replay engine (the "replay" section owns backend comparisons).
        config = GCLNConfig(
            max_epochs=epochs, vectorized=batched, backend="numpy"
        )
        units = structured_inequality_units(
            term_vars, term_degs, variables, config, np.random.default_rng(3)
        )
        model = GCLN(
            n_terms, config, np.random.default_rng(3), units=units,
            kind=AtomicKind.GE,
        )
        start = time.perf_counter()
        result = train_units_independently(
            model, data, max_epochs=epochs,
            early_stop_patience=_NO_EARLY_STOP, batched=batched,
        )
        elapsed = time.perf_counter() - start
        out[f"{label}_epochs_per_sec"] = result.epochs / elapsed
        out["units"] = len(model.units_flat)
    out["speedup"] = out["batched_epochs_per_sec"] / out["sequential_epochs_per_sec"]
    return out


def bench_gcln(epochs: int, n_terms: int = 15, samples: int = 60) -> dict:
    rng = np.random.default_rng(0)
    data = normalize_rows(np.abs(rng.normal(size=(samples, n_terms))) + 0.5)
    out: dict = {}
    for label, vectorized in (("eager", False), ("vectorized", True)):
        config = GCLNConfig(
            n_clauses=10, max_epochs=epochs, dropout_rate=0.5,
            vectorized=vectorized, backend="numpy",
        )
        model = GCLN(
            n_terms, config, np.random.default_rng(7), protected_terms=[0]
        )
        start = time.perf_counter()
        result = train_gcln(
            model, data, max_epochs=epochs, early_stop_patience=_NO_EARLY_STOP
        )
        elapsed = time.perf_counter() - start
        out[f"{label}_epochs_per_sec"] = result.epochs / elapsed
        out["units"] = len(model.units_flat)
    out["speedup"] = out["vectorized_epochs_per_sec"] / out["eager_epochs_per_sec"]
    return out


def bench_suite(
    epochs: int, n_problems: int = 12, n_terms: int = 12, samples: int = 40
) -> dict:
    """Cross-problem batch: suite epochs/sec, stacked vs per-problem.

    One model per synthetic "problem", each with its *own* data matrix
    (same shape — the bucket the cross-batcher builds).  The sequential
    leg trains each model in its own taped ``train_gcln`` call, exactly
    what ``run_many(cross_batch=1)`` does per first attempt; the
    stacked leg trains the whole batch in one models-stacked
    ``train_gcln_restarts`` call.  Both legs are bitwise-equal per
    model, so the ratio is pure epoch-amortization.
    """

    def build(seed: int):
        rng = np.random.default_rng(seed)
        data = normalize_rows(
            np.abs(rng.normal(size=(samples, n_terms))) + 0.5
        )
        config = GCLNConfig(
            n_clauses=10, max_epochs=epochs, dropout_rate=0.5,
            backend="numpy",
        )
        model = GCLN(
            n_terms, config, np.random.default_rng(seed), protected_terms=[0]
        )
        return model, data

    total_epochs = n_problems * epochs
    out: dict = {"problems": n_problems}

    pairs = [build(seed) for seed in range(n_problems)]
    start = time.perf_counter()
    for model, data in pairs:
        train_gcln(model, data, early_stop_patience=_NO_EARLY_STOP)
    elapsed = time.perf_counter() - start
    out["cross1_epochs_per_sec"] = total_epochs / elapsed

    pairs = [build(seed) for seed in range(n_problems)]
    models = [model for model, _ in pairs]
    matrices = [data for _, data in pairs]
    start = time.perf_counter()
    train_gcln_restarts(models, matrices, early_stop_patience=_NO_EARLY_STOP)
    elapsed = time.perf_counter() - start
    out["stacked_epochs_per_sec"] = total_epochs / elapsed
    # The acceptance metric: model-epochs/sec across the suite.
    out["suite_epochs_per_sec"] = out["stacked_epochs_per_sec"]
    out["speedup"] = (
        out["stacked_epochs_per_sec"] / out["cross1_epochs_per_sec"]
    )
    return out


def bench_replay(
    reps: int, n_terms: int = 15, samples: int = 60
) -> dict:
    """``tape.step``-only epochs/sec of the units graph per backend.

    Same graph as ``bench_units``'s batched leg (unit residuals →
    PBQU → loss), but timing pure replays — no optimizer, clipping, or
    annealing — so the number measures the replay engine itself.
    """
    data, term_vars, term_degs, variables = _unit_bank_inputs(
        n_terms, samples, seed=0
    )
    backends = ["numpy", "fused"]
    if numba_available():
        backends.append("numba")
    out: dict = {"reps": reps, "numba": numba_version()}
    for backend in backends:
        config = GCLNConfig(max_epochs=reps, backend=backend)
        units = structured_inequality_units(
            term_vars, term_degs, variables, config, np.random.default_rng(3)
        )
        model = GCLN(
            n_terms, config, np.random.default_rng(3), units=units,
            kind=AtomicKind.GE,
        )
        X = Tensor(np.asarray(data, dtype=np.float64))
        c1_box = np.array(config.c1 * 10.0)

        def build():
            residuals = model.unit_residuals(X)
            act = pbqu_ge(residuals, c1_box, config.c2)
            return (1.0 - act).sum()

        tape = Tape(backend=backend)
        tape.step(build)  # record (eager)
        model.unit_weights.grad = None
        tape.step(build)  # first replay: compiles the plan
        start = time.perf_counter()
        for _ in range(reps):
            model.unit_weights.grad = None
            tape.step(build)
        elapsed = time.perf_counter() - start
        out[f"{backend}_epochs_per_sec"] = reps / elapsed
        if backend == backends[-1]:
            stats = tape.stats()
            out["nodes"] = stats["n_nodes"]
            out["fused_segments"] = stats["fused_segments"]
            out["jitted_segments"] = stats["jitted_segments"]
    out["speedup"] = (
        out["fused_epochs_per_sec"] / out["numpy_epochs_per_sec"]
    )
    return out


def bench_end_to_end(problems: list[str], epochs: int) -> dict:
    """Full solves: all optimizations off vs the defaults."""
    baseline_config = InferenceConfig(
        max_epochs=epochs,
        attempt_batch_size=1,
        checker_memoization=False,
        gcln=GCLNConfig(vectorized=False),
    )
    optimized_config = InferenceConfig(max_epochs=epochs)
    per_problem: dict[str, dict] = {}
    totals = {"baseline": 0.0, "optimized": 0.0}
    for name in problems:
        entry: dict = {}
        for label, config in (
            ("baseline", baseline_config),
            ("optimized", optimized_config),
        ):
            service = InvariantService(config)
            problem = nla_problem(name)
            start = time.perf_counter()
            result = service.solve(problem)
            elapsed = time.perf_counter() - start
            entry[f"{label}_seconds"] = elapsed
            entry[f"{label}_solved"] = result.solved
            totals[label] += elapsed
        entry["speedup"] = entry["baseline_seconds"] / max(
            entry["optimized_seconds"], 1e-9
        )
        per_problem[name] = entry
    return {
        "problems": problems,
        "epochs": epochs,
        "baseline_seconds": totals["baseline"],
        "optimized_seconds": totals["optimized"],
        "speedup": totals["baseline"] / max(totals["optimized"], 1e-9),
        "per_problem": per_problem,
    }


def _serve_problem(name: str, step: int) -> "object":
    from repro.infer import Problem

    return Problem(
        name=name,
        source=f"""
program {name};
input n;
assume (n >= 0);
i = 0; x = 0;
while (i < n) {{ i = i + 1; x = x + {step}; }}
""",
        train_inputs=[{"n": v} for v in range(0, 8)],
        max_degree=1,
        ground_truth={0: [f"x == {step} * i"]},
    )


def bench_serve(
    epochs: int, clients: int = 8, requests_per_client: int = 25
) -> dict:
    """HTTP front-end load: cold solve vs memo replays vs dedup."""
    import asyncio
    import threading
    import urllib.request

    from repro.dist.wire import problem_to_dict
    from repro.serve.admission import AdmissionController
    from repro.serve.app import InvariantServer
    from repro.serve.executor import InProcessExecutor

    service = InvariantService(
        InferenceConfig(max_epochs=epochs, dropout_schedule=(0.6,))
    )
    server = InvariantServer(
        service,
        InProcessExecutor(service, threads=4),
        admission=AdmissionController(rate=0, max_inflight=0),
    )
    loop = asyncio.new_event_loop()

    def run_loop():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start("127.0.0.1", 0))
        loop.run_forever()

    thread = threading.Thread(target=run_loop, daemon=True)
    thread.start()
    while server._server is None:
        time.sleep(0.01)
    base = f"http://127.0.0.1:{server.port}/v1/solve"

    def post(body: bytes) -> float:
        start = time.perf_counter()
        with urllib.request.urlopen(
            urllib.request.Request(base, data=body), timeout=300
        ) as resp:
            resp.read()
        return time.perf_counter() - start

    out: dict = {"clients": clients, "epochs": epochs}
    try:
        body = json.dumps(
            {"problem": problem_to_dict(_serve_problem("servecold", 1))}
        ).encode()
        out["cold_seconds"] = post(body)

        # sequential memo replays: the clean per-request replay cost
        # (no client-side thread contention) — basis for memo_speedup
        replays = sorted(post(body) for _ in range(12))
        out["memo_median_seconds"] = replays[len(replays) // 2]
        out["memo_speedup"] = out["cold_seconds"] / max(
            out["memo_median_seconds"], 1e-9
        )

        # memoized replays under concurrent load
        latencies: list[float] = []
        lock = threading.Lock()

        def client():
            mine = [post(body) for _ in range(requests_per_client)]
            with lock:
                latencies.extend(mine)

        start = time.perf_counter()
        threads = [threading.Thread(target=client) for _ in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        latencies.sort()
        n = len(latencies)
        out["memo_requests"] = n
        out["memo_req_per_sec"] = n / elapsed
        out["memo_p50_ms"] = latencies[n // 2] * 1e3
        out["memo_p95_ms"] = latencies[min(n - 1, int(n * 0.95))] * 1e3

        # N concurrent identical fresh requests → exactly one solve
        led_before = server.dedup.stats()["led"]
        fresh = json.dumps(
            {"problem": problem_to_dict(_serve_problem("servededup", 2))}
        ).encode()
        threads = [
            threading.Thread(target=post, args=(fresh,))
            for _ in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = server.dedup.stats()
        out["dedup_requests"] = clients
        out["dedup_solves"] = stats["led"] - led_before
        out["dedup_joined"] = stats["joined"]
    finally:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(
            timeout=10
        )
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
    return out


def bench_warm_start(
    problems: list[str],
    epochs: int = 200,
    n_terms: int = 15,
    samples: int = 60,
    reps: int = 15,
) -> dict:
    """Cross-attempt warm start: pooled tape adoption vs fresh setup.

    Two measurements:

    * **setup_speedup** — per-attempt *setup* cost: what a pool miss
      pays (eager record of the graph + fused-plan compile) vs what a
      hit pays (copying leaf values into the pooled storage and
      rebinding the model).  Both are derived from whole
      ``train_gcln`` calls so the measurement exercises the real
      adoption path: a 0-epoch call isolates the per-call overhead
      (optimizer build, regularizer vectors) common to both legs, a
      2-epoch cold call adds record + compile + two steps, and warm
      calls on a primed pool replace record + compile with adoption.
      ``setup = cold2 - (warm2 - warm0) - cold0`` and
      ``adopt = warm0 - cold0`` (floored at 10us: adoption is pure
      array copies and regularly vanishes into timer noise).
    * **epochs** — total ``train_epochs`` of full solves with
      ``warm_start`` on vs off, at a fixed budget where every attempt
      runs to its epoch cap: the warm path must never pay extra epochs,
      and the cap keeps the totals deterministic (early-stop jitter
      cannot flake the gate).
    """
    rng = np.random.default_rng(0)
    data = normalize_rows(np.abs(rng.normal(size=(samples, n_terms))) + 0.5)
    config = GCLNConfig(
        n_clauses=10, max_epochs=2, dropout_rate=0.5, backend="fused"
    )

    def timed(seed: int, pool: TapePool, max_epochs: int) -> float:
        model = GCLN(
            n_terms, config, np.random.default_rng(seed), protected_terms=[0]
        )
        start = time.perf_counter()
        train_gcln(
            model, data, max_epochs=max_epochs,
            early_stop_patience=_NO_EARLY_STOP, pool=pool,
        )
        return time.perf_counter() - start

    def median(values) -> float:
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    # Cold legs: a fresh pool per rep, so every call misses.
    cold0 = median(timed(seed, TapePool(2), 0) for seed in range(reps))
    cold2 = median(timed(seed, TapePool(2), 2) for seed in range(reps))
    # Warm legs: prime one pool, then every call adopts the pooled tape.
    pool = TapePool(2)
    timed(100, pool, 2)
    warm2 = median(timed(200 + i, pool, 2) for i in range(reps))
    warm0 = median(timed(300 + i, pool, 0) for i in range(reps))
    adopt = max(warm0 - cold0, 1e-5)
    setup = max(cold2 - (warm2 - warm0) - cold0, 1e-6)
    out: dict = {
        "reps": reps,
        "cold0_seconds": cold0,
        "cold2_seconds": cold2,
        "warm0_seconds": warm0,
        "warm2_seconds": warm2,
        "cold_setup_seconds": setup,
        "warm_setup_seconds": adopt,
        "setup_speedup": setup / adopt,
        "pool": pool.stats(),
    }

    per_problem: dict[str, dict] = {}
    totals = {"cold": 0, "warm": 0}
    for name in problems:
        entry: dict = {}
        for label, flag in (("cold", False), ("warm", True)):
            service = InvariantService(
                InferenceConfig(max_epochs=epochs, warm_start=flag)
            )
            result = service.solve(nla_problem(name))
            entry[f"{label}_epochs"] = result.train_epochs
            entry[f"{label}_solved"] = result.solved
            totals[label] += result.train_epochs
        per_problem[name] = entry
    out["problems"] = list(problems)
    out["epochs_budget"] = epochs
    out["cold_epochs"] = totals["cold"]
    out["warm_epochs"] = totals["warm"]
    out["per_problem"] = per_problem
    return out


def run(args: argparse.Namespace) -> dict:
    unit_epochs = 120 if args.quick else 400
    e2e_epochs = 200 if args.quick else 400
    payload = {
        "schema": 1,
        "quick": args.quick,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "units": bench_units(unit_epochs),
        "gcln": bench_gcln(unit_epochs),
        "suite": bench_suite(
            unit_epochs, n_problems=(8 if args.quick else 12)
        ),
        "replay": bench_replay(1500 if args.quick else 3000),
        "end_to_end": bench_end_to_end(args.problems, e2e_epochs),
        "serve": bench_serve(
            unit_epochs,
            requests_per_client=(10 if args.quick else 25),
        ),
        "warm_start": bench_warm_start(args.problems),
    }
    return payload


def report(payload: dict) -> str:
    units, gcln, e2e = payload["units"], payload["gcln"], payload["end_to_end"]
    suite = payload["suite"]
    replay = payload["replay"]
    rows = [
        [
            "units (train_units_independently)",
            f"{units['sequential_epochs_per_sec']:.0f} ep/s",
            f"{units['batched_epochs_per_sec']:.0f} ep/s",
            f"{units['speedup']:.1f}x",
        ],
        [
            "gcln (train_gcln)",
            f"{gcln['eager_epochs_per_sec']:.0f} ep/s",
            f"{gcln['vectorized_epochs_per_sec']:.0f} ep/s",
            f"{gcln['speedup']:.1f}x",
        ],
        [
            f"suite ({suite['problems']} problems, cross-batch)",
            f"{suite['cross1_epochs_per_sec']:.0f} ep/s",
            f"{suite['stacked_epochs_per_sec']:.0f} ep/s",
            f"{suite['speedup']:.1f}x",
        ],
        [
            f"replay ({replay['nodes']} nodes, tape.step only)",
            f"{replay['numpy_epochs_per_sec']:.0f} ep/s",
            f"{replay['fused_epochs_per_sec']:.0f} ep/s"
            + (
                f" / numba {replay['numba_epochs_per_sec']:.0f}"
                if "numba_epochs_per_sec" in replay
                else ""
            ),
            f"{replay['speedup']:.1f}x",
        ],
        [
            f"end-to-end ({', '.join(e2e['problems'])})",
            f"{e2e['baseline_seconds']:.1f}s",
            f"{e2e['optimized_seconds']:.1f}s",
            f"{e2e['speedup']:.1f}x",
        ],
    ]
    if "serve" in payload:
        serve = payload["serve"]
        rows.append(
            [
                f"serve (memo, {serve['clients']} clients,"
                f" {serve['memo_req_per_sec']:.0f} req/s,"
                f" p95 {serve['memo_p95_ms']:.1f}ms,"
                f" dedup {serve['dedup_requests']}->"
                f"{serve['dedup_solves']})",
                f"{serve['cold_seconds'] * 1e3:.0f}ms",
                f"{serve['memo_median_seconds'] * 1e3:.1f}ms",
                f"{serve['memo_speedup']:.0f}x",
            ]
        )
    if "warm_start" in payload:
        warm = payload["warm_start"]
        rows.append(
            [
                f"warm start (setup; epochs warm {warm['warm_epochs']}"
                f" vs cold {warm['cold_epochs']})",
                f"{warm['cold_setup_seconds'] * 1e3:.1f}ms",
                f"{warm['warm_setup_seconds'] * 1e3:.1f}ms",
                f"{warm['setup_speedup']:.1f}x",
            ]
        )
    return format_table(
        ["path", "baseline", "optimized", "speedup"],
        rows,
        title="bench_perf — vectorized training core",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--problems",
        nargs="+",
        default=["ps2", "ps3"],
        metavar="NAME",
        help="fixed NLA problem set for the end-to-end comparison",
    )
    parser.add_argument(
        "--out", default="BENCH_PERF.json", metavar="PATH",
        help="where to write the JSON record",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI sizes: fewer epochs, same structure",
    )
    args = parser.parse_args(argv)
    payload = run(args)
    print(report(payload))
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
