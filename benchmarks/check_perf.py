"""CI perf gate: compare a fresh BENCH_PERF.json against the baseline.

Two kinds of checks:

* **Relative speedups** (machine-independent): the batched units path
  must stay >= 3x its sequential reference and the end-to-end solves
  >= 2x the all-optimizations-off configuration — the acceptance
  criteria of the vectorized-training-core change.
* **Absolute regression** (against the checked-in baseline, with 2x
  slack for host variance): epochs/sec on the batched paths must not
  drop below half the recorded baseline.  Only applied when the two
  records were produced at the same sizes (matching ``quick`` flags) —
  epochs/sec at CI sizes is not comparable to a full-size baseline.

Usage::

    python benchmarks/check_perf.py BENCH_PERF.json benchmarks/bench_perf_baseline.json
"""

from __future__ import annotations

import json
import sys

MIN_UNITS_SPEEDUP = 3.0
MIN_E2E_SPEEDUP = 2.0
MAX_REGRESSION = 2.0  # current must be >= baseline / MAX_REGRESSION


def check(current: dict, baseline: dict) -> list[str]:
    failures: list[str] = []
    units_speedup = current["units"]["speedup"]
    if units_speedup < MIN_UNITS_SPEEDUP:
        failures.append(
            f"units speedup {units_speedup:.2f}x < required {MIN_UNITS_SPEEDUP}x"
        )
    e2e_speedup = current["end_to_end"]["speedup"]
    if e2e_speedup < MIN_E2E_SPEEDUP:
        failures.append(
            f"end-to-end speedup {e2e_speedup:.2f}x < required {MIN_E2E_SPEEDUP}x"
        )
    if current.get("quick") != baseline.get("quick"):
        print(
            "note: size mismatch (quick flags differ); skipping the "
            "absolute epochs/sec comparison, relative speedups still gate"
        )
        return failures
    for section, metric in (
        ("units", "batched_epochs_per_sec"),
        ("gcln", "vectorized_epochs_per_sec"),
    ):
        base = baseline[section][metric]
        cur = current[section][metric]
        if cur < base / MAX_REGRESSION:
            failures.append(
                f"{section}.{metric} regressed >{MAX_REGRESSION}x: "
                f"{cur:.0f} ep/s vs baseline {base:.0f} ep/s"
            )
    return failures


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    with open(argv[1], encoding="utf-8") as handle:
        current = json.load(handle)
    with open(argv[2], encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = check(current, baseline)
    for failure in failures:
        print(f"PERF REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(
            "perf gate ok: "
            f"units {current['units']['speedup']:.1f}x, "
            f"gcln {current['gcln']['speedup']:.1f}x, "
            f"end-to-end {current['end_to_end']['speedup']:.1f}x"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
