"""CI perf gate: compare a fresh BENCH_PERF.json against the baseline.

Two kinds of checks:

* **Relative speedups** (machine-independent): the batched units path
  must stay >= 3x its sequential reference, the cross-problem suite
  batch >= 2x per-problem training, the end-to-end solves >= 2x
  the all-optimizations-off configuration, the compiled (fused)
  tape replay >= 3x the batched training loop's epochs/sec and never
  slower than the reference closure walker, and the HTTP server's
  memoized replays >= 10x faster than a cold solve (with the in-flight
  dedup collapsing N concurrent identical requests to exactly one
  solve), and warm-start tape adoption >= 5x faster than a fresh
  record+compile with warm solves never spending more train epochs
  than cold — the acceptance criteria of the vectorized-training-core,
  cross-batch, compiled-replay, serve, and warm-start changes.  On loaded or
  heavily shared runners the ratios themselves get noisy; set
  ``REPRO_PERF_FLOOR_SCALE`` (a float in (0, 1], default 1.0) to scale
  every relative floor down instead of letting the gate flake — e.g.
  ``REPRO_PERF_FLOOR_SCALE=0.8`` accepts 80% of each floor.
* **Absolute regression** (against the checked-in baseline, with 2x
  slack for host variance): epochs/sec on the batched paths must not
  drop below half the recorded baseline.  Only applied when the two
  records were produced at the same sizes (matching ``quick`` flags) —
  epochs/sec at CI sizes is not comparable to a full-size baseline.

Usage::

    python benchmarks/check_perf.py BENCH_PERF.json benchmarks/bench_perf_baseline.json
"""

from __future__ import annotations

import json
import os
import sys

MIN_UNITS_SPEEDUP = 3.0
MIN_SUITE_SPEEDUP = 2.0
MIN_E2E_SPEEDUP = 2.0
# The compiled fused replay vs the batched epochs/sec recorded in the
# checked-in baseline — the compiled-replay acceptance criterion.  The
# batched (numpy-walker) reference itself has sped up since the plan
# compiler landed, so the floor vs the *current* reference is lower
# than the original 3x-vs-historical-reference criterion.
MIN_REPLAY_SPEEDUP = 2.0
# The fused plan must never lose to the closure walker it replaces.
MIN_REPLAY_VS_WALKER = 1.0
# Serving: a memoized replay must be >= 10x faster than a cold solve.
MIN_SERVE_MEMO_SPEEDUP = 10.0
# Warm start: adopting a pooled tape must beat re-recording and
# re-compiling the plan by >= 5x (the attempts-2+ setup path).
MIN_WARM_SETUP_SPEEDUP = 5.0
MAX_REGRESSION = 2.0  # current must be >= baseline / MAX_REGRESSION


def floor_scale() -> float:
    """Relative-floor override for loaded runners (env-tunable)."""
    raw = os.environ.get("REPRO_PERF_FLOOR_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise SystemExit(
            f"REPRO_PERF_FLOOR_SCALE must be a float, got {raw!r}"
        ) from exc
    if not 0.0 < scale <= 1.0:
        raise SystemExit(
            f"REPRO_PERF_FLOOR_SCALE must be in (0, 1], got {scale}"
        )
    return scale


def check(current: dict, baseline: dict) -> list[str]:
    failures: list[str] = []
    scale = floor_scale()
    if scale != 1.0:
        print(f"note: relative floors scaled by REPRO_PERF_FLOOR_SCALE={scale}")
    if "suite" not in current:
        failures.append(
            "record has no 'suite' section — regenerate it with the "
            "current benchmarks/bench_perf.py"
        )
    if "replay" not in current:
        failures.append(
            "record has no 'replay' section — regenerate it with the "
            "current benchmarks/bench_perf.py"
        )
    if "serve" not in current:
        failures.append(
            "record has no 'serve' section — regenerate it with the "
            "current benchmarks/bench_perf.py"
        )
    if "warm_start" not in current:
        failures.append(
            "record has no 'warm_start' section — regenerate it with "
            "the current benchmarks/bench_perf.py"
        )
    floors = [
        ("units", current["units"]["speedup"], MIN_UNITS_SPEEDUP),
        ("end-to-end", current["end_to_end"]["speedup"], MIN_E2E_SPEEDUP),
    ]
    if "suite" in current:
        floors.append(
            ("suite cross-batch", current["suite"]["speedup"], MIN_SUITE_SPEEDUP)
        )
    if "replay" in current:
        replay = current["replay"]
        floors.append(
            (
                "replay fused vs walker",
                replay["fused_epochs_per_sec"] / replay["numpy_epochs_per_sec"],
                MIN_REPLAY_VS_WALKER,
            )
        )
    if "serve" in current:
        serve = current["serve"]
        floors.append(
            ("serve memo vs cold", serve["memo_speedup"], MIN_SERVE_MEMO_SPEEDUP)
        )
        # Exact, not a floor: concurrent identical requests must
        # collapse to one solve or dedup is broken outright.
        if serve["dedup_solves"] != 1:
            failures.append(
                f"serve dedup ran {serve['dedup_solves']} solves for "
                f"{serve['dedup_requests']} concurrent identical requests "
                "(expected exactly 1)"
            )
    if "warm_start" in current:
        warm = current["warm_start"]
        floors.append(
            (
                "warm-start setup (pooled tape vs record+compile)",
                warm["setup_speedup"],
                MIN_WARM_SETUP_SPEEDUP,
            )
        )
        # Exact, not a floor (and never scaled): the warm path runs
        # against an epoch cap, so it must never pay *more* epochs
        # than the cold path.
        if warm["warm_epochs"] > warm["cold_epochs"]:
            failures.append(
                f"warm-start spent {warm['warm_epochs']} train epochs vs "
                f"{warm['cold_epochs']} cold (expected warm <= cold)"
            )
    for label, got, floor in floors:
        required = floor * scale
        if got < required:
            failures.append(
                f"{label} speedup {got:.2f}x < required {required:.2f}x"
            )
    if current.get("quick") != baseline.get("quick"):
        print(
            "note: size mismatch (quick flags differ); skipping the "
            "absolute epochs/sec comparison, relative speedups still gate"
        )
        return failures
    if "replay" in current and "units" in baseline:
        # The compiled-replay acceptance criterion, against the
        # *checked-in* baseline: the fused replay must deliver >= 3x
        # the batched epochs/sec recorded before the plan compiler.
        required = MIN_REPLAY_SPEEDUP * scale
        got = (
            current["replay"]["fused_epochs_per_sec"]
            / baseline["units"]["batched_epochs_per_sec"]
        )
        if got < required:
            failures.append(
                f"replay fused vs baseline units.batched {got:.2f}x "
                f"< required {required:.2f}x"
            )
    for section, metric in (
        ("units", "batched_epochs_per_sec"),
        ("gcln", "vectorized_epochs_per_sec"),
        ("suite", "stacked_epochs_per_sec"),
        ("replay", "fused_epochs_per_sec"),
    ):
        if section not in baseline or section not in current:
            continue  # record from before this section existed
        base = baseline[section][metric]
        cur = current[section][metric]
        if cur < base / MAX_REGRESSION:
            failures.append(
                f"{section}.{metric} regressed >{MAX_REGRESSION}x: "
                f"{cur:.0f} ep/s vs baseline {base:.0f} ep/s"
            )
    return failures


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    with open(argv[1], encoding="utf-8") as handle:
        current = json.load(handle)
    with open(argv[2], encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = check(current, baseline)
    for failure in failures:
        print(f"PERF REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(
            "perf gate ok: "
            f"units {current['units']['speedup']:.1f}x, "
            f"gcln {current['gcln']['speedup']:.1f}x, "
            f"suite {current['suite']['speedup']:.1f}x, "
            f"replay {current['replay']['speedup']:.1f}x, "
            f"end-to-end {current['end_to_end']['speedup']:.1f}x, "
            f"serve memo {current['serve']['memo_speedup']:.0f}x, "
            f"warm setup {current['warm_start']['setup_speedup']:.1f}x"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
