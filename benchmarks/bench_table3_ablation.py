"""Table 3 — ablation of data normalization, weight regularization,
term dropout, and fractional sampling.

For each ablated component, the pipeline runs with that feature
disabled; the table reports solved/unsolved per problem.  The paper's
shape: data normalization is crucial almost everywhere; weight
regularization matters for multi-variable inequalities; dropout for
problems with several simultaneous invariants; fractional sampling for
ps5/ps6.
"""

from __future__ import annotations

import pytest

from repro.bench.nla import nla_problem
from repro.infer import InferenceConfig, InferenceEngine
from repro.utils import format_table

from benchmarks.conftest import full_mode

_PROBLEMS_QUICK = ["ps2", "geo1"]
_PROBLEMS_FULL = _PROBLEMS_QUICK + [
    "divbin",
    "mannadiv",
    "hard",
    "freire1",
    "geo2",
    "ps4",
    "ps5",
    "ps6",
]

_ABLATIONS = {
    "Data Norm.": dict(data_normalization=False),
    "Weight Reg.": dict(weight_regularization=False),
    "Dropout": dict(term_dropout=False),
    "Frac. Sampling": dict(fractional_sampling=False),
    "Full Method": dict(),
}


def _config(**overrides) -> InferenceConfig:
    config = InferenceConfig(
        max_epochs=1800,
        dropout_schedule=(0.6, 0.7, 0.5),
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


@pytest.mark.benchmark(group="table3")
def test_table3_ablation(benchmark, emit):
    problems = _PROBLEMS_FULL if full_mode() else _PROBLEMS_QUICK

    def run():
        rows = []
        for name in problems:
            row = [name]
            for overrides in _ABLATIONS.values():
                try:
                    result = InferenceEngine(
                        nla_problem(name), _config(**overrides)
                    ).run()
                    row.append("ok" if result.solved else "x")
                except Exception:
                    row.append("x")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["problem", *list(_ABLATIONS)],
            rows,
            title=(
                "Table 3 — ablation (each column = that feature DISABLED, "
                "except Full Method)"
            ),
        )
    )
