"""Figure 6 — formula recovery from a hand-built gated CLN.

Builds a G-CLN whose gates and weights encode
(3y - 3z - 2 = 0) && ((x - 3z = 0) || (x + y + z = 0)) and checks that
Algorithm 1 recovers exactly that formula from the model structure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cln.extract import extract_formula
from repro.cln.model import AtomicKind, AtomicUnit, GCLN, GCLNConfig
from repro.sampling import build_term_basis
from repro.smt import format_formula


def _build_states():
    # Points satisfying 3y - 3z - 2 = 0 (scaled x3: y = z + 2/3) and one
    # of the two disjuncts; use rationals via thirds.
    from fractions import Fraction

    states = []
    for z in range(-4, 5):
        y = Fraction(3 * z + 2, 3)
        states.append({"x": 3 * z, "y": y, "z": z})          # x - 3z = 0
        states.append({"x": -(y + z), "y": y, "z": z})       # x + y + z = 0
    return states


@pytest.mark.benchmark(group="fig6")
def test_fig6_gated_formula_recovery(benchmark, emit):
    basis = build_term_basis(["x", "y", "z"], 1)
    states = _build_states()
    config = GCLNConfig(sigma=0.05)
    rng = np.random.default_rng(0)
    names = basis.names  # ['1', 'x', 'y', 'z']

    def unit(coeffs: dict[str, float]) -> AtomicUnit:
        mask = np.array([n in coeffs for n in names])
        u = AtomicUnit(AtomicKind.EQ, mask, rng, config)
        u.weight.data[:] = 0.0
        for name, value in coeffs.items():
            u.weight.data[names.index(name)] = value
        return u

    def run():
        eq_conj = unit({"1": -2.0, "y": 3.0, "z": -3.0})
        disj_a = unit({"x": 1.0, "z": -3.0})
        disj_b = unit({"x": 1.0, "y": 1.0, "z": 1.0})
        filler = unit({"x": 1.0, "1": 1.0})  # gated off below
        model = GCLN(
            len(basis),
            config,
            rng,
            units=[[eq_conj, filler], [disj_a, disj_b]],
        )
        # Gates as in Fig. 6: '+' activated, '-' deactivated.
        model.and_gates.data[:] = 1.0
        model.or_gates[0].data[:] = [1.0, 0.0]
        model.or_gates[1].data[:] = [1.0, 1.0]
        return extract_formula(model, basis, states)

    formula = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_formula(formula)
    emit("Fig. 6 — recovered formula: " + text)
    # primitive() orders by graded lex with a positive leading
    # coefficient, so the three atoms print as below (same equalities).
    assert "3*z - 3*y + 2 == 0" in text
    assert "||" in text
    assert "3*z - x == 0" in text and "z + y + x == 0" in text
