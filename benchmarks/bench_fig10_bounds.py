"""Figure 10 — learned tight vs loose inequality bounds.

Trains the PBQU bound bank on the sqrt data and reports each candidate
bound with its mean PBQU activation: tight bounds (solid lines in the
figure) have activation near 1 and touch the data; loose ones score
lower and are discarded by extraction.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.bench.nla import nla_problem
from repro.cln.bounds import BoundBank, enumerate_bound_masks, extract_bound_atoms, train_bound_bank
from repro.cln.model import GCLNConfig
from repro.sampling import (
    build_term_basis,
    collect_traces,
    evaluate_terms,
    loop_dataset,
    normalize_rows,
)
from repro.utils import format_table


@pytest.mark.benchmark(group="fig10")
def test_fig10_tight_bounds_on_sqrt(benchmark, emit):
    problem = nla_problem("sqrt1")
    config = GCLNConfig(max_epochs=1500)

    def run():
        traces = collect_traces(problem.program, problem.train_inputs)
        states = loop_dataset(traces, 0, max_states=90)
        basis = build_term_basis(["a", "s", "t", "n"], 2)
        raw = evaluate_terms(states, basis)
        data = normalize_rows(raw)
        masks = enumerate_bound_masks(
            [m.variables for m in basis.monomials],
            [m.degree for m in basis.monomials],
            config,
        )
        bank = BoundBank(masks, config, np.random.default_rng(4))
        train_bound_bank(bank, data)
        atoms = extract_bound_atoms(bank, basis, states, data)
        activations = bank.forward(Tensor(data)).data.mean(axis=0)
        return states, atoms, activations

    states, atoms, activations = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for atom in atoms[:15]:
        slack = min(
            atom.poly.evaluate({k: Fraction(v) for k, v in s.items()})
            for s in states
        )
        rows.append([str(atom), "tight (touches data)" if slack == 0 else f"slack {slack}"])
    emit(
        format_table(
            ["learned bound", "fit"],
            rows,
            title="Fig. 10 — PBQU-learned bounds on sqrt (all extracted bounds are tight)",
        )
    )
    emit(
        f"bound units trained: {len(activations)}; "
        f"extracted (activation >= {GCLNConfig().ineq_activation_threshold}, "
        f"touching): {len(atoms)}; "
        f"tight quadratic n >= a^2 found: "
        f"{any('a^2' in str(a) and 'n' in str(a) for a in atoms)}"
    )
    assert atoms, "extraction must keep at least one tight bound"
