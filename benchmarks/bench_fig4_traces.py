"""Figure 4 / Table 1 — trace collection and data normalization on sqrt.

Fig. 4b: the sampled data points expanded to all degree-2 monomials for
the sqrt program.  Table 1: the same rows after per-sample L2
normalization to norm 10.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.nla import nla_problem
from repro.sampling import (
    build_term_basis,
    collect_traces,
    evaluate_terms,
    loop_dataset,
    normalize_rows,
)
from repro.utils import format_table


@pytest.mark.benchmark(group="fig4")
def test_fig4_and_table1_sqrt_samples(benchmark, emit):
    problem = nla_problem("sqrt1")

    def run():
        traces = collect_traces(problem.program, [{"n": 30}])
        states = loop_dataset(traces, 0, dedup=False)
        basis = build_term_basis(["a", "s", "t"], 2)
        raw = evaluate_terms(states, basis)
        return basis, raw, normalize_rows(raw)

    basis, raw, normalized = benchmark.pedantic(run, rounds=1, iterations=1)
    show = ["1", "a", "t", "a*s", "t^2", "s*t"]
    idx = [basis.names.index(name) for name in show]
    emit(
        format_table(
            show,
            [[f"{raw[i, j]:g}" for j in idx] for i in range(4)],
            title="Fig. 4b — raw sqrt samples (deg-2 monomials)",
        )
    )
    emit(
        format_table(
            show,
            [[f"{normalized[i, j]:.2f}" for j in idx] for i in range(4)],
            title="Table 1 — after per-sample L2 normalization (norm = 10)",
        )
    )
    norms = np.linalg.norm(normalized, axis=1)
    assert np.allclose(norms, 10.0)
