"""Figures 2 and 7 — CLN truth-value curves and predicate relaxations.

Fig. 2: the continuous truth value of
F(x) = (x = 1) || (x >= 5) || (x >= 2 && x <= 3) over x in [0, 5.5]:
the curve must peak (≈1) exactly on the satisfying set.

Fig. 7: S(x >= 0) under the original CLN sigmoid (B=5, eps=0.5) vs the
PBQU construction (c1=0.5, c2=5): the sigmoid *rewards* points far
above the bound while PBQU penalizes them — the tight-bound mechanism.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cln.activations import (
    gaussian_equality_numpy,
    pbqu_ge_numpy,
    sigmoid_ge_numpy,
)
from repro.utils import format_table


def _fig2_curve(xs: np.ndarray) -> np.ndarray:
    eq1 = gaussian_equality_numpy(xs - 1.0, sigma=0.2)
    ge5 = pbqu_ge_numpy(xs - 5.0, c1=0.3, c2=50.0)
    band = pbqu_ge_numpy(xs - 2.0, c1=0.3, c2=50.0) * pbqu_ge_numpy(
        3.0 - xs, c1=0.3, c2=50.0
    )
    # product t-conorm of the three clauses
    return 1.0 - (1.0 - eq1) * (1.0 - ge5) * (1.0 - band)


@pytest.mark.benchmark(group="fig2")
def test_fig2_cln_truth_curve(benchmark, emit):
    xs = np.linspace(0.0, 5.5, 23)

    def run():
        return _fig2_curve(xs)

    values = benchmark.pedantic(run, rounds=3, iterations=1)
    rows = [[f"{x:.2f}", f"{v:.3f}"] for x, v in zip(xs, values)]
    emit(
        format_table(
            ["x", "M(x)"],
            rows,
            title="Fig. 2 — CLN of (x=1) || (x>=5) || (2<=x<=3)",
        )
    )
    # Shape assertions: high on satisfying set, low elsewhere.
    assert _fig2_curve(np.array([1.0]))[0] > 0.9
    assert _fig2_curve(np.array([2.5]))[0] > 0.9
    assert _fig2_curve(np.array([5.2]))[0] > 0.9
    assert _fig2_curve(np.array([0.2]))[0] < 0.5
    assert _fig2_curve(np.array([4.0]))[0] < 0.6


@pytest.mark.benchmark(group="fig7")
def test_fig7_sigmoid_vs_pbqu(benchmark, emit):
    xs = np.linspace(-4.0, 8.0, 25)

    def run():
        return sigmoid_ge_numpy(xs, B=5.0, eps=0.5), pbqu_ge_numpy(
            xs, c1=0.5, c2=5.0
        )

    sig, pbqu = benchmark.pedantic(run, rounds=3, iterations=1)
    rows = [
        [f"{x:.1f}", f"{s:.3f}", f"{p:.3f}"] for x, s, p in zip(xs, sig, pbqu)
    ]
    emit(
        format_table(
            ["x", "sigmoid S(x>=0)", "PBQU S(x>=0)"],
            rows,
            title="Fig. 7 — relaxations of x >= 0 (B=5, eps=0.5; c1=0.5, c2=5)",
        )
    )
    # The paper's contrast: sigmoid is monotone increasing (loose fits
    # rewarded); PBQU peaks at the boundary and decays above it.
    assert np.all(np.diff(sig) >= -1e-9)
    peak = int(np.argmax(pbqu))
    assert abs(xs[peak]) < 0.6
    assert pbqu[-1] < pbqu[peak]
