"""§6.4 — the linear (Code2Inv-style) benchmark.

The paper: all 124 solvable Code2Inv problems solved in under 30 s
each.  We run the generated 124-problem linear suite (see DESIGN.md §2
for the substitution) and report solved count and times.
"""

from __future__ import annotations

import os

import pytest

from repro.api import InvariantService
from repro.bench.code2inv import code2inv_suite
from repro.infer import InferenceConfig
from repro.utils import format_table

from benchmarks.conftest import batch_kwargs, full_mode

# Which registered solver to benchmark; the linear suite is also a good
# yardstick for the baselines (e.g. REPRO_BENCH_SOLVER=numinv).
_SOLVER = os.environ.get("REPRO_BENCH_SOLVER", "gcln")


@pytest.mark.benchmark(group="code2inv")
def test_code2inv_linear_suite(benchmark, emit):
    # 16 representative instances in quick mode, all 124 in full mode.
    problems = code2inv_suite(stride=1 if full_mode() else 8)
    config = InferenceConfig(
        max_epochs=900,
        dropout_schedule=(0.4, 0.6),
    )
    service = InvariantService(config)

    def run():
        records = service.solve_many(
            problems, solver=_SOLVER, **batch_kwargs(f"code2inv-{_SOLVER}")
        )
        times = [r.runtime_seconds for r in records]
        solved = sum(1 for r in records if r.solved)
        slowest = max(times, default=0.0)
        failures = [r.name for r in records if not r.solved]
        return solved, times, slowest, failures

    solved, times, slowest, failures = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        ["problems", len(times)],
        ["solved", solved],
        ["mean time", f"{sum(times) / len(times):.1f}s"],
        ["max time", f"{slowest:.1f}s"],
        ["failures", ", ".join(failures) if failures else "-"],
    ]
    emit(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"§6.4 — linear suite, solver {_SOLVER} "
                "(paper: 124/124 solved, < 30 s each)"
            ),
        )
    )
