"""§6.4 — the linear (Code2Inv-style) benchmark.

The paper: all 124 solvable Code2Inv problems solved in under 30 s
each.  We run the generated 124-problem linear suite (see DESIGN.md §2
for the substitution) and report solved count and times.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.code2inv import code2inv_problems
from repro.infer import InferenceConfig, infer_invariants
from repro.utils import format_table

from benchmarks.conftest import full_mode


@pytest.mark.benchmark(group="code2inv")
def test_code2inv_linear_suite(benchmark, emit):
    problems = code2inv_problems()
    if not full_mode():
        problems = problems[::8]  # 16 representative instances
    config = InferenceConfig(
        max_epochs=900,
        dropout_schedule=(0.4, 0.6),
    )

    def run():
        solved = 0
        slowest = 0.0
        times = []
        failures = []
        for problem in problems:
            start = time.perf_counter()
            try:
                result = infer_invariants(problem, config)
                ok = result.solved
            except Exception:
                ok = False
            elapsed = time.perf_counter() - start
            times.append(elapsed)
            slowest = max(slowest, elapsed)
            solved += ok
            if not ok:
                failures.append(problem.name)
        return solved, times, slowest, failures

    solved, times, slowest, failures = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        ["problems", len(times)],
        ["solved", solved],
        ["mean time", f"{sum(times) / len(times):.1f}s"],
        ["max time", f"{slowest:.1f}s"],
        ["failures", ", ".join(failures) if failures else "-"],
    ]
    emit(
        format_table(
            ["metric", "value"],
            rows,
            title="§6.4 — linear suite (paper: 124/124 solved, < 30 s each)",
        )
    )
