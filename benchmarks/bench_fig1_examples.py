"""Figure 1 — the two motivating examples (cohencu cube, sqrt1).

Regenerates (a) the trace series the figure plots for the cube loop and
the learned conjunction of its three equality invariants; (b) the sqrt
loop's tight bound n >= a^2 (vs. the loose bounds the figure contrasts).
"""

from __future__ import annotations

import pytest

from repro.bench.nla import nla_problem
from repro.infer import InferenceEngine
from repro.lang import run_program
from repro.smt import format_formula
from repro.utils import format_table


@pytest.mark.benchmark(group="fig1")
def test_fig1a_cube_traces_and_invariants(benchmark, emit):
    from repro.infer import InferenceConfig

    problem = nla_problem("cohencu")
    config = InferenceConfig(max_epochs=1500, dropout_schedule=(0.6, 0.7))

    def run():
        trace = run_program(problem.program, {"a": 15})
        series = [
            (s.state["n"], s.state["x"], s.state["y"], s.state["z"])
            for s in trace.snapshots
            if s.loop_id == 0
        ]
        result = InferenceEngine(problem, config).run()
        return series, result

    series, result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [list(point) for point in series[:8]]
    emit(
        format_table(
            ["n", "x", "y", "z"],
            rows,
            title="Fig. 1a — cube loop trace (x=n^3, y=3n^2+3n+1, z=6n+6)",
        )
    )
    emit(
        "Fig. 1a learned invariant: "
        + format_formula(result.invariant(0))
        + f"  (ground truth implied: {result.loops[0].ground_truth_implied})"
    )


@pytest.mark.benchmark(group="fig1")
def test_fig1b_sqrt_tight_bound(benchmark, emit):
    from repro.infer import InferenceConfig

    problem = nla_problem("sqrt1")
    config = InferenceConfig(max_epochs=1500, dropout_schedule=(0.6, 0.7))

    def run():
        return InferenceEngine(problem, config).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    bounds = [str(a) for a in result.loops[0].sound_atoms if a.op == ">="]
    tight = [b for b in bounds if "a^2" in b and "n" in b]
    emit(
        "Fig. 1b — sqrt loop bounds learned: "
        + "; ".join(bounds[:10])
        + f"\ntight quadratic bound found: {bool(tight)} ({tight[:1]})"
    )
