"""Setup shim for environments without PEP 517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    description=(
        "Reproduction of 'Learning Nonlinear Loop Invariants with Gated "
        "Continuous Logic Networks' (PLDI 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
)
