"""Multivariate polynomials with exact rational coefficients.

``Polynomial`` is an immutable mapping from :class:`Monomial` to nonzero
``Fraction`` coefficients.  It supports ring arithmetic, substitution of
polynomials for variables (the key operation for checking inductiveness
of equality invariants under loop-body updates), evaluation on rational
points, and leading-term queries under graded lex order.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Rational
from typing import Iterable, Mapping

from repro.errors import PolyError
from repro.poly.monomial import Monomial

Coefficient = Fraction


def _as_fraction(value: object) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, (int, Rational)):
        return Fraction(value)
    if isinstance(value, float):
        if not value.is_integer():
            raise PolyError(
                f"refusing to coerce non-integral float {value!r} to Fraction; "
                "pass a Fraction explicitly"
            )
        return Fraction(int(value))
    raise PolyError(f"cannot use {value!r} as a polynomial coefficient")


class Polynomial:
    """Immutable multivariate polynomial over the rationals."""

    __slots__ = ("_terms",)

    def __init__(
        self,
        terms: Mapping[Monomial, object] | Iterable[tuple[Monomial, object]] = (),
    ):
        collected: dict[Monomial, Fraction] = {}
        items = terms.items() if isinstance(terms, Mapping) else terms
        for mono, coeff in items:
            if not isinstance(mono, Monomial):
                raise PolyError(f"expected Monomial key, got {mono!r}")
            frac = _as_fraction(coeff)
            if frac == 0:
                continue
            acc = collected.get(mono, Fraction(0)) + frac
            if acc == 0:
                collected.pop(mono, None)
            else:
                collected[mono] = acc
        self._terms: dict[Monomial, Fraction] = collected

    # -- constructors ----------------------------------------------------

    @classmethod
    def zero(cls) -> "Polynomial":
        return cls()

    @classmethod
    def constant(cls, value: object) -> "Polynomial":
        return cls({Monomial.one(): _as_fraction(value)})

    @classmethod
    def var(cls, name: str) -> "Polynomial":
        return cls({Monomial.var(name): Fraction(1)})

    @classmethod
    def from_coeffs(
        cls, coeffs: Mapping[str, object], constant: object = 0
    ) -> "Polynomial":
        """Linear polynomial ``sum(c_v * v) + constant``."""
        terms: dict[Monomial, object] = {Monomial.one(): constant}
        for var, coeff in coeffs.items():
            terms[Monomial.var(var)] = coeff
        return cls(terms)

    # -- inspection -------------------------------------------------------

    @property
    def terms(self) -> dict[Monomial, Fraction]:
        """Monomial-to-coefficient mapping (copy)."""
        return dict(self._terms)

    @property
    def degree(self) -> int:
        """Total degree; the zero polynomial has degree 0 by convention."""
        if not self._terms:
            return 0
        return max(m.degree for m in self._terms)

    @property
    def variables(self) -> frozenset[str]:
        out: set[str] = set()
        for mono in self._terms:
            out |= mono.variables
        return frozenset(out)

    def is_zero(self) -> bool:
        return not self._terms

    def is_constant(self) -> bool:
        return all(m.is_constant() for m in self._terms)

    def coefficient(self, mono: Monomial) -> Fraction:
        return self._terms.get(mono, Fraction(0))

    def constant_term(self) -> Fraction:
        return self._terms.get(Monomial.one(), Fraction(0))

    def leading_term(self) -> tuple[Monomial, Fraction]:
        """Leading (monomial, coefficient) under graded lex order."""
        if not self._terms:
            raise PolyError("zero polynomial has no leading term")
        lead = max(self._terms, key=Monomial.sort_key)
        return lead, self._terms[lead]

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other: object) -> "Polynomial":
        other_poly = _coerce(other)
        if other_poly is None:
            return NotImplemented
        merged = dict(self._terms)
        for mono, coeff in other_poly._terms.items():
            acc = merged.get(mono, Fraction(0)) + coeff
            if acc == 0:
                merged.pop(mono, None)
            else:
                merged[mono] = acc
        return _raw(merged)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return _raw({m: -c for m, c in self._terms.items()})

    def __sub__(self, other: object) -> "Polynomial":
        other_poly = _coerce(other)
        if other_poly is None:
            return NotImplemented
        return self + (-other_poly)

    def __rsub__(self, other: object) -> "Polynomial":
        other_poly = _coerce(other)
        if other_poly is None:
            return NotImplemented
        return other_poly + (-self)

    def __mul__(self, other: object) -> "Polynomial":
        other_poly = _coerce(other)
        if other_poly is None:
            return NotImplemented
        product: dict[Monomial, Fraction] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other_poly._terms.items():
                mono = m1 * m2
                acc = product.get(mono, Fraction(0)) + c1 * c2
                if acc == 0:
                    product.pop(mono, None)
                else:
                    product[mono] = acc
        return _raw(product)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise PolyError(f"polynomial exponent must be a nonneg int: {exponent!r}")
        result = Polynomial.constant(1)
        base = self
        n = exponent
        while n:
            if n & 1:
                result = result * base
            base = base * base
            n >>= 1
        return result

    def scale(self, factor: object) -> "Polynomial":
        f = _as_fraction(factor)
        return _raw({m: c * f for m, c in self._terms.items()} if f else {})

    def primitive(self, preserve_sign: bool = False) -> "Polynomial":
        """Scale to integer coefficients with gcd 1.

        Args:
            preserve_sign: when False (default) the leading coefficient
                is made positive — fine for equalities, where ``p = 0``
                and ``-p = 0`` agree.  Inequality atoms must pass True,
                because ``p >= 0`` and ``-p >= 0`` differ.
        """
        if not self._terms:
            return self
        import math

        lcm = 1
        for c in self._terms.values():
            lcm = lcm * c.denominator // math.gcd(lcm, c.denominator)
        ints = {m: int(c * lcm) for m, c in self._terms.items()}
        g = 0
        for v in ints.values():
            g = math.gcd(g, abs(v))
        if preserve_sign:
            sign = 1
        else:
            lead = max(ints, key=Monomial.sort_key)
            sign = 1 if ints[lead] > 0 else -1
        return _raw({m: Fraction(v * sign, g) for m, v in ints.items()})

    # -- substitution & evaluation ---------------------------------------

    def substitute(self, mapping: Mapping[str, "Polynomial"]) -> "Polynomial":
        """Replace each variable by a polynomial.

        Variables absent from ``mapping`` are left unchanged.  This is
        the core of symbolic inductiveness checking: substituting the
        loop-body update polynomials into a candidate invariant yields
        the invariant's value after one iteration.
        """
        result = Polynomial.zero()
        for mono, coeff in self._terms.items():
            term = Polynomial.constant(coeff)
            for var, exp in mono:
                base = mapping.get(var)
                if base is None:
                    base = Polynomial.var(var)
                term = term * base**exp
            result = result + term
        return result

    def evaluate(self, assignment: Mapping[str, object]) -> Fraction:
        """Evaluate on an exact rational point."""
        total = Fraction(0)
        for mono, coeff in self._terms.items():
            value = coeff
            for var, exp in mono:
                if var not in assignment:
                    raise PolyError(f"no value for variable {var!r}")
                value *= _as_fraction_value(assignment[var]) ** exp
            total += value
        return total

    def evaluate_float(self, assignment: Mapping[str, float]) -> float:
        """Evaluate on a float point (for sampled/learned data)."""
        total = 0.0
        for mono, coeff in self._terms.items():
            value = float(coeff)
            for var, exp in mono:
                if var not in assignment:
                    raise PolyError(f"no value for variable {var!r}")
                value *= float(assignment[var]) ** exp
            total += value
        return total

    # -- equality & display ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        other_poly = _coerce(other)
        if other_poly is None:
            return NotImplemented
        return self._terms == other_poly._terms

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    def __repr__(self) -> str:
        return f"Polynomial({self})"

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        ordered = sorted(self._terms, key=Monomial.sort_key, reverse=True)
        parts: list[str] = []
        for mono in ordered:
            coeff = self._terms[mono]
            body = str(mono)
            if mono.is_constant():
                text = str(coeff)
            elif coeff == 1:
                text = body
            elif coeff == -1:
                text = f"-{body}"
            else:
                text = f"{coeff}*{body}"
            if parts and not text.startswith("-"):
                parts.append(f"+ {text}")
            elif parts:
                parts.append(f"- {text[1:]}")
            else:
                parts.append(text)
        return " ".join(parts)


def _raw(terms: dict[Monomial, Fraction]) -> Polynomial:
    """Build a Polynomial from an already-normalized term dict."""
    poly = Polynomial.__new__(Polynomial)
    poly._terms = terms
    return poly


def _coerce(value: object) -> Polynomial | None:
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, (int, Fraction)):
        return Polynomial.constant(value)
    return None


def _as_fraction_value(value: object) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value)
    if isinstance(value, Rational):
        return Fraction(value)
    raise PolyError(f"cannot evaluate on non-rational value {value!r}")
