"""Exact rational nullspace computation.

The Guess-and-Check baseline [Sharma et al. 2013] learns polynomial
equality invariants by computing the nullspace of the data matrix whose
columns are candidate monomial terms evaluated on the samples: every
nullspace vector is an equality that holds on all samples.  We compute
the nullspace exactly over ``Fraction`` via Gauss-Jordan elimination so
the recovered coefficients are integral, never floating-point guesses.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import PolyError


def rational_nullspace(rows: Sequence[Sequence[object]]) -> list[list[Fraction]]:
    """Basis of the right nullspace of a matrix, exactly.

    Args:
        rows: matrix rows; entries are int/Fraction (floats must be
            integral-valued).

    Returns:
        A list of basis vectors (each ``list[Fraction]`` of length
        ``ncols``) spanning ``{v : A @ v = 0}``.
    """
    if not rows:
        return []
    ncols = len(rows[0])
    matrix: list[list[Fraction]] = []
    for row in rows:
        if len(row) != ncols:
            raise PolyError("ragged matrix passed to rational_nullspace")
        matrix.append([_frac(x) for x in row])

    # Gauss-Jordan to reduced row echelon form.
    pivot_cols: list[int] = []
    r = 0
    for c in range(ncols):
        pivot_row = None
        for i in range(r, len(matrix)):
            if matrix[i][c] != 0:
                pivot_row = i
                break
        if pivot_row is None:
            continue
        matrix[r], matrix[pivot_row] = matrix[pivot_row], matrix[r]
        pivot = matrix[r][c]
        matrix[r] = [x / pivot for x in matrix[r]]
        for i in range(len(matrix)):
            if i != r and matrix[i][c] != 0:
                factor = matrix[i][c]
                matrix[i] = [a - factor * b for a, b in zip(matrix[i], matrix[r])]
        pivot_cols.append(c)
        r += 1
        if r == len(matrix):
            break

    free_cols = [c for c in range(ncols) if c not in pivot_cols]
    basis: list[list[Fraction]] = []
    for free in free_cols:
        vec = [Fraction(0)] * ncols
        vec[free] = Fraction(1)
        for row_idx, pivot_col in enumerate(pivot_cols):
            vec[pivot_col] = -matrix[row_idx][free]
        basis.append(vec)
    return basis


def _frac(value: object) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value)
    raise PolyError(f"cannot convert {value!r} to Fraction")
