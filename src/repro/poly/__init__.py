"""Exact multivariate polynomial arithmetic over the rationals.

This subpackage is the symbolic core of the invariant checker: candidate
polynomial equality invariants are checked for inductiveness by exact
substitution of the loop-body updates and reduction modulo the learned
equality set. It also provides the nullspace solver used by the
Guess-and-Check baseline and Faulhaber power-sum formulas used as ground
truth in tests.
"""

from repro.poly.monomial import Monomial
from repro.poly.polynomial import Polynomial
from repro.poly.reduce import reduce_modulo
from repro.poly.nullspace import rational_nullspace
from repro.poly.faulhaber import power_sum_polynomial

__all__ = [
    "Monomial",
    "Polynomial",
    "reduce_modulo",
    "rational_nullspace",
    "power_sum_polynomial",
]
