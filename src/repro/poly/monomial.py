"""Monomials: immutable power products of named variables.

A monomial maps variable names to positive integer exponents, e.g.
``x^2 * y``.  Monomials are hashable and ordered by graded lexicographic
order (total degree first, then lexicographic on the sorted exponent
vector), which is the order used by polynomial reduction.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import PolyError


class Monomial:
    """An immutable power product like ``x^2*y``.

    The empty monomial (degree 0) represents the constant term ``1``.
    """

    __slots__ = ("_powers", "_hash")

    def __init__(self, powers: Mapping[str, int] | Iterable[tuple[str, int]] = ()):
        items = dict(powers)
        for var, exp in list(items.items()):
            if not isinstance(exp, int):
                raise PolyError(f"exponent for {var!r} must be int, got {exp!r}")
            if exp < 0:
                raise PolyError(f"negative exponent for {var!r}: {exp}")
            if exp == 0:
                del items[var]
        self._powers: tuple[tuple[str, int], ...] = tuple(sorted(items.items()))
        self._hash = hash(self._powers)

    @classmethod
    def one(cls) -> "Monomial":
        """The constant monomial of degree 0."""
        return cls()

    @classmethod
    def var(cls, name: str, exp: int = 1) -> "Monomial":
        """The monomial ``name^exp``."""
        return cls({name: exp})

    @property
    def powers(self) -> dict[str, int]:
        """Variable-name to exponent mapping (copy)."""
        return dict(self._powers)

    @property
    def degree(self) -> int:
        """Total degree (sum of exponents)."""
        return sum(e for _, e in self._powers)

    @property
    def variables(self) -> frozenset[str]:
        """The set of variables appearing with nonzero exponent."""
        return frozenset(v for v, _ in self._powers)

    def exponent(self, var: str) -> int:
        """Exponent of ``var`` (0 when absent)."""
        for v, e in self._powers:
            if v == var:
                return e
        return 0

    def is_constant(self) -> bool:
        return not self._powers

    def __mul__(self, other: "Monomial") -> "Monomial":
        if not isinstance(other, Monomial):
            return NotImplemented
        merged = dict(self._powers)
        for var, exp in other._powers:
            merged[var] = merged.get(var, 0) + exp
        return Monomial(merged)

    def divides(self, other: "Monomial") -> bool:
        """True when ``self`` divides ``other`` exactly."""
        return all(other.exponent(v) >= e for v, e in self._powers)

    def __truediv__(self, other: "Monomial") -> "Monomial":
        if not isinstance(other, Monomial):
            return NotImplemented
        if not other.divides(self):
            raise PolyError(f"{other} does not divide {self}")
        quotient = dict(self._powers)
        for var, exp in other._powers:
            remaining = quotient.get(var, 0) - exp
            quotient[var] = remaining
        return Monomial(quotient)

    def sort_key(self) -> tuple:
        """Graded lexicographic sort key (larger key = larger monomial)."""
        # Lexicographic comparison on negated variable names is awkward;
        # instead compare (degree, exponent vector over sorted variables).
        return (self.degree, tuple((v, e) for v, e in self._powers))

    def __lt__(self, other: "Monomial") -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Monomial) and self._powers == other._powers

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self) -> tuple[tuple[tuple[str, int], ...]]:
        # Never serialize the cached hash: str hashing is randomized
        # per process (PYTHONHASHSEED), so a pickled hash from another
        # process (e.g. the TraceCache disk spill) would disagree with
        # freshly built equal monomials here, silently breaking every
        # dict/set lookup that mixes the two.  The state is wrapped in
        # a 1-tuple so it is never falsy — pickle protocols 0/1 skip
        # __setstate__ entirely for a falsy state, and the constant
        # monomial's powers are the empty tuple.
        return (self._powers,)

    def __setstate__(self, state: tuple[tuple[tuple[str, int], ...]]) -> None:
        (self._powers,) = state
        self._hash = hash(self._powers)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(self._powers)

    def __repr__(self) -> str:
        return f"Monomial({dict(self._powers)!r})"

    def __str__(self) -> str:
        if not self._powers:
            return "1"
        parts = []
        for var, exp in self._powers:
            parts.append(var if exp == 1 else f"{var}^{exp}")
        return "*".join(parts)
