"""Faulhaber power-sum polynomials.

The ps2..ps6 NLA benchmark programs accumulate ``x += y^k``; their loop
invariants are the closed forms of ``sum_{i=1..y} i^k``.  We derive those
closed forms exactly (via Lagrange interpolation over rational points)
both to state ground-truth invariants for tests and to validate learned
invariants.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache

from repro.errors import PolyError
from repro.poly.monomial import Monomial
from repro.poly.polynomial import Polynomial


@lru_cache(maxsize=None)
def power_sum_polynomial(k: int, var: str = "y") -> Polynomial:
    """Closed form of ``sum_{i=1}^{n} i^k`` as a polynomial in ``var``.

    The sum is a polynomial of degree ``k + 1``; we interpolate it on the
    points ``n = 0..k+1`` exactly.

    Args:
        k: exponent of the summand (>= 0).
        var: name of the upper-limit variable.

    Returns:
        The degree-``k+1`` polynomial ``S_k(var)``.
    """
    if k < 0:
        raise PolyError(f"power sum exponent must be >= 0, got {k}")
    degree = k + 1
    xs = list(range(degree + 1))
    ys = []
    total = 0
    ys.append(Fraction(0))
    for n in xs[1:]:
        total += n**k
        ys.append(Fraction(total))
    return _lagrange_interpolate(xs, ys, var)


def _lagrange_interpolate(
    xs: list[int], ys: list[Fraction], var: str
) -> Polynomial:
    """Exact Lagrange interpolation through ``(xs[i], ys[i])``."""
    x = Polynomial.var(var)
    result = Polynomial.zero()
    for i, xi in enumerate(xs):
        basis = Polynomial.constant(1)
        denom = Fraction(1)
        for j, xj in enumerate(xs):
            if i == j:
                continue
            basis = basis * (x - Polynomial.constant(xj))
            denom *= Fraction(xi - xj)
        result = result + basis.scale(ys[i] / denom)
    return result


def power_sum_invariant(k: int, acc: str = "x", var: str = "y") -> Polynomial:
    """The NLA ``ps(k+1)`` invariant polynomial, scaled to integers.

    Returns ``D*acc - D*S_k(var)`` where ``D`` clears denominators, e.g.
    for k=1 (ps2): ``2x - y^2 - y``.
    """
    closed = power_sum_polynomial(k, var)
    diff = Polynomial.var(acc) - closed
    return diff.primitive()


def monomial_terms_up_to_degree(variables: list[str], max_degree: int) -> list[Monomial]:
    """All monomials over ``variables`` with total degree <= ``max_degree``.

    Matches the candidate-term enumeration of Fig. 4b in the paper.
    Ordered by graded lex, constant first.
    """
    if max_degree < 0:
        raise PolyError(f"max_degree must be >= 0, got {max_degree}")
    monos: list[Monomial] = [Monomial.one()]
    frontier: list[Monomial] = [Monomial.one()]
    for _ in range(max_degree):
        next_frontier: list[Monomial] = []
        seen = set(monos)
        for mono in frontier:
            for var in variables:
                grown = mono * Monomial.var(var)
                if grown not in seen:
                    seen.add(grown)
                    next_frontier.append(grown)
        monos.extend(next_frontier)
        frontier = next_frontier
    return sorted(monos, key=Monomial.sort_key)
