"""Command-line interface: ``python -m repro <command>``.

Every inference command drives the public API: an
:class:`~repro.api.service.InvariantService` with a registered solver
selected by ``--solver`` (default ``gcln``).

Commands:

* ``run <nla-problem> [--solver NAME]`` — run one registered solver on
  one of the 27 NLA benchmark problems and print the learned
  invariants (``--json PATH`` additionally writes the structured
  result; ``--events`` streams lifecycle events as they happen).
  ``run --traces FILE`` solves a *trace-only* problem instead: FILE is
  a recorded-problem JSON (``python -m repro record``), a bare trace
  payload, or a CSV of loop-head states — no program involved.
* ``run-all [--solver NAME]`` — run a whole suite (``nla``,
  ``code2inv``, or ``stability``) through the service's batch path,
  with ``--jobs N`` worker processes, per-problem ``--timeout``, and
  ``--json`` output.  Records share one schema across solvers, so two
  runs with different ``--solver`` values are directly comparable.
  ``--traces FILE [FILE ...]`` batches recorded trace files instead of
  a suite.
* ``record <nla-problem> --json PATH`` — run the interpreter once and
  write the problem's train/check observations as a trace-only
  recording; re-solving the recording produces identical invariants
  (the ObservationSource seed-equivalence contract).
* ``profile <nla-problem>`` — run one solver and render the per-stage
  wall-clock breakdown (collect/train/extract/check) as a table, so hot
  paths are visible without reading JSON; also prints the resolved
  tape-replay backend and plan stats (node count, fused/jitted
  segments, replay vs eager epochs).
* ``enqueue --queue-dir PATH`` — enqueue a suite on a journaled work
  queue (items already journaled are skipped, so re-enqueueing a
  half-finished run is a no-op for the finished part).
* ``worker --queue-dir PATH | --queue-url URL`` — drain a work queue:
  claim, solve, ack, until nothing is pending or claimed.  Run any
  number of these against one queue — on any host sharing the
  directory, or on any host at all via ``--queue-url`` against a
  ``queue-server``.
* ``queue-server --queue-dir PATH`` — serve a queue directory over
  HTTP so remote followers (``worker --queue-url``) can drain it with
  no shared filesystem.
* ``queue-status --queue-dir PATH | --queue-url URL`` — one glance at
  a queue: item counts, run settings, and per-worker health
  (heartbeats: pid, host, items done, last-ack age, live/stale).
* ``serve --host HOST --port PORT`` — expose the service over HTTP
  (JSON + Server-Sent Events; see :mod:`repro.serve`).  The default
  solves in-process on a thread pool; ``--queue-dir PATH`` enqueues
  onto the distributed work queue instead and lets a ``worker`` fleet
  solve.
* ``solvers`` — list the registered solvers with their capability
  flags (trace-only / inequalities / fractional).
* ``list`` — list the available benchmark problems with metadata.
* ``trace <nla-problem> --inputs k=5`` — execute a benchmark program on
  one input assignment and dump the loop-head trace.

``run``, ``run-all``, and ``profile`` accept ``--cache-dir PATH`` to
persist traces/term matrices on disk across invocations, and
``--backend NAME`` to pick the tape-replay backend (``auto`` /
``numpy`` / ``fused`` / ``numba``).
"""

from __future__ import annotations

import argparse
import json
import sys
from fractions import Fraction

from repro.api import InvariantService, solver_entries
from repro.autodiff import available_backends
from repro.bench import NLA_PROBLEMS, nla_problem, suite_problems, SUITES
from repro.errors import ReproError
from repro.infer import InferenceConfig
from repro.infer.runner import summarize
from repro.lang import run_program
from repro.utils import format_table


def _parse_assignment(pairs: list[str]) -> dict[str, object]:
    assignment: dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad input {pair!r}; expected name=value")
        name, _, value = pair.partition("=")
        try:
            assignment[name] = (
                int(value) if "/" not in value else Fraction(value)
            )
        except ValueError as exc:
            raise SystemExit(f"bad value in {pair!r}: {exc}") from exc
    return assignment


def _write_json(path: str, payload: dict) -> None:
    """Write ``payload`` as JSON to ``path`` (``-`` for stdout)."""
    text = json.dumps(payload, indent=2)
    if path == "-":
        print(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        [e.name, e.degree, e.n_vars, "yes" if e.expected_solved else "no (paper fails too)"]
        for e in NLA_PROBLEMS
    ]
    print(format_table(["problem", "degree", "vars", "paper solves"], rows))
    return 0


def _print_event(event) -> None:
    payload = event.to_dict()
    kind = payload.pop("event")
    detail = " ".join(
        f"{k}={v}" for k, v in payload.items() if v is not None
    )
    print(f"[event] {kind:<17} {detail}", flush=True)


def _cmd_solvers(_args: argparse.Namespace) -> int:
    def flag(value: bool) -> str:
        return "yes" if value else "no"

    rows = [
        [
            entry.name,
            flag(entry.capabilities.trace_only),
            flag(entry.capabilities.inequalities),
            flag(entry.capabilities.fractional),
            entry.description,
        ]
        for entry in solver_entries()
    ]
    print(
        format_table(
            ["solver", "trace-only", "inequalities", "fractional", "strategy"],
            rows,
            title="registered solvers",
        )
    )
    return 0


def _load_trace_problem(path: str):
    """A trace-only :class:`Problem` from a recording file.

    Accepts a full recorded-problem JSON (``python -m repro record``
    output / :func:`~repro.dist.wire.problem_to_dict`), a bare trace
    payload (``{"0": {"train": [...]}}``), or a ``.csv`` of loop-head
    states; bare payloads take the problem name from the file stem.
    """
    from pathlib import Path

    from repro.dist.wire import problem_from_dict
    from repro.infer.problem import Problem
    from repro.sampling.source import traces_from_csv, traces_from_payload

    file = Path(path)
    try:
        text = file.read_text(encoding="utf-8")
    except OSError as exc:
        raise SystemExit(f"cannot read traces file {path!r}: {exc}") from exc
    try:
        if file.suffix.lower() == ".csv":
            return Problem(name=file.stem, traces=traces_from_csv(text.splitlines()))
        data = json.loads(text)
        if isinstance(data, dict) and "name" in data:
            return problem_from_dict(data)
        return Problem(name=file.stem, traces=traces_from_payload(data))
    except (ReproError, ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"bad traces file {path!r}: {exc}") from exc


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.dist.wire import problem_to_dict
    from repro.infer.record import record_problem

    problem = nla_problem(args.problem)
    try:
        recorded = record_problem(problem)
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    _write_json(args.json, problem_to_dict(recorded))
    if args.json != "-":
        assert recorded.traces is not None
        counts = ", ".join(
            f"loop {i}: {len(t.train)} train / "
            f"{len(t.check or [])} check"
            for i, t in sorted(recorded.traces.items())
        )
        print(f"recorded {problem.name} -> {args.json} ({counts})")
        print(
            f"re-solve: python -m repro run --traces {args.json}"
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    problem = nla_problem(args.problem)
    service = InvariantService(
        InferenceConfig(
            max_epochs=args.epochs,
            backend=args.backend,
            warm_start=args.warm_start,
            tape_pool_size=args.tape_pool_size,
        ),
        cache_dir=args.cache_dir,
    )
    try:
        result = service.solve(problem, solver=args.solver)
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    timings = result.to_dict()["stage_timings"]
    staged = sum(timings.values())
    other = max(result.runtime_seconds - staged, 0.0)
    total = max(result.runtime_seconds, 1e-9)
    rows = [
        [stage, f"{seconds:.3f}s", f"{100.0 * seconds / total:.1f}%"]
        for stage, seconds in timings.items()
    ]
    rows.append(["(other)", f"{other:.3f}s", f"{100.0 * other / total:.1f}%"])
    rows.append(["TOTAL", f"{result.runtime_seconds:.3f}s", "100.0%"])
    print(
        format_table(
            ["stage", "seconds", "share"],
            rows,
            title=(
                f"profile — {problem.name}, solver {args.solver}, "
                f"solved={result.solved}, {result.attempts} attempt(s)"
            ),
        )
    )
    stats = ", ".join(f"{k}={v}" for k, v in service.cache_stats.items())
    print(f"cache:    {stats}")
    if result.backend:
        print(f"backend:  {result.backend}")
    tape_stats = _last_tape_stats()
    if tape_stats is not None:
        replay = ", ".join(
            f"{key}={tape_stats[key]}"
            for key in (
                "active_backend",
                "n_nodes",
                "fused_segments",
                "jitted_segments",
                "fused_bwd_segments",
                "jitted_bwd_segments",
                "replays",
                "eager_steps",
            )
        )
        print(f"replay:   {replay}")
        warm = ", ".join(
            (
                f"compile_ms={tape_stats['compile_ms']:.1f}",
                f"pool_hits={tape_stats['pool_hits']}",
                f"pool_misses={tape_stats['pool_misses']}",
            )
        )
        print(f"warm:     {warm}")
        if tape_stats.get("fallback_reason"):
            print(f"fallback: {tape_stats['fallback_reason']}")
    return 0


def _last_tape_stats() -> dict | None:
    """``tape.stats()`` from the last training loop in this process."""
    from repro.cln import train

    return train.LAST_TAPE_STATS


def _cmd_run(args: argparse.Namespace) -> int:
    if args.traces is not None:
        if args.problem is not None:
            raise SystemExit(
                "give a problem name OR --traces FILE, not both"
            )
        problem = _load_trace_problem(args.traces)
    elif args.problem is not None:
        problem = nla_problem(args.problem)
    else:
        raise SystemExit("run needs a problem name or --traces FILE")
    service = InvariantService(
        InferenceConfig(
            max_epochs=args.epochs,
            backend=args.backend,
            warm_start=args.warm_start,
            tape_pool_size=args.tape_pool_size,
        ),
        cache_dir=args.cache_dir,
    )
    if args.events:
        service.subscribe(_print_event)
    try:
        result = service.solve(problem, solver=args.solver)
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    print(f"problem:  {problem.name}")
    print(f"solver:   {result.solver}")
    if result.checking:
        print(f"checking: {result.checking}")
    if result.backend:
        print(f"backend:  {result.backend}")
    print(f"solved:   {result.solved} "
          f"({result.runtime_seconds:.1f}s, {result.attempts} attempt(s))")
    stages = ", ".join(
        f"{stage}={seconds:.2f}s"
        for stage, seconds in result.to_dict()["stage_timings"].items()
    )
    print(f"stages:   {stages}")
    for loop in result.loops:
        print(f"loop {loop.loop_index}:")
        print(f"  invariant: {loop.invariant}")
        print(f"  ground truth implied: {loop.ground_truth_implied}")
    if args.json:
        _write_json(args.json, result.to_dict())
    return 0 if result.solved else 1


def _parse_workers(value: str) -> "int | str":
    """``--workers`` accepts a process count or ``auto`` (elastic)."""
    if value == "auto":
        return "auto"
    try:
        workers = int(value)
    except ValueError:
        raise SystemExit(
            f"--workers must be an integer or 'auto', got {value!r}"
        ) from None
    if workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {workers}")
    return workers


def _cmd_run_all(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    workers = _parse_workers(args.workers)
    if args.min_workers < 1:
        raise SystemExit(
            f"--min-workers must be >= 1, got {args.min_workers}"
        )
    if args.max_workers is not None and args.max_workers < args.min_workers:
        raise SystemExit(
            f"--max-workers ({args.max_workers}) must be >= --min-workers "
            f"({args.min_workers})"
        )
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit(f"--timeout must be positive, got {args.timeout}")
    if args.cross_batch < 1:
        raise SystemExit(
            f"--cross-batch must be >= 1, got {args.cross_batch}"
        )
    if args.cross_batch > 1 and args.jobs > 1:
        raise SystemExit(
            "--cross-batch and --jobs are mutually exclusive: cross-problem "
            "batches amortize training within one process"
        )
    if args.cross_batch > 1 and args.solver != "gcln":
        raise SystemExit(
            f"--cross-batch requires the gcln solver, got {args.solver!r}"
        )
    distributed = (
        workers == "auto" or args.queue_dir is not None
        or (isinstance(workers, int) and workers > 1)
    )
    if distributed and args.jobs > 1:
        raise SystemExit(
            "--workers/--queue-dir and --jobs are mutually exclusive: the "
            "distributed runner spawns its own worker processes"
        )
    if args.traces:
        if args.problems:
            raise SystemExit(
                "--traces and --problems are mutually exclusive (trace "
                "files already name their problems)"
            )
        problems = [_load_trace_problem(path) for path in args.traces]
        suite_label = "recorded traces"
    else:
        try:
            problems = suite_problems(args.suite, args.problems or None)
        except ReproError as exc:
            raise SystemExit(str(exc)) from exc
        suite_label = args.suite
    if not problems:
        raise SystemExit(f"no problems selected from suite {args.suite!r}")
    service = InvariantService(
        InferenceConfig(
            max_epochs=args.epochs,
            backend=args.backend,
            warm_start=args.warm_start,
            tape_pool_size=args.tape_pool_size,
        ),
        cache_dir=args.cache_dir,
    )

    def progress(record) -> None:
        detail = (
            f"{record.result.attempts} attempt(s)"
            if record.result is not None
            else (record.error or "").splitlines()[0]
        )
        print(
            f"[{record.status:>7}] {record.name:<14} "
            f"{record.runtime_seconds:6.1f}s  {detail}",
            flush=True,
        )

    def fleet_tail(snapshot: dict) -> None:
        # The coordinator's live tail: one line per fleet/queue change,
        # with per-worker health inline when anything is unhealthy.
        states = [w.get("state") for w in snapshot.get("workers", [])]
        stale = sum(1 for s in states if s == "stale")
        suffix = f", {stale} stale" if stale else ""
        print(
            f"[  fleet] {snapshot['live_workers']} live worker(s){suffix}; "
            f"{snapshot['pending']} pending, {snapshot['claimed']} claimed, "
            f"{snapshot['journaled']} journaled",
            flush=True,
        )

    try:
        records = service.solve_many(
            problems,
            solver=args.solver,
            jobs=args.jobs,
            timeout_seconds=args.timeout,
            progress=progress,
            cross_batch=args.cross_batch,
            workers=workers,
            queue_dir=args.queue_dir,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            fleet_status=fleet_tail if distributed else None,
        )
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    if args.timeout is not None and any(
        not r.timeout_enforced for r in records
    ):
        # One warning for the whole run, not one per problem: the
        # degradation is a property of the platform, not of a record.
        print(
            f"warning: --timeout {args.timeout:g} could not be enforced on "
            "this platform (no SIGALRM or solving off the main thread); "
            "affected problems ran without a budget "
            "(timeout_enforced=false in their records)",
            file=sys.stderr,
        )
    stats = summarize(records)
    rows = [
        [
            r.name,
            r.status,
            "yes" if r.solved else "no",
            r.result.attempts if r.result is not None else "-",
            f"{r.runtime_seconds:.1f}s",
        ]
        for r in records
    ]
    rows.append(
        [
            "TOTAL",
            f"{stats['ok']} ok / {stats['timeout']} timeout / {stats['error']} error",
            f"{stats['solved']}/{stats['problems']}",
            "",
            f"{stats['total_runtime_seconds']:.1f}s",
        ]
    )
    print(
        format_table(
            ["problem", "status", "solved", "attempts", "time"],
            rows,
            title=(
                f"run-all — suite {suite_label}, solver {args.solver}, "
                + (
                    f"{workers} worker(s)"
                    if distributed
                    else f"{args.jobs} job(s)"
                )
            ),
        )
    )
    if args.json:
        _write_json(
            args.json,
            {
                "suite": suite_label,
                "solver": args.solver,
                "jobs": args.jobs,
                "cross_batch": args.cross_batch,
                "timeout_seconds": args.timeout,
                "summary": stats,
                "records": [r.to_dict() for r in records],
            },
        )
    return 0 if stats["solved"] == stats["problems"] else 1


def _cmd_enqueue(args: argparse.Namespace) -> int:
    from repro.dist import enqueue_suite

    if args.cross_batch < 1:
        raise SystemExit(
            f"--cross-batch must be >= 1, got {args.cross_batch}"
        )
    if args.cross_batch > 1 and args.solver != "gcln":
        raise SystemExit(
            f"--cross-batch requires the gcln solver, got {args.solver!r}"
        )
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit(f"--timeout must be positive, got {args.timeout}")
    try:
        queue, added, skipped = enqueue_suite(
            args.queue_dir,
            args.suite,
            args.problems or None,
            solver=args.solver,
            config=InferenceConfig(max_epochs=args.epochs),
            timeout_seconds=args.timeout,
            cross_batch=args.cross_batch,
            lease_seconds=args.lease,
        )
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    counts = queue.counts()
    print(
        f"enqueued {added} item(s) to {queue.root} "
        f"({skipped} already queued or journaled)"
    )
    print(
        f"queue:    {counts['pending']} pending, {counts['claimed']} claimed, "
        f"{counts['journaled']} journaled"
    )
    print(f"drain it: python -m repro worker --queue-dir {queue.root}")
    return 0


def _queue_target(args: argparse.Namespace) -> str:
    """The queue a command should talk to: a directory or a server URL."""
    if getattr(args, "queue_url", None) and getattr(args, "queue_dir", None):
        raise SystemExit("--queue-dir and --queue-url are mutually exclusive")
    target = getattr(args, "queue_url", None) or getattr(
        args, "queue_dir", None
    )
    if not target:
        raise SystemExit("need --queue-dir PATH or --queue-url URL")
    return target


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.dist import Worker, WorkQueue, install_stop_handler

    target = _queue_target(args)
    if args.batch_size is not None and args.batch_size < 1:
        raise SystemExit(f"--batch-size must be >= 1, got {args.batch_size}")
    if args.max_items is not None and args.max_items < 1:
        raise SystemExit(f"--max-items must be >= 1, got {args.max_items}")
    if args.poll <= 0:
        raise SystemExit(f"--poll must be positive, got {args.poll}")

    def progress(record) -> None:
        print(
            f"[{record.status:>7}] {record.name:<14} "
            f"{record.runtime_seconds:6.1f}s",
            flush=True,
        )

    try:
        worker = Worker(
            WorkQueue.open(target),
            worker_id=args.worker_id,
            cache_dir=args.cache_dir,
            batch_size=args.batch_size,
            poll_seconds=args.poll,
            progress=progress,
        )
        install_stop_handler(worker)  # SIGTERM = finish current item, release rest
        processed = worker.run(max_items=args.max_items)
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    if worker.stop_requested:
        print(
            f"worker {worker.worker_id}: stop requested; processed "
            f"{processed} item(s), unstarted claims released"
        )
    else:
        print(f"worker {worker.worker_id}: processed {processed} item(s)")
    return 0


def _cmd_queue_server(args: argparse.Namespace) -> int:
    import signal

    from repro.dist import serve_queue

    server = serve_queue(
        args.queue_dir, host=args.host, port=args.port, verbose=args.verbose
    )
    host, port = server.server_address[:2]
    print(
        f"serving work queue {args.queue_dir} at http://{host}:{port}",
        flush=True,
    )
    print(
        f"follow it: python -m repro worker --queue-url http://{host}:{port}",
        flush=True,
    )
    signal.signal(signal.SIGTERM, lambda *_: server.shutdown())
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_queue_status(args: argparse.Namespace) -> int:
    from repro.dist import WorkQueue

    target = _queue_target(args)
    try:
        queue = WorkQueue.open(target)
        counts = queue.counts()
        fleet = queue.worker_health()
        meta = queue.meta
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    if args.json:
        _write_json(
            args.json,
            {
                "queue": str(queue.root),
                "meta": meta,
                "counts": counts,
                "workers": fleet,
            },
        )
        return 0
    print(f"queue:   {queue.root}")
    print(
        f"run:     solver={meta.get('solver', 'gcln')} "
        f"cross_batch={meta.get('cross_batch', 1)} "
        f"lease={meta.get('lease_seconds')}s suite={meta.get('suite')}"
    )
    print(
        f"items:   {counts['pending']} pending, {counts['claimed']} claimed, "
        f"{counts['done']} done, {counts['journaled']} journaled"
    )
    if not fleet:
        print("workers: none have reported yet")
        return 0
    rows = [
        [
            w.get("worker", "?"),
            w.get("state", "?"),
            w.get("host", "?"),
            w.get("pid", "?"),
            w.get("items_done", 0),
            (
                f"{w['last_ack_age']:.0f}s"
                if w.get("last_ack_age") is not None
                else "-"
            ),
            f"{w.get('age_seconds', 0.0):.0f}s",
        ]
        for w in fleet
    ]
    print(
        format_table(
            ["worker", "state", "host", "pid", "done", "last ack", "last beat"],
            rows,
            title="worker fleet",
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import serve_main

    if args.solve_threads < 1:
        raise SystemExit(
            f"--solve-threads must be >= 1, got {args.solve_threads}"
        )
    if args.memo < 0:
        raise SystemExit(f"--memo must be >= 0, got {args.memo}")
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit(f"--timeout must be positive, got {args.timeout}")
    try:
        return serve_main(args)
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc


def _cmd_trace(args: argparse.Namespace) -> int:
    problem = nla_problem(args.problem)
    assignment = _parse_assignment(args.inputs)
    trace = run_program(problem.program, assignment)
    if trace.assume_violated:
        print("assume violated; no trace")
        return 1
    variables = sorted(trace.snapshots[0].state) if trace.snapshots else []
    rows = [
        [s.loop_id, s.iteration, *[s.state[v] for v in variables]]
        for s in trace.snapshots[: args.limit]
    ]
    print(format_table(["loop", "iter", *variables], rows))
    if trace.assertion_failures:
        print(f"assertion failures: {len(trace.assertion_failures)}")
    return 0


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="auto",
        help=(
            "tape-replay backend for training (default: auto — numba "
            "when importable, else the fused numpy plan)"
        ),
    )


def _add_warm_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--warm-start",
        action="store_true",
        help=(
            "carry gate states across retry attempts and seed worse "
            "restarts from the best-loss member mid-training (off keeps "
            "attempts fully independent)"
        ),
    )
    parser.add_argument(
        "--tape-pool-size",
        type=int,
        default=8,
        metavar="N",
        help=(
            "cross-attempt tape/plan pool size; same-shape retries skip "
            "re-recording and re-compiling (0 disables; default: 8)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="G-CLN nonlinear loop invariant inference (PLDI 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark problems").set_defaults(
        func=_cmd_list
    )

    sub.add_parser(
        "solvers", help="list registered inference solvers"
    ).set_defaults(func=_cmd_solvers)

    run_parser = sub.add_parser("run", help="infer invariants for a problem")
    run_parser.add_argument(
        "problem",
        nargs="?",
        default=None,
        help="NLA problem name (see 'list'); omit with --traces",
    )
    run_parser.add_argument(
        "--traces",
        metavar="FILE",
        help=(
            "solve a trace-only problem from a recording (JSON from "
            "'record', a bare trace payload, or a CSV of loop-head "
            "states) instead of a benchmark program"
        ),
    )
    run_parser.add_argument(
        "--solver",
        default="gcln",
        metavar="NAME",
        help="registered solver to use (see 'solvers'; default: gcln)",
    )
    run_parser.add_argument(
        "--epochs", type=int, default=2000, help="training epochs per attempt"
    )
    _add_backend_arg(run_parser)
    _add_warm_args(run_parser)
    run_parser.add_argument(
        "--events",
        action="store_true",
        help="stream lifecycle events (attempts, stage timings, checks)",
    )
    run_parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the structured result as JSON ('-' for stdout)",
    )
    run_parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="persist traces/term matrices on disk across invocations",
    )
    run_parser.set_defaults(func=_cmd_run)

    profile_parser = sub.add_parser(
        "profile",
        help="run one solver and print the per-stage timing breakdown",
    )
    profile_parser.add_argument("problem", help="NLA problem name (see 'list')")
    profile_parser.add_argument(
        "--solver",
        default="gcln",
        metavar="NAME",
        help="registered solver to profile (default: gcln)",
    )
    profile_parser.add_argument(
        "--epochs", type=int, default=2000, help="training epochs per attempt"
    )
    _add_backend_arg(profile_parser)
    _add_warm_args(profile_parser)
    profile_parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="persist traces/term matrices on disk across invocations",
    )
    profile_parser.set_defaults(func=_cmd_profile)

    all_parser = sub.add_parser(
        "run-all", help="run a whole suite through the batch runner"
    )
    all_parser.add_argument(
        "--suite", choices=SUITES, default="nla", help="which suite to run"
    )
    all_parser.add_argument(
        "--solver",
        default="gcln",
        metavar="NAME",
        help="registered solver to use (see 'solvers'; default: gcln)",
    )
    all_parser.add_argument(
        "--problems",
        nargs="+",
        metavar="NAME",
        help="restrict to these problem names",
    )
    all_parser.add_argument(
        "--traces",
        nargs="+",
        metavar="FILE",
        help=(
            "batch recorded trace files (see 'record') instead of a "
            "benchmark suite"
        ),
    )
    all_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (process pool)"
    )
    all_parser.add_argument(
        "--workers",
        default="1",
        metavar="N",
        help=(
            "drain the suite with N queue workers (the distributed "
            "runner; mutually exclusive with --jobs), or 'auto' for an "
            "elastic fleet sized to queue depth between --min-workers "
            "and --max-workers"
        ),
    )
    all_parser.add_argument(
        "--min-workers",
        type=int,
        default=1,
        metavar="N",
        help="elastic-fleet floor with --workers auto (default: 1)",
    )
    all_parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "elastic-fleet ceiling with --workers auto "
            "(default: CPU count, capped at 8)"
        ),
    )
    all_parser.add_argument(
        "--queue-dir",
        metavar="PATH",
        help=(
            "durable work-queue directory (or queue-server URL) for "
            "--workers; re-running on a half-finished queue resumes it "
            "(journaled problems are not re-solved; the stored "
            "cross-batch width must match).  Default: a private "
            "temporary queue"
        ),
    )
    all_parser.add_argument(
        "--cross-batch",
        type=int,
        default=1,
        metavar="N",
        help=(
            "train up to N same-shape models from different problems in "
            "one stacked call (gcln only, single process; same invariants "
            "as sequential solving)"
        ),
    )
    all_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-problem wall-clock budget (soft — checked between "
            "training rounds — with --cross-batch > 1)"
        ),
    )
    all_parser.add_argument(
        "--epochs", type=int, default=2000, help="training epochs per attempt"
    )
    _add_backend_arg(all_parser)
    _add_warm_args(all_parser)
    all_parser.add_argument(
        "--json",
        metavar="PATH",
        help="write all records as JSON ('-' for stdout)",
    )
    all_parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="persist traces/term matrices on disk across invocations",
    )
    all_parser.set_defaults(func=_cmd_run_all)

    enqueue_parser = sub.add_parser(
        "enqueue", help="enqueue a suite on a journaled work queue"
    )
    enqueue_parser.add_argument(
        "--queue-dir", required=True, metavar="PATH",
        help="work-queue directory (created if missing)",
    )
    enqueue_parser.add_argument(
        "--suite", choices=SUITES, default="nla", help="which suite to enqueue"
    )
    enqueue_parser.add_argument(
        "--problems", nargs="+", metavar="NAME",
        help="restrict to these problem names",
    )
    enqueue_parser.add_argument(
        "--solver", default="gcln", metavar="NAME",
        help="registered solver workers should run (default: gcln)",
    )
    enqueue_parser.add_argument(
        "--epochs", type=int, default=2000, help="training epochs per attempt"
    )
    enqueue_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-problem wall-clock budget applied by workers",
    )
    enqueue_parser.add_argument(
        "--cross-batch", type=int, default=1, metavar="N",
        help=(
            "workers claim N items at a time and train same-shape models "
            "in one stacked call (gcln only)"
        ),
    )
    enqueue_parser.add_argument(
        "--lease", type=float, default=300.0, metavar="SECONDS",
        help=(
            "claim lease; items held longer without a renewal are "
            "re-claimed (crashed-worker recovery; default: 300)"
        ),
    )
    enqueue_parser.set_defaults(func=_cmd_enqueue)

    worker_parser = sub.add_parser(
        "worker", help="drain a work queue: claim, solve, ack"
    )
    worker_parser.add_argument(
        "--queue-dir", metavar="PATH",
        help="work-queue directory to drain",
    )
    worker_parser.add_argument(
        "--queue-url", metavar="URL",
        help=(
            "follow a remote queue served by 'queue-server' over HTTP "
            "instead of a local --queue-dir (no shared filesystem needed)"
        ),
    )
    worker_parser.add_argument(
        "--cache-dir", metavar="PATH",
        help="shared on-disk trace-cache spill (same value for all workers)",
    )
    worker_parser.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="items claimed per round (default: the queue's cross-batch, or 1)",
    )
    worker_parser.add_argument(
        "--max-items", type=int, default=None, metavar="N",
        help="exit after processing this many items (default: drain fully)",
    )
    worker_parser.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="sleep between claim attempts while other workers hold items",
    )
    worker_parser.add_argument(
        "--worker-id", metavar="NAME",
        help="identity recorded on claims/journal lines (default: generated)",
    )
    worker_parser.set_defaults(func=_cmd_worker)

    queue_server_parser = sub.add_parser(
        "queue-server",
        help="serve a work-queue directory over HTTP for remote workers",
    )
    queue_server_parser.add_argument(
        "--queue-dir", required=True, metavar="PATH",
        help="work-queue directory to serve (layout created if missing)",
    )
    queue_server_parser.add_argument(
        "--host", default="127.0.0.1", metavar="HOST",
        help="bind address (default: 127.0.0.1; 0.0.0.0 for a fleet)",
    )
    queue_server_parser.add_argument(
        "--port", type=int, default=8787, metavar="PORT",
        help="bind port (default: 8787; 0 picks an ephemeral port)",
    )
    queue_server_parser.add_argument(
        "--verbose", action="store_true",
        help="log every request (default: quiet)",
    )
    queue_server_parser.set_defaults(func=_cmd_queue_server)

    queue_status_parser = sub.add_parser(
        "queue-status",
        help="show a queue's depth, settings, and per-worker health",
    )
    queue_status_parser.add_argument(
        "--queue-dir", metavar="PATH", help="work-queue directory to inspect",
    )
    queue_status_parser.add_argument(
        "--queue-url", metavar="URL",
        help="inspect a remote queue served by 'queue-server'",
    )
    queue_status_parser.add_argument(
        "--json", metavar="PATH",
        help="write status as JSON ('-' for stdout)",
    )
    queue_status_parser.set_defaults(func=_cmd_queue_status)

    serve_parser = sub.add_parser(
        "serve", help="expose the invariant service over HTTP (JSON + SSE)"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8977,
        help="bind port (default: 8977; 0 picks a free port)",
    )
    serve_parser.add_argument(
        "--solver", default="gcln", metavar="NAME",
        help="default solver for requests that name none (default: gcln)",
    )
    serve_parser.add_argument(
        "--epochs", type=int, default=2000, help="training epochs per attempt"
    )
    _add_backend_arg(serve_parser)
    serve_parser.add_argument(
        "--cache-dir", metavar="PATH",
        help="persist traces/term matrices on disk across solves",
    )
    serve_parser.add_argument(
        "--queue-dir", metavar="PATH",
        help=(
            "solve via the distributed work queue at PATH instead of "
            "in-process (drain it with 'python -m repro worker')"
        ),
    )
    serve_parser.add_argument(
        "--queue-wait", type=float, default=None, metavar="SECONDS",
        help=(
            "with --queue-dir: give up on a request when no worker acks "
            "it within this long (default: wait forever)"
        ),
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-problem budget recorded in the queue meta (--queue-dir)",
    )
    serve_parser.add_argument(
        "--solve-threads", type=int, default=2, metavar="N",
        help="in-process solver threads (default: 2)",
    )
    serve_parser.add_argument(
        "--memo", type=int, default=256, metavar="N",
        help=(
            "finished results replayed instantly for repeated requests "
            "(LRU entries; 0 disables; default: 256)"
        ),
    )
    serve_parser.add_argument(
        "--rate", type=float, default=5.0, metavar="R",
        help="per-client sustained requests/second (<= 0 disables; default: 5)",
    )
    serve_parser.add_argument(
        "--burst", type=int, default=10, metavar="N",
        help="per-client burst capacity (default: 10)",
    )
    serve_parser.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="global concurrent-solve cap (<= 0 disables; default: 8)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    record_parser = sub.add_parser(
        "record",
        help="record a problem's train/check observations for trace-first solving",
    )
    record_parser.add_argument("problem", help="NLA problem name (see 'list')")
    record_parser.add_argument(
        "--json",
        default="-",
        metavar="PATH",
        help=(
            "where to write the trace-only recording ('-' for stdout; "
            "default: stdout)"
        ),
    )
    record_parser.set_defaults(func=_cmd_record)

    trace_parser = sub.add_parser("trace", help="dump one execution trace")
    trace_parser.add_argument("problem")
    trace_parser.add_argument(
        "--inputs", nargs="+", default=[], metavar="NAME=VALUE"
    )
    trace_parser.add_argument("--limit", type=int, default=30)
    trace_parser.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
