"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run <nla-problem>`` — run the full inference pipeline on one of the
  27 NLA benchmark problems and print the learned invariants
  (``--json PATH`` additionally writes the structured result).
* ``run-all`` — run a whole suite (``nla``, ``code2inv``, or
  ``stability``) through the parallel batch runner, with ``--jobs N``
  worker processes, per-problem ``--timeout``, and ``--json`` output.
* ``list`` — list the available benchmark problems with metadata.
* ``trace <nla-problem> --inputs k=5`` — execute a benchmark program on
  one input assignment and dump the loop-head trace.
"""

from __future__ import annotations

import argparse
import json
import sys
from fractions import Fraction

from repro.bench import NLA_PROBLEMS, nla_problem, suite_problems, SUITES
from repro.errors import ReproError
from repro.infer import InferenceConfig, infer_invariants
from repro.infer.runner import run_many, summarize
from repro.lang import run_program
from repro.smt import format_formula
from repro.utils import format_table


def _parse_assignment(pairs: list[str]) -> dict[str, object]:
    assignment: dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad input {pair!r}; expected name=value")
        name, _, value = pair.partition("=")
        try:
            assignment[name] = (
                int(value) if "/" not in value else Fraction(value)
            )
        except ValueError as exc:
            raise SystemExit(f"bad value in {pair!r}: {exc}") from exc
    return assignment


def _write_json(path: str, payload: dict) -> None:
    """Write ``payload`` as JSON to ``path`` (``-`` for stdout)."""
    text = json.dumps(payload, indent=2)
    if path == "-":
        print(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        [e.name, e.degree, e.n_vars, "yes" if e.expected_solved else "no (paper fails too)"]
        for e in NLA_PROBLEMS
    ]
    print(format_table(["problem", "degree", "vars", "paper solves"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    problem = nla_problem(args.problem)
    config = InferenceConfig(max_epochs=args.epochs)
    result = infer_invariants(problem, config)
    print(f"problem:  {problem.name}")
    print(f"solved:   {result.solved} "
          f"({result.runtime_seconds:.1f}s, {result.attempts} attempt(s))")
    for loop in result.loops:
        print(f"loop {loop.loop_index}:")
        print(f"  invariant: {format_formula(loop.invariant)}")
        print(f"  ground truth implied: {loop.ground_truth_implied}")
    if args.json:
        _write_json(args.json, result.to_dict())
    return 0 if result.solved else 1


def _cmd_run_all(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit(f"--timeout must be positive, got {args.timeout}")
    try:
        problems = suite_problems(args.suite, args.problems or None)
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    if not problems:
        raise SystemExit(f"no problems selected from suite {args.suite!r}")
    config = InferenceConfig(max_epochs=args.epochs)

    def progress(record) -> None:
        detail = (
            f"{record.result.attempts} attempt(s)"
            if record.result is not None
            else (record.error or "").splitlines()[0]
        )
        print(
            f"[{record.status:>7}] {record.name:<14} "
            f"{record.runtime_seconds:6.1f}s  {detail}",
            flush=True,
        )

    records = run_many(
        problems,
        config,
        jobs=args.jobs,
        timeout_seconds=args.timeout,
        progress=progress,
    )
    stats = summarize(records)
    rows = [
        [
            r.name,
            r.status,
            "yes" if r.solved else "no",
            r.result.attempts if r.result is not None else "-",
            f"{r.runtime_seconds:.1f}s",
        ]
        for r in records
    ]
    rows.append(
        [
            "TOTAL",
            f"{stats['ok']} ok / {stats['timeout']} timeout / {stats['error']} error",
            f"{stats['solved']}/{stats['problems']}",
            "",
            f"{stats['total_runtime_seconds']:.1f}s",
        ]
    )
    print(
        format_table(
            ["problem", "status", "solved", "attempts", "time"],
            rows,
            title=f"run-all — suite {args.suite}, {args.jobs} job(s)",
        )
    )
    if args.json:
        _write_json(
            args.json,
            {
                "suite": args.suite,
                "jobs": args.jobs,
                "timeout_seconds": args.timeout,
                "summary": stats,
                "records": [r.to_dict() for r in records],
            },
        )
    return 0 if stats["solved"] == stats["problems"] else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    problem = nla_problem(args.problem)
    assignment = _parse_assignment(args.inputs)
    trace = run_program(problem.program, assignment)
    if trace.assume_violated:
        print("assume violated; no trace")
        return 1
    variables = sorted(trace.snapshots[0].state) if trace.snapshots else []
    rows = [
        [s.loop_id, s.iteration, *[s.state[v] for v in variables]]
        for s in trace.snapshots[: args.limit]
    ]
    print(format_table(["loop", "iter", *variables], rows))
    if trace.assertion_failures:
        print(f"assertion failures: {len(trace.assertion_failures)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="G-CLN nonlinear loop invariant inference (PLDI 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark problems").set_defaults(
        func=_cmd_list
    )

    run_parser = sub.add_parser("run", help="infer invariants for a problem")
    run_parser.add_argument("problem", help="NLA problem name (see 'list')")
    run_parser.add_argument(
        "--epochs", type=int, default=2000, help="training epochs per attempt"
    )
    run_parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the structured result as JSON ('-' for stdout)",
    )
    run_parser.set_defaults(func=_cmd_run)

    all_parser = sub.add_parser(
        "run-all", help="run a whole suite through the batch runner"
    )
    all_parser.add_argument(
        "--suite", choices=SUITES, default="nla", help="which suite to run"
    )
    all_parser.add_argument(
        "--problems",
        nargs="+",
        metavar="NAME",
        help="restrict to these problem names",
    )
    all_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes"
    )
    all_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-problem wall-clock budget",
    )
    all_parser.add_argument(
        "--epochs", type=int, default=2000, help="training epochs per attempt"
    )
    all_parser.add_argument(
        "--json",
        metavar="PATH",
        help="write all records as JSON ('-' for stdout)",
    )
    all_parser.set_defaults(func=_cmd_run_all)

    trace_parser = sub.add_parser("trace", help="dump one execution trace")
    trace_parser.add_argument("problem")
    trace_parser.add_argument(
        "--inputs", nargs="+", default=[], metavar="NAME=VALUE"
    )
    trace_parser.add_argument("--limit", type=int, default=30)
    trace_parser.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
