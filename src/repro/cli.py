"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run <nla-problem>`` — run the full inference pipeline on one of the
  27 NLA benchmark problems and print the learned invariants.
* ``list`` — list the available benchmark problems with metadata.
* ``trace <nla-problem> --inputs k=5`` — execute a benchmark program on
  one input assignment and dump the loop-head trace.
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction

from repro.bench.nla import NLA_PROBLEMS, nla_problem
from repro.infer import InferenceConfig, infer_invariants
from repro.lang import run_program
from repro.smt import format_formula
from repro.utils import format_table


def _parse_assignment(pairs: list[str]) -> dict[str, object]:
    assignment: dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad input {pair!r}; expected name=value")
        name, _, value = pair.partition("=")
        try:
            assignment[name] = (
                int(value) if "/" not in value else Fraction(value)
            )
        except ValueError as exc:
            raise SystemExit(f"bad value in {pair!r}: {exc}") from exc
    return assignment


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        [e.name, e.degree, e.n_vars, "yes" if e.expected_solved else "no (paper fails too)"]
        for e in NLA_PROBLEMS
    ]
    print(format_table(["problem", "degree", "vars", "paper solves"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    problem = nla_problem(args.problem)
    config = InferenceConfig(max_epochs=args.epochs)
    result = infer_invariants(problem, config)
    print(f"problem:  {problem.name}")
    print(f"solved:   {result.solved} "
          f"({result.runtime_seconds:.1f}s, {result.attempts} attempt(s))")
    for loop in result.loops:
        print(f"loop {loop.loop_index}:")
        print(f"  invariant: {format_formula(loop.invariant)}")
        print(f"  ground truth implied: {loop.ground_truth_implied}")
    return 0 if result.solved else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    problem = nla_problem(args.problem)
    assignment = _parse_assignment(args.inputs)
    trace = run_program(problem.program, assignment)
    if trace.assume_violated:
        print("assume violated; no trace")
        return 1
    variables = sorted(trace.snapshots[0].state) if trace.snapshots else []
    rows = [
        [s.loop_id, s.iteration, *[s.state[v] for v in variables]]
        for s in trace.snapshots[: args.limit]
    ]
    print(format_table(["loop", "iter", *variables], rows))
    if trace.assertion_failures:
        print(f"assertion failures: {len(trace.assertion_failures)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="G-CLN nonlinear loop invariant inference (PLDI 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark problems").set_defaults(
        func=_cmd_list
    )

    run_parser = sub.add_parser("run", help="infer invariants for a problem")
    run_parser.add_argument("problem", help="NLA problem name (see 'list')")
    run_parser.add_argument(
        "--epochs", type=int, default=2000, help="training epochs per attempt"
    )
    run_parser.set_defaults(func=_cmd_run)

    trace_parser = sub.add_parser("trace", help="dump one execution trace")
    trace_parser.add_argument("problem")
    trace_parser.add_argument(
        "--inputs", nargs="+", default=[], metavar="NAME=VALUE"
    )
    trace_parser.add_argument("--limit", type=int, default=30)
    trace_parser.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
