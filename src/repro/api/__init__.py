"""Public API: the unified Solver protocol and the InvariantService.

This package is the single public entry point for invariant inference.
Every strategy — the G-CLN pipeline and all the baselines — implements
the :class:`~repro.api.solver.Solver` protocol, is reachable through
the registry (:func:`get_solver` / :func:`available_solvers`), and
returns the same :class:`~repro.api.solver.SolveResult` wire format,
so callers compare strategies without branching on which one ran.

For anything longer-lived than a one-shot call, use
:class:`~repro.api.service.InvariantService`: it owns a bounded
:class:`~repro.sampling.cache.TraceCache` shared across solves and an
:class:`~repro.api.events.EventBus` streaming typed lifecycle events
(:class:`AttemptStarted`, :class:`StageTimed`,
:class:`CandidateChecked`, :class:`ProblemSolved`) to subscribers.

Registered solvers (see ``python -m repro solvers``):

========================  ====================================================
``gcln``                  full G-CLN pipeline (gated CLN + bounds + retries)
``guess_and_check``       exact nullspace equality learner (NumInv core)
``octahedral``            tightest ±x ±y ≤ c bounds (NumInv inequalities)
``numinv``                Guess-and-Check equalities + octahedral bounds
``enumerative``           PIE-style enumerative search within a budget
``plain_cln``             ungated template CLN (CLN2INV), single run
========================  ====================================================
"""

from repro.api.events import (
    STAGES,
    AttemptStarted,
    CandidateChecked,
    Event,
    EventBus,
    EventSink,
    ProblemSolved,
    StageTimed,
    timed_stage,
)
from repro.api.solver import (
    LOOP_KEYS,
    RESULT_KEYS,
    LoopReport,
    SolveResult,
    Solver,
    SolverCapabilities,
    SolverCapabilityError,
    SolverEntry,
    UnknownSolverError,
    available_solvers,
    get_solver,
    register_solver,
    require_solver_supports,
    solver_entries,
    unregister_solver,
)
from repro.api.adapters import (
    EnumerativeSolver,
    GCLNSolver,
    GuessAndCheckSolver,
    NumInvSolver,
    OctahedralSolver,
    PlainCLNSolver,
    register_default_solvers,
)
from repro.api.memo import ResultMemo
from repro.api.service import DEFAULT_CACHE_ENTRIES, InvariantService

__all__ = [
    # events
    "STAGES",
    "Event",
    "EventBus",
    "EventSink",
    "AttemptStarted",
    "StageTimed",
    "CandidateChecked",
    "ProblemSolved",
    "timed_stage",
    # solver protocol + registry
    "Solver",
    "SolveResult",
    "LoopReport",
    "SolverEntry",
    "SolverCapabilities",
    "SolverCapabilityError",
    "UnknownSolverError",
    "RESULT_KEYS",
    "LOOP_KEYS",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "available_solvers",
    "require_solver_supports",
    "solver_entries",
    # adapters
    "GCLNSolver",
    "GuessAndCheckSolver",
    "OctahedralSolver",
    "NumInvSolver",
    "EnumerativeSolver",
    "PlainCLNSolver",
    "register_default_solvers",
    # service
    "InvariantService",
    "ResultMemo",
    "DEFAULT_CACHE_ENTRIES",
]
