"""The long-lived invariant-inference service.

:class:`InvariantService` is the session object the public API is
built around: it owns one bounded :class:`~repro.sampling.cache.
TraceCache` shared by every solve (so repeated queries on the same
program skip interpretation entirely), per-solver configuration, and
an :class:`~repro.api.events.EventBus` that streams typed lifecycle
events to subscribers.  The CLI, the batch benchmarks, and any future
async front-end (ROADMAP "Async serving") all drive inference through
this one object.

Usage::

    from repro.api import InvariantService, StageTimed

    service = InvariantService()
    service.subscribe(lambda e: print(e.to_dict()), kinds=(StageTimed,))
    result = service.solve(problem)                    # G-CLN
    baseline = service.solve(problem, solver="guess_and_check")
    assert set(result.to_dict()) == set(baseline.to_dict())  # same schema

Events are delivered synchronously on the solving thread.  With
``solve_many(jobs > 1)`` the solves happen in worker processes, so
per-stage timings travel back inside each ``SolveResult`` instead of
streaming live; only ``ProblemSolved`` completion events are emitted
(from the parent) in that mode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro.api.events import Event, EventBus, ProblemSolved
from repro.api.memo import ResultMemo
from repro.api.solver import (
    SolveResult,
    available_solvers,
    get_solver,
    require_solver_supports,
)
from repro.sampling.cache import TraceCache

if TYPE_CHECKING:  # pragma: no cover
    from repro.infer.config import InferenceConfig
    from repro.infer.problem import Problem
    from repro.infer.runner import ProblemRecord

# A long-lived service sees many problems; give it more headroom than a
# single-problem engine (TraceCache defaults to 128) while still
# bounding memory growth across an unbounded problem stream.
DEFAULT_CACHE_ENTRIES = 512


class InvariantService:
    """Long-lived session: shared cache + per-solver config + event bus.

    Args:
        config: default :class:`~repro.infer.config.InferenceConfig`
            for every solver (``None`` = paper defaults).
        solver_configs: per-solver overrides keyed by registry name;
            they win over ``config`` for that solver.
        cache: inject an existing :class:`TraceCache` to share with
            other components; by default the service owns a fresh one
            bounded to ``max_cache_entries``.
        max_cache_entries: LRU bound for the owned cache (ignored when
            ``cache`` is injected).
        cache_dir: spill directory for the owned cache (ignored when
            ``cache`` is injected): traces and term matrices persist
            across processes keyed by content fingerprint, so reruns
            skip interpretation entirely.
        memo_size: opt-in finished-result memo.  With ``memo_size=N``
            the service keeps the last N :class:`SolveResult`\\ s keyed
            by canonical problem fingerprint and :meth:`solve` returns
            a memo hit without re-running the solver at all — zero
            training epochs, zero interpretation.  A hit still emits
            ``ProblemSolved`` so subscribers observe every completion.
            Default 0 (off): a research service usually *wants* to
            re-run training to observe variance.
    """

    def __init__(
        self,
        config: "InferenceConfig | None" = None,
        *,
        solver_configs: Mapping[str, "InferenceConfig"] | None = None,
        cache: TraceCache | None = None,
        max_cache_entries: int = DEFAULT_CACHE_ENTRIES,
        cache_dir: str | None = None,
        memo_size: int = 0,
    ):
        self.cache = (
            cache
            if cache is not None
            else TraceCache(max_entries=max_cache_entries, cache_dir=cache_dir)
        )
        self.bus = EventBus()
        self.memo: ResultMemo[SolveResult] | None = (
            ResultMemo(max_entries=memo_size) if memo_size > 0 else None
        )
        self._default_config = config
        self._solver_configs: dict[str, "InferenceConfig"] = dict(
            solver_configs or {}
        )

    # -- configuration ---------------------------------------------------------

    def configure(self, solver: str, config: "InferenceConfig") -> None:
        """Set the config used for ``solver`` (overrides the default)."""
        get_solver(solver)  # validate the name eagerly
        self._solver_configs[solver] = config

    def config_for(self, solver: str) -> "InferenceConfig | None":
        """Effective config for one solver (override, else default)."""
        return self._solver_configs.get(solver, self._default_config)

    @property
    def cache_stats(self) -> dict[str, int]:
        """Shared-cache counters (hits/misses/evictions), a snapshot."""
        return self.cache.stats.to_dict()

    # -- events ----------------------------------------------------------------

    def subscribe(
        self,
        callback: Callable[[Event], None],
        kinds: Iterable[type] | None = None,
    ) -> Callable[[], None]:
        """Stream lifecycle events to ``callback``; returns unsubscriber.

        ``kinds`` optionally filters to specific event classes, e.g.
        ``kinds=(StageTimed,)`` for a profiler.
        """
        return self.bus.subscribe(callback, kinds=kinds)

    # -- solving ---------------------------------------------------------------

    def solve(self, problem: "Problem", solver: str = "gcln") -> SolveResult:
        """Run one registered solver on one problem.

        The solver shares the service cache and emits events to the
        service bus; a ``ProblemSolved`` event is emitted on completion
        whether or not the problem was solved.  With ``memo_size > 0``
        a repeated (problem, solver, config) returns the memoized
        result without running the solver (the completion event is
        still emitted).

        Raises:
            UnknownSolverError: for unregistered solver names (the
                message lists :func:`available_solvers`).
            SolverCapabilityError: when the problem is trace-only and
                the solver's registration does not declare trace-only
                support.
        """
        require_solver_supports(solver, problem)
        solver_obj = get_solver(solver)
        key: str | None = None
        if self.memo is not None:
            from repro.utils.fingerprint import problem_fingerprint

            key = problem_fingerprint(problem, solver, self.config_for(solver))
            memoized = self.memo.get(key)
            if memoized is not None:
                self.bus.emit(
                    ProblemSolved(
                        problem=problem.name,
                        solver=solver,
                        solved=memoized.solved,
                        runtime_seconds=memoized.runtime_seconds,
                        attempts=memoized.attempts,
                    )
                )
                return memoized
        result = solver_obj.solve(
            problem,
            config=self.config_for(solver),
            cache=self.cache,
            events=self.bus.emit,
        )
        if self.memo is not None and key is not None:
            self.memo.put(key, result)
        self.bus.emit(
            ProblemSolved(
                problem=problem.name,
                solver=solver,
                solved=result.solved,
                runtime_seconds=result.runtime_seconds,
                attempts=result.attempts,
            )
        )
        return result

    def solve_many(
        self,
        problems: Sequence["Problem"],
        solver: str = "gcln",
        *,
        jobs: int = 1,
        timeout_seconds: float | None = None,
        progress: Callable[["ProblemRecord"], None] | None = None,
        cross_batch: int = 1,
        workers: "int | str" = 1,
        queue_dir: str | None = None,
        min_workers: int = 1,
        max_workers: int | None = None,
        fleet_status: Callable[[dict], None] | None = None,
    ) -> list["ProblemRecord"]:
        """Batch-solve a suite through the runner, one record per problem.

        Exactly one ``ProblemSolved`` event is emitted per record, in
        completion order, including timed-out and errored problems
        (``attempts`` is 0 when no result came back).  With
        ``jobs == 1`` every solve runs in-process through
        :meth:`solve`, sharing the service cache and streaming the full
        event feed.  With ``jobs > 1`` the problems fan out over a
        process pool; each worker builds its own solver and in-memory
        cache, but when the service cache spills to disk
        (``cache_dir``) every worker shares that on-disk store.
        Per-stage timings come back inside each record's result, and
        only the completion events stream live.

        ``cross_batch > 1`` (G-CLN only, single process) trains
        same-shape attempts from *different* problems in one stacked
        call (:mod:`repro.infer.batcher`), sharing the service cache
        and streaming the full event feed; the per-problem timeout is
        then soft (checked between training rounds).

        ``workers > 1`` (or any value with ``queue_dir``) fans the
        suite out over the distributed runner (:mod:`repro.dist`):
        local worker processes drain a journaled work queue, each
        running its own service over the same on-disk cache spill as
        this one (when this service has a ``cache_dir``).
        ``workers="auto"`` makes the fleet elastic (sized to queue
        depth between ``min_workers`` and ``max_workers``), and
        ``fleet_status`` receives live fleet/health snapshots.  With a
        durable ``queue_dir`` (or a queue-server URL) a re-run
        resumes: journaled problems are not re-solved.  Mutually
        exclusive with ``jobs``.
        """
        from repro.infer.runner import STATUS_OK, run_many

        get_solver(solver)  # fail fast on unknown names, before any work
        distributed = (
            workers == "auto" or queue_dir is not None
            or (isinstance(workers, int) and workers > 1)
        )
        inline = jobs == 1 and cross_batch <= 1 and not distributed

        def on_record(record: "ProblemRecord") -> None:
            # Inline ok-records already emitted ProblemSolved via
            # self.solve; everything else (pool records, timeouts,
            # errors) completes here.
            if not (inline and record.status == STATUS_OK):
                self.bus.emit(
                    ProblemSolved(
                        problem=record.name,
                        solver=solver,
                        solved=record.solved,
                        runtime_seconds=record.runtime_seconds,
                        attempts=(
                            record.result.attempts
                            if record.result is not None
                            else 0
                        ),
                    )
                )
            if progress is not None:
                progress(record)

        return run_many(
            problems,
            self.config_for(solver),
            jobs=jobs,
            timeout_seconds=timeout_seconds,
            progress=on_record,
            solver=solver,
            solve_fn=(
                (lambda problem, _config: self.solve(problem, solver))
                if inline
                else None
            ),
            cross_batch=cross_batch,
            cache_dir=(
                str(self.cache.cache_dir)
                if self.cache.cache_dir is not None
                else None
            ),
            cache=self.cache if cross_batch > 1 and not distributed else None,
            events=(
                self.bus.emit if cross_batch > 1 and not distributed else None
            ),
            workers=workers,
            queue_dir=queue_dir,
            min_workers=min_workers,
            max_workers=max_workers,
            fleet_status=fleet_status,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InvariantService(solvers={list(available_solvers())}, "
            f"cache_entries={len(self.cache)}, subscribers={len(self.bus)})"
        )
