"""Solver adapters: the G-CLN engine and the baseline strategies as Solvers.

Each adapter wraps one inference strategy behind the
:class:`~repro.api.solver.Solver` protocol so that the CLI, the batch
runner, and the benchmarks dispatch by registry name and compare
strategies under one :class:`~repro.api.solver.SolveResult` schema.

The baseline adapters share a skeleton: collect loop-head states
through the (shared) :class:`~repro.sampling.cache.TraceCache`,
generate candidate atoms with the strategy, filter them to the sound
subset with the :class:`~repro.checker.vc.InvariantChecker`, and score
"solved" exactly like the engine does (documented ground truth implied,
or a checker-valid conjunction when no ground truth exists).  Each
step emits the same lifecycle events the engine emits, so per-stage
profiles are comparable across strategies.

Layering note: :mod:`repro.infer` imports :mod:`repro.api.events`, so
this module imports the inference runtime lazily (inside functions) to
keep the import graph acyclic.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.api.events import (
    STAGES,
    AttemptStarted,
    Event,
    EventSink,
    StageTimed,
    emit_check_events,
    timed_stage,
)
from repro.api.solver import (
    LoopReport,
    SolveResult,
    SolverCapabilities,
    register_solver,
)
from repro.baselines import (
    PlainCLN,
    enumerative_search,
    guess_and_check_equalities,
    octahedral_inequalities,
    train_plain_cln,
)
from repro.checker.result import CheckOutcome
from repro.checker.trace import make_checker
from repro.sampling.cache import TraceCache
from repro.sampling.termgen import TermBasis, build_term_basis
from repro.smt.formula import TRUE, And, Atom
from repro.smt.printer import format_formula
from repro.smt.simplify import simplify

if TYPE_CHECKING:  # pragma: no cover
    from repro.infer.config import InferenceConfig
    from repro.infer.problem import Problem


def _silent(_event: Event) -> None:
    """Default event sink: drop everything."""


def solve_result_from_inference(result) -> SolveResult:
    """Package an engine :class:`~repro.infer.pipeline.InferenceResult`
    as the registry-wide :class:`SolveResult` schema.

    Shared by :class:`GCLNSolver` and the cross-problem batcher
    (:mod:`repro.infer.batcher`), which drives engines directly.
    """
    loops = []
    for loop in result.loops:
        loops.append(
            LoopReport(
                loop_index=loop.loop_index,
                invariant=format_formula(loop.invariant),
                sound_atoms=[str(a) for a in loop.sound_atoms],
                candidate_atoms=[str(a) for a in loop.candidate_atoms],
                rejected_atoms=[
                    [atom, reason] for atom, reason in loop.rejected_atoms
                ],
                ground_truth_implied=loop.ground_truth_implied,
            )
        )
    return SolveResult(
        solver=GCLNSolver.name,
        problem=result.problem_name,
        solved=result.solved,
        runtime_seconds=result.runtime_seconds,
        attempts=result.attempts,
        loops=loops,
        notes=list(result.notes),
        stage_timings=dict(result.stage_timings),
        cache_stats=dict(result.cache_stats),
        backend=result.backend,
        train_epochs=result.train_epochs,
        checking=result.checking,
        raw=result,
    )


class GCLNSolver:
    """The full G-CLN pipeline (:class:`~repro.infer.pipeline.InferenceEngine`)."""

    name = "gcln"

    def solve(
        self,
        problem: "Problem",
        *,
        config: "InferenceConfig | None" = None,
        cache: TraceCache | None = None,
        events: EventSink | None = None,
    ) -> SolveResult:
        from repro.infer.pipeline import InferenceEngine

        engine = InferenceEngine(problem, config, cache=cache, events=events)
        return solve_result_from_inference(engine.run())


class _BaselineSolver:
    """Shared skeleton for the single-attempt baseline strategies.

    Subclasses implement :meth:`_candidates` (and set :attr:`name`);
    everything else — state collection, checker filtering, solved
    scoring, event emission, stage timing — is common.
    """

    name = "baseline"

    def solve(
        self,
        problem: "Problem",
        *,
        config: "InferenceConfig | None" = None,
        cache: TraceCache | None = None,
        events: EventSink | None = None,
    ) -> SolveResult:
        from repro.infer.config import InferenceConfig
        from repro.infer.pipeline import _ground_truth_implied, _reduce_redundant
        from repro.infer.stages import collect_states

        emit = events if events is not None else _silent
        cache = cache if cache is not None else TraceCache()
        config = config if config is not None else InferenceConfig()
        start = time.perf_counter()
        timings = {stage: 0.0 for stage in STAGES}
        notes: list[str] = []
        n_loops = problem.n_loops
        if n_loops == 0:
            from repro.errors import InferenceError

            raise InferenceError(f"problem {problem.name!r} has no loops")

        emit(AttemptStarted(problem=problem.name, solver=self.name, attempt=1))
        with timed_stage(timings, "collect"):
            dataset = collect_states(problem, config, None, cache)
        checker = make_checker(problem, cache=cache)

        loops: list[LoopReport] = []
        all_implied = True
        last_invariant = TRUE
        last_sound: list[Atom] = []
        for loop_index in range(n_loops):
            states = dataset.states[loop_index]
            candidates: list[Atom] = []
            if len(states) >= 3:
                candidates = self._candidates(
                    problem, config, loop_index, states, cache, timings, notes
                )
            with timed_stage(timings, "check"):
                filtered = checker.filter_sound_atoms(loop_index, candidates)
            if events is not None:
                emit_check_events(
                    emit,
                    problem.name,
                    self.name,
                    loop_index,
                    filtered.sound,
                    filtered.rejected,
                )
            reduced = _reduce_redundant(filtered.sound)
            invariant = simplify(And(reduced)) if reduced else TRUE
            implied = _ground_truth_implied(
                problem.ground_truth_atoms(loop_index), filtered.sound
            )
            if problem.ground_truth.get(loop_index) and not implied:
                all_implied = False
            last_invariant, last_sound = invariant, filtered.sound
            loops.append(
                LoopReport(
                    loop_index=loop_index,
                    invariant=format_formula(invariant),
                    sound_atoms=[str(a) for a in filtered.sound],
                    candidate_atoms=[str(a) for a in candidates],
                    rejected_atoms=[
                        [str(a), reason] for a, reason in filtered.rejected
                    ],
                    ground_truth_implied=implied,
                )
            )

        # Solved scoring mirrors InferenceEngine.run: with ground truth,
        # every documented loop invariant must be implied; without it,
        # the checker must validate a non-trivial final conjunction.
        if any(problem.ground_truth.values()):
            solved = all_implied
        else:
            solved = False
            if last_sound:
                posts = (
                    [s.cond for s in problem.program.asserts]
                    if problem.program_backed
                    else []
                )
                with timed_stage(timings, "check"):
                    report = checker.check_invariant(
                        n_loops - 1, last_invariant, posts
                    )
                solved = report.outcome is CheckOutcome.VALID

        for stage in STAGES:
            emit(
                StageTimed(
                    problem=problem.name,
                    solver=self.name,
                    stage=stage,
                    seconds=timings[stage],
                    attempt=1,
                )
            )
        return SolveResult(
            solver=self.name,
            problem=problem.name,
            solved=solved,
            runtime_seconds=time.perf_counter() - start,
            attempts=1,
            loops=loops,
            notes=notes,
            stage_timings=timings,
            cache_stats=cache.stats.to_dict(),
            checking=checker.checking,
        )

    # -- strategy hooks --------------------------------------------------------

    def _candidates(
        self,
        problem: "Problem",
        config: "InferenceConfig",
        loop_index: int,
        states: list[dict],
        cache: TraceCache,
        timings: dict[str, float],
        notes: list[str],
    ) -> list[Atom]:
        raise NotImplementedError

    def _basis_and_states(
        self, problem: "Problem", loop_index: int, states: list[dict]
    ) -> tuple[TermBasis, list[dict]]:
        """Full candidate-term basis plus the states it can evaluate on.

        States where an external function would see a non-integer
        argument are dropped, via the same filter the engine's matrix
        stage uses.
        """
        from repro.infer.stages import integer_external_states

        variables = problem.loop_variables(loop_index)
        basis = build_term_basis(
            variables, problem.max_degree, externals=problem.externals
        )
        return basis, integer_external_states(states, problem.externals)


class GuessAndCheckSolver(_BaselineSolver):
    """Exact nullspace equality learning [Sharma et al. 2013].

    NumInv's equality core: evaluates the polynomial kernel and reads
    equalities off the exact rational nullspace.  Cannot learn
    inequalities or disjunctions.
    """

    name = "guess_and_check"

    def __init__(self, max_invariants: int = 40):
        self.max_invariants = max_invariants

    def _candidates(self, problem, config, loop_index, states, cache, timings, notes):
        basis, usable = self._basis_and_states(problem, loop_index, states)
        with timed_stage(timings, "extract"):
            return guess_and_check_equalities(
                usable, basis, max_invariants=self.max_invariants
            )


class OctahedralSolver(_BaselineSolver):
    """Octahedral (±x ±y ≤ c) bound inference, NumInv's inequality domain."""

    name = "octahedral"

    def _candidates(self, problem, config, loop_index, states, cache, timings, notes):
        variables = [
            v for v in problem.loop_variables(loop_index) if states and v in states[0]
        ]
        with timed_stage(timings, "extract"):
            return octahedral_inequalities(states, variables)


class NumInvSolver(_BaselineSolver):
    """NumInv-style combination: nullspace equalities + octahedral bounds.

    This is the paper's Table 2 "NumInv" comparison column: exact
    Guess-and-Check equalities plus the tightest octahedral (±x ±y ≤ c)
    inequalities, both checker-filtered.  It solves linear problems and
    nonlinear equalities but misses nonlinear / 3-variable bounds.
    """

    name = "numinv"

    def __init__(self, max_invariants: int = 40):
        self.max_invariants = max_invariants

    def _candidates(self, problem, config, loop_index, states, cache, timings, notes):
        basis, usable = self._basis_and_states(problem, loop_index, states)
        variables = [
            v for v in problem.loop_variables(loop_index) if states and v in states[0]
        ]
        with timed_stage(timings, "extract"):
            atoms = guess_and_check_equalities(
                usable, basis, max_invariants=self.max_invariants
            )
            atoms.extend(octahedral_inequalities(states, variables))
        return atoms


class EnumerativeSolver(_BaselineSolver):
    """PIE-style enumerative template search within a candidate budget."""

    name = "enumerative"

    def __init__(self, budget: int = 200_000, max_terms: int = 3):
        self.budget = budget
        self.max_terms = max_terms

    def _candidates(self, problem, config, loop_index, states, cache, timings, notes):
        basis, usable = self._basis_and_states(problem, loop_index, states)
        with timed_stage(timings, "extract"):
            atoms, examined, exhausted = enumerative_search(
                usable, basis, max_terms=self.max_terms, budget=self.budget
            )
        notes.append(
            f"loop {loop_index}: enumerated {examined} candidates"
            + (" (budget exhausted)" if exhausted else "")
        )
        return atoms


class PlainCLNSolver(_BaselineSolver):
    """Template-based ungated CLN (CLN2INV), one training run, no restarts."""

    name = "plain_cln"

    def __init__(self, n_units: int = 4, seed: int = 1):
        self.n_units = n_units
        self.seed = seed

    def _candidates(self, problem, config, loop_index, states, cache, timings, notes):
        from repro.errors import TrainingError
        from repro.infer.stages import build_matrix, collect_states, derive_loop_rng

        # Reuse the engine's memoized matrix stage so a service cache
        # shares term matrices between this baseline and the G-CLN.
        with timed_stage(timings, "collect"):
            dataset = collect_states(problem, config, None, cache)
            bundle = build_matrix(problem, config, dataset, loop_index, cache)
        rng = derive_loop_rng(self.seed, loop_index)
        atoms: list[Atom] = list(bundle.degenerate)
        try:
            with timed_stage(timings, "train"):
                model = PlainCLN(len(bundle.basis), self.n_units, rng)
                trained = train_plain_cln(
                    model,
                    bundle.data,
                    bundle.basis,
                    states,
                    max_epochs=config.max_epochs,
                )
            atoms.extend(trained)
        except TrainingError as exc:
            notes.append(f"loop {loop_index}: training failed: {exc}")
        return atoms


def register_default_solvers() -> None:
    """Register the built-in strategies (idempotent)."""
    from repro.api.solver import _REGISTRY

    defaults = [
        (
            GCLNSolver,
            "full G-CLN pipeline (gated CLN + PBQU bounds + CEGIS retries)",
            SolverCapabilities(trace_only=True, inequalities=True, fractional=True),
        ),
        (
            GuessAndCheckSolver,
            "exact nullspace equality learner (NumInv core)",
            SolverCapabilities(trace_only=True),
        ),
        (
            OctahedralSolver,
            "tightest ±x ±y <= c bounds (NumInv inequality domain)",
            SolverCapabilities(trace_only=True, inequalities=True),
        ),
        (
            NumInvSolver,
            "Guess-and-Check equalities + octahedral bounds (NumInv)",
            SolverCapabilities(trace_only=True, inequalities=True),
        ),
        (
            EnumerativeSolver,
            "PIE-style enumerative atom search within a budget",
            SolverCapabilities(trace_only=True),
        ),
        (
            PlainCLNSolver,
            "ungated template CLN (CLN2INV), single training run",
            SolverCapabilities(trace_only=True),
        ),
    ]
    for cls, description, caps in defaults:
        if cls.name not in _REGISTRY:
            register_solver(
                cls.name, cls, description=description, capabilities=caps
            )


register_default_solvers()
