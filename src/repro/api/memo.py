"""Bounded, thread-safe memo of finished solve results.

Distinct from the :class:`~repro.sampling.cache.TraceCache`: the trace
cache memoizes *intermediate* artifacts (traces, term matrices) so a
repeated solve skips interpretation but still trains; a
:class:`ResultMemo` memoizes the *finished* :class:`~repro.api.solver.
SolveResult` keyed by the canonical problem fingerprint, so a repeated
solve skips everything.  Both the long-lived
:class:`~repro.api.service.InvariantService` (opt-in ``memo_size=N``)
and the HTTP front end (:mod:`repro.serve`) use it; it lives here so
the serving layer depends on the API, never the reverse.

Keys are :func:`repro.utils.fingerprint.problem_fingerprint` strings —
they cover the problem, the solver name, and the effective config, so
a config change can never replay a stale result.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, TypeVar

T = TypeVar("T")


class ResultMemo(Generic[T]):
    """A bounded LRU map from fingerprint to finished value.

    Thread-safe: the serving front end hits it from executor threads
    while the event loop reads stats.  ``max_entries <= 0`` disables
    storage entirely (``get`` always misses), which lets callers keep
    one unconditional code path.
    """

    def __init__(self, max_entries: int = 128):
        self.max_entries = max_entries
        self._entries: OrderedDict[str, T] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> T | None:
        """The memoized value for ``key``, or ``None`` (marks it fresh)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: str, value: T) -> None:
        """Store ``value``; evicts the least-recently-used overflow."""
        if self.max_entries <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def stats(self) -> dict[str, int]:
        """Counter snapshot (hits/misses/evictions/entries)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
            }
