"""The unified ``Solver`` protocol, result type, and solver registry.

Every inference strategy in the repo — the G-CLN pipeline and all the
baselines — is exposed as a :class:`Solver`: one object with a ``name``
and a ``solve(problem, ...)`` method returning a :class:`SolveResult`.
The registry maps names to solver factories so the CLI, the batch
runner, and the benchmarks dispatch by string and compare strategies
under one result schema.

The wire format is deliberately rigid: :data:`RESULT_KEYS` and
:data:`LOOP_KEYS` enumerate exactly the keys every
``SolveResult.to_dict()`` emits, regardless of solver, so downstream
consumers (JSON records, dashboards, the sharded runner planned in the
ROADMAP) never branch on the strategy that produced a record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.api.events import STAGES, EventSink
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.infer.config import InferenceConfig
    from repro.infer.problem import Problem
    from repro.sampling.cache import TraceCache


class UnknownSolverError(ReproError):
    """Raised when a solver name is not in the registry."""


class SolverCapabilityError(ReproError):
    """Raised when a solver cannot handle the problem it was given
    (e.g. a trace-only problem sent to a solver that needs a program)."""


@dataclass(frozen=True)
class SolverCapabilities:
    """What a registered solver supports, for dispatch and listing.

    Attributes:
        trace_only: can solve problems backed by recorded traces alone
            (no executable program; degraded checking).  Enforced by
            :func:`require_solver_supports` at every entry point.
        inequalities: can learn inequality atoms (advisory — shown by
            ``python -m repro solvers`` and ``GET /v1/solvers``).
        fractional: participates in fractional sampling (§4.3;
            advisory).
    """

    trace_only: bool = False
    inequalities: bool = False
    fractional: bool = False

    def to_dict(self) -> dict[str, bool]:
        return {
            "trace_only": self.trace_only,
            "inequalities": self.inequalities,
            "fractional": self.fractional,
        }


@dataclass
class LoopReport:
    """Per-loop outcome, identical in shape for every solver.

    Attributes:
        loop_index: which loop of the program.
        invariant: the learned invariant, pretty-printed.
        sound_atoms: atoms the checker validated (reachability-sound
            and inductive).
        candidate_atoms: everything the strategy proposed for the loop.
        rejected_atoms: ``[atom, reason]`` pairs the checker refused.
        ground_truth_implied: whether the documented invariant follows
            from the sound atoms.
    """

    loop_index: int
    invariant: str
    sound_atoms: list[str] = field(default_factory=list)
    candidate_atoms: list[str] = field(default_factory=list)
    rejected_atoms: list[list[str]] = field(default_factory=list)
    ground_truth_implied: bool = False

    def to_dict(self) -> dict:
        return {
            "loop_index": self.loop_index,
            "invariant": self.invariant,
            "sound_atoms": list(self.sound_atoms),
            "candidate_atoms": list(self.candidate_atoms),
            "rejected_atoms": [list(pair) for pair in self.rejected_atoms],
            "ground_truth_implied": self.ground_truth_implied,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoopReport":
        """Rebuild a report from :meth:`to_dict` output (wire format)."""
        return cls(
            loop_index=data["loop_index"],
            invariant=data["invariant"],
            sound_atoms=list(data.get("sound_atoms", [])),
            candidate_atoms=list(data.get("candidate_atoms", [])),
            rejected_atoms=[
                list(pair) for pair in data.get("rejected_atoms", [])
            ],
            ground_truth_implied=data.get("ground_truth_implied", False),
        )


@dataclass
class SolveResult:
    """Outcome of one ``Solver.solve`` call — the common wire format.

    Attributes:
        solver: registry name of the strategy that produced the result.
        problem: problem name.
        solved: whether the documented invariant (or, without ground
            truth, a checker-valid conjunction) was reached.
        runtime_seconds: wall-clock time for the whole solve.
        attempts: attempts used (baselines always report 1).
        loops: one :class:`LoopReport` per loop.
        notes: free-form diagnostics.
        stage_timings: wall-clock seconds per pipeline stage, keyed by
            :data:`repro.api.events.STAGES` (ROADMAP "Per-stage
            profiling").
        cache_stats: the :class:`~repro.sampling.cache.TraceCache`
            counters observed at the end of the solve.
        backend: resolved tape-replay backend name used for training
            (``"numpy"``/``"fused"``/``"numba"``; empty for solvers
            that do not train).
        train_epochs: total training epochs spent across attempts
            (0 for solvers that do not train; the warm-start CI smoke
            compares warm vs cold totals).
        checking: the checker mode the solve ran under —
            ``"symbolic+bounded"`` for program-backed problems, the
            degraded ``"bounded-holdout"`` for trace-only problems
            (see :mod:`repro.checker.result`).
        raw: the strategy's native result object when it has one (the
            G-CLN adapter stores its ``InferenceResult`` here); never
            serialized.
    """

    solver: str
    problem: str
    solved: bool
    runtime_seconds: float = 0.0
    attempts: int = 1
    loops: list[LoopReport] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    stage_timings: dict[str, float] = field(default_factory=dict)
    cache_stats: dict[str, int] = field(default_factory=dict)
    backend: str = ""
    train_epochs: int = 0
    checking: str = ""
    raw: object | None = None

    def invariant(self, loop_index: int = 0) -> str:
        """Pretty-printed invariant for one loop (``"true"`` if absent)."""
        for loop in self.loops:
            if loop.loop_index == loop_index:
                return loop.invariant
        return "true"

    def to_dict(self) -> dict:
        """JSON-serializable record; keys are exactly :data:`RESULT_KEYS`."""
        timings = {s: float(self.stage_timings.get(s, 0.0)) for s in STAGES}
        return {
            "solver": self.solver,
            "problem": self.problem,
            "solved": self.solved,
            "runtime_seconds": self.runtime_seconds,
            "attempts": self.attempts,
            "notes": list(self.notes),
            "stage_timings": timings,
            "cache_stats": dict(self.cache_stats),
            "backend": self.backend,
            "train_epochs": self.train_epochs,
            "checking": self.checking,
            "loops": [loop.to_dict() for loop in self.loops],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SolveResult":
        """Rebuild a result from :meth:`to_dict` output.

        This is how results come back over process/host boundaries —
        e.g. the distributed runner's journal; ``raw`` is never
        serialized, so round-tripped results carry ``raw=None``.
        """
        return cls(
            solver=data["solver"],
            problem=data["problem"],
            solved=data["solved"],
            runtime_seconds=data.get("runtime_seconds", 0.0),
            attempts=data.get("attempts", 1),
            loops=[LoopReport.from_dict(d) for d in data.get("loops", [])],
            notes=list(data.get("notes", [])),
            stage_timings=dict(data.get("stage_timings", {})),
            cache_stats=dict(data.get("cache_stats", {})),
            backend=data.get("backend", ""),
            train_epochs=int(data.get("train_epochs", 0)),
            checking=data.get("checking", ""),
        )


# The exact key sets of the wire format, for schema validation.
RESULT_KEYS = frozenset(
    {
        "solver",
        "problem",
        "solved",
        "runtime_seconds",
        "attempts",
        "notes",
        "stage_timings",
        "cache_stats",
        "backend",
        "train_epochs",
        "checking",
        "loops",
    }
)
LOOP_KEYS = frozenset(
    {
        "loop_index",
        "invariant",
        "sound_atoms",
        "candidate_atoms",
        "rejected_atoms",
        "ground_truth_implied",
    }
)


@runtime_checkable
class Solver(Protocol):
    """What every registered inference strategy implements."""

    name: str

    def solve(
        self,
        problem: "Problem",
        *,
        config: "InferenceConfig | None" = None,
        cache: "TraceCache | None" = None,
        events: EventSink | None = None,
    ) -> SolveResult:
        """Run the strategy on one problem.

        Args:
            problem: the benchmark problem.
            config: shared pipeline knobs; strategies use the subset
                that applies to them (``None`` = defaults).
            cache: trace/matrix memo to share with other solves; pass
                the service's cache so strategies reuse each other's
                trace collection.
            events: sink for lifecycle events (``None`` = silent).
        """
        ...


@dataclass(frozen=True)
class SolverEntry:
    """One registry row: the factory plus display metadata."""

    name: str
    factory: Callable[[], Solver]
    description: str = ""
    # Conservative default: a registration that declares nothing is
    # assumed to need an executable program (trace-only dispatch to it
    # raises SolverCapabilityError instead of failing mid-solve).
    capabilities: SolverCapabilities = SolverCapabilities()


_REGISTRY: dict[str, SolverEntry] = {}


def register_solver(
    name: str,
    factory: Callable[[], Solver],
    *,
    description: str = "",
    capabilities: SolverCapabilities | None = None,
    replace: bool = False,
) -> None:
    """Register a solver factory under ``name``.

    Args:
        name: registry key (what ``--solver`` accepts).
        factory: zero-argument callable returning a :class:`Solver`.
        description: one-line summary for ``python -m repro solvers``.
        capabilities: what the solver supports; ``None`` declares
            nothing (notably: no trace-only support).
        replace: allow overwriting an existing registration.
    """
    if not replace and name in _REGISTRY:
        raise ReproError(
            f"solver {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = SolverEntry(
        name=name,
        factory=factory,
        description=description,
        capabilities=(
            capabilities if capabilities is not None else SolverCapabilities()
        ),
    )


def unregister_solver(name: str) -> None:
    """Remove a registration (mainly for tests)."""
    _REGISTRY.pop(name, None)


def available_solvers() -> tuple[str, ...]:
    """Registered solver names, sorted."""
    return tuple(sorted(_REGISTRY))


def solver_entries() -> tuple[SolverEntry, ...]:
    """Registry rows (name, factory, description), sorted by name."""
    return tuple(_REGISTRY[name] for name in available_solvers())


def get_solver(name: str) -> Solver:
    """Instantiate the solver registered under ``name``.

    Raises:
        UnknownSolverError: listing the available names, so a typo on
            the CLI or in a config file is self-diagnosing.
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        known = ", ".join(available_solvers()) or "<none>"
        raise UnknownSolverError(
            f"unknown solver {name!r}; available solvers: {known}"
        )
    return entry.factory()


def require_solver_supports(name: str, problem: "Problem") -> None:
    """Fail fast when a registered solver cannot handle a problem.

    Today this enforces the trace-only axis: a problem without a
    program may only dispatch to solvers whose registration declares
    ``trace_only`` support.  Called by every entry point — the
    service, the batch runner, and the HTTP protocol parser — so the
    error is a clear registry-level message instead of a mid-solve
    crash inside the strategy.

    Raises:
        UnknownSolverError: for unregistered names.
        SolverCapabilityError: for unsupported (solver, problem)
            combinations, listing the solvers that would work.
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        known = ", ".join(available_solvers()) or "<none>"
        raise UnknownSolverError(
            f"unknown solver {name!r}; available solvers: {known}"
        )
    if problem.source is None and not entry.capabilities.trace_only:
        capable = ", ".join(
            n for n in available_solvers() if _REGISTRY[n].capabilities.trace_only
        ) or "<none>"
        raise SolverCapabilityError(
            f"solver {name!r} does not support trace-only problems "
            f"(problem {problem.name!r} has no program source); "
            f"trace-capable solvers: {capable}"
        )
