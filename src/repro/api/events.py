"""Typed lifecycle events and the subscriber bus for the public API.

Solvers emit events while they work; an :class:`EventBus` fans each
event out to subscriber callbacks.  This is the hook point for async
front-ends (stream progress to a websocket), per-stage profiling
(aggregate :class:`StageTimed` records across a batch), and live
dashboards — without the solvers knowing who is listening.

Layering: this module is pure stdlib on purpose.  Both the inference
runtime (:mod:`repro.infer.pipeline`) and the API adapters import it,
so it must not import anything from :mod:`repro`.

Event vocabulary (one dataclass per lifecycle point):

* :class:`AttemptStarted` — a solver begins one attempt on a problem.
* :class:`StageTimed` — one pipeline stage of an attempt finished;
  carries the wall-clock seconds.  Stages are :data:`STAGES`.
* :class:`CandidateChecked` — the checker accepted or rejected one
  candidate atom.
* :class:`ProblemSolved` — a solve call finished (``solved`` may be
  ``False``; the event marks completion, not success).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, ClassVar, Iterable, Iterator

# Pipeline stages that StageTimed events (and SolveResult.stage_timings)
# report on.  Every solver reports the same four keys; stages a solver
# does not have (e.g. "train" for an exact method) report 0.0 seconds.
STAGES: tuple[str, ...] = ("collect", "train", "extract", "check")


@dataclass(frozen=True)
class Event:
    """Base class: every event names its problem and solver."""

    problem: str
    solver: str

    kind: ClassVar[str] = "event"

    def to_dict(self) -> dict:
        """JSON-serializable view, tagged with the event kind."""
        payload = dataclasses.asdict(self)
        payload["event"] = self.kind
        return payload


@dataclass(frozen=True)
class AttemptStarted(Event):
    """A solver began attempt ``attempt`` (1-based) on a problem."""

    attempt: int = 1
    dropout: float | None = None
    fractional_interval: float | None = None

    kind: ClassVar[str] = "attempt_started"


@dataclass(frozen=True)
class StageTimed(Event):
    """One pipeline stage of one attempt finished.

    ``stage`` is one of :data:`STAGES`; ``seconds`` is the wall-clock
    time the stage took within that attempt.
    """

    stage: str = ""
    seconds: float = 0.0
    attempt: int = 1

    kind: ClassVar[str] = "stage_timed"


@dataclass(frozen=True)
class CandidateChecked(Event):
    """The checker accepted (``sound``) or rejected one candidate atom."""

    loop_index: int = 0
    atom: str = ""
    sound: bool = False
    reason: str | None = None

    kind: ClassVar[str] = "candidate_checked"


@dataclass(frozen=True)
class ProblemSolved(Event):
    """A solve call completed (successfully or not)."""

    solved: bool = False
    runtime_seconds: float = 0.0
    attempts: int = 0

    kind: ClassVar[str] = "problem_solved"


# A solver-facing event sink: solvers call it with each event and never
# learn who subscribes.  EventBus.emit satisfies this signature.
EventSink = Callable[[Event], None]


class EventBus:
    """Fans events out to subscriber callbacks.

    Subscribers must never break a solve: a callback that raises is
    counted in :attr:`subscriber_errors` and skipped, not propagated.

    Thread-safe: subscribe/unsubscribe/emit may race from any number of
    threads (the serving front end emits from executor threads while
    clients subscribe and disconnect on the event loop).  Emission
    snapshots the subscriber table under a lock and delivers *outside*
    it, so a callback that itself subscribes or unsubscribes — or
    emits — cannot deadlock.  A subscriber unsubscribed mid-emit may
    still receive the event already in flight; it never receives later
    ones.
    """

    def __init__(self) -> None:
        self._subscribers: dict[int, tuple[Callable[[Event], None], tuple[type, ...] | None]] = {}
        self._next_token = 0
        self._lock = threading.Lock()
        self.subscriber_errors = 0

    def __len__(self) -> int:
        return len(self._subscribers)

    def subscribe(
        self,
        callback: Callable[[Event], None],
        kinds: Iterable[type] | None = None,
    ) -> Callable[[], None]:
        """Register ``callback``; returns a zero-argument unsubscriber.

        Args:
            callback: called synchronously with each emitted event.
            kinds: optional event classes to filter on (e.g.
                ``(StageTimed,)``); ``None`` receives everything.
        """
        filters = tuple(kinds) if kinds is not None else None
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._subscribers[token] = (callback, filters)

        def unsubscribe() -> None:
            with self._lock:
                self._subscribers.pop(token, None)

        return unsubscribe

    def emit(self, event: Event) -> None:
        """Deliver ``event`` to every matching subscriber."""
        with self._lock:
            subscribers = list(self._subscribers.values())
        for callback, kinds in subscribers:
            if kinds is not None and not isinstance(event, kinds):
                continue
            try:
                callback(event)
            except Exception:  # noqa: BLE001 — subscribers must not break solves
                self.subscriber_errors += 1


def emit_check_events(
    emit: EventSink,
    problem: str,
    solver: str,
    loop_index: int,
    sound: Iterable[object],
    rejected: Iterable[tuple[object, str]],
) -> None:
    """Emit one :class:`CandidateChecked` per checker verdict.

    Shared by the engine and the baseline adapters so the event payloads
    stay field-for-field identical across solvers.
    """
    for atom in sound:
        emit(
            CandidateChecked(
                problem=problem,
                solver=solver,
                loop_index=loop_index,
                atom=str(atom),
                sound=True,
            )
        )
    for atom, reason in rejected:
        emit(
            CandidateChecked(
                problem=problem,
                solver=solver,
                loop_index=loop_index,
                atom=str(atom),
                sound=False,
                reason=reason,
            )
        )


@contextmanager
def timed_stage(timings: dict[str, float], stage: str) -> Iterator[None]:
    """Accumulate the block's wall-clock seconds into ``timings[stage]``.

    Exceptions propagate but the elapsed time is still recorded, so a
    failed training stage shows up in the profile instead of vanishing.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        timings[stage] = timings.get(stage, 0.0) + time.perf_counter() - start
