"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subsystems get
their own subclass to keep failure provenance obvious in tracebacks.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class LangError(ReproError):
    """Base class for errors in the mini imperative language."""


class LexError(LangError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(LangError):
    """Raised when the parser encounters an unexpected token."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class InterpError(LangError):
    """Raised when program evaluation fails (bad types, undefined names)."""


class FuelExhausted(InterpError):
    """Raised when an execution exceeds its step budget.

    Loops in the benchmark are expected to terminate quickly; this guards
    against accidental nontermination from a malformed transcription.
    """


class PolyError(ReproError):
    """Raised for invalid polynomial operations (e.g. division by zero)."""


class FormulaError(ReproError):
    """Raised for invalid SMT formula construction or evaluation."""


class AutodiffError(ReproError):
    """Raised for invalid tensor operations or backward passes."""


class TrainingError(ReproError):
    """Raised when G-CLN training cannot proceed (e.g. empty data)."""


class ExtractionError(ReproError):
    """Raised when no well-formed formula can be extracted from a model."""


class CheckError(ReproError):
    """Raised when the invariant checker is given an ill-formed query."""


class InferenceError(ReproError):
    """Raised when the end-to-end pipeline fails unrecoverably."""
