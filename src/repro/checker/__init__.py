"""Invariant checking — the Z3 substitute.

Given a candidate invariant for a loop, the checker discharges the
three Hoare verification conditions (§2.1):

    P ⇒ I        {I ∧ LC} C {I}        I ∧ ¬LC ⇒ Q

with a hybrid strategy: exact symbolic checking for polynomial equality
inductiveness (sound), and bounded/randomized checking with
counterexample extraction for everything else (sound up to sampling;
counterexamples feed the paper's CEGIS retraining loop).
"""

from repro.checker.result import (
    CHECKING_FULL,
    CHECKING_RECORDED,
    CheckOutcome,
    CheckReport,
)
from repro.checker.symbolic import equality_inductive_symbolic
from repro.checker.bounded import BoundedChecker
from repro.checker.vc import InvariantChecker
from repro.checker.trace import RecordedChecker, make_checker

__all__ = [
    "CHECKING_FULL",
    "CHECKING_RECORDED",
    "CheckOutcome",
    "CheckReport",
    "equality_inductive_symbolic",
    "BoundedChecker",
    "InvariantChecker",
    "RecordedChecker",
    "make_checker",
]
