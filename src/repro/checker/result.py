"""Check outcomes and reports."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


# Checking modes, reported in SolveResult.checking: the full hybrid
# checker (symbolic equality inductiveness + bounded sampling against
# fresh interpreter runs) vs the degraded trace-only mode (validation
# against held-out recorded states; no program to perturb or step).
CHECKING_FULL = "symbolic+bounded"
CHECKING_RECORDED = "bounded-holdout"


class CheckOutcome(enum.Enum):
    """Verdict for one verification condition or a whole check."""

    VALID = "valid"
    INVALID = "invalid"
    UNKNOWN = "unknown"


@dataclass
class CheckReport:
    """Result of checking a candidate invariant.

    Attributes:
        outcome: overall verdict (VALID only when every VC passed).
        precondition: verdict for ``P ⇒ I``.
        inductive: verdict for ``{I ∧ LC} C {I}``.
        postcondition: verdict for ``I ∧ ¬LC ⇒ Q``.
        counterexamples: states witnessing a failed VC; these are fed
            back into training (the paper's CEGIS loop).
        notes: human-readable details per VC.
    """

    outcome: CheckOutcome
    precondition: CheckOutcome = CheckOutcome.UNKNOWN
    inductive: CheckOutcome = CheckOutcome.UNKNOWN
    postcondition: CheckOutcome = CheckOutcome.UNKNOWN
    counterexamples: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        return self.outcome is CheckOutcome.VALID
