"""Exact symbolic inductiveness for polynomial equality invariants.

For a loop path with polynomial update map ``U`` and a candidate
equality ``p = 0``, the candidate is inductive along the path when
``p ∘ U`` vanishes on the variety cut out by the full set of equality
candidates ``E`` (all of which hold at the loop head by assumption).
We test the sufficient condition

    reduce(p ∘ U, E) == 0

using graded-lex polynomial reduction.  When the reduction is nonzero
the result is *inconclusive* (we do not complete a Gröbner basis), and
the caller falls back to bounded checking.

Soundness: if reduction succeeds for every path through the loop body,
then for any pre-state satisfying all of ``E`` (regardless of which
branch the guard semantics take), the post-state satisfies ``p = 0``.
Guards are ignored, which only strengthens the requirement.
"""

from __future__ import annotations

from typing import Sequence

from repro.lang.analysis import LoopPath
from repro.poly.polynomial import Polynomial
from repro.poly.reduce import reduce_modulo
from repro.checker.result import CheckOutcome


def equality_inductive_symbolic(
    candidate: Polynomial,
    established: Sequence[Polynomial],
    paths: Sequence[LoopPath],
) -> CheckOutcome:
    """Check that ``candidate = 0`` is preserved by every loop path.

    Args:
        candidate: polynomial whose vanishing is the candidate equality.
        established: all equality polynomials assumed at the loop head
            (normally includes ``candidate`` itself).
        paths: symbolic paths from ``extract_loop_paths``.

    Returns:
        VALID when every path reduces to zero; UNKNOWN otherwise (never
        INVALID — a failed reduction is not a disproof).
    """
    basis = [p for p in established if not p.is_zero()]
    if candidate not in basis:
        basis = [*basis, candidate]
    for path in paths:
        updated = candidate.substitute(path.updates)
        remainder = reduce_modulo(updated, basis)
        if not remainder.is_zero():
            return CheckOutcome.UNKNOWN
    return CheckOutcome.VALID


def conjunction_inductive_symbolic(
    candidates: Sequence[Polynomial],
    paths: Sequence[LoopPath],
) -> list[CheckOutcome]:
    """Vector version: check each candidate against the whole set."""
    return [
        equality_inductive_symbolic(candidate, candidates, paths)
        for candidate in candidates
    ]
