"""Top-level invariant checking: atom filtering and full VC reports.

:class:`InvariantChecker` is what the inference pipeline talks to.  It
combines the exact symbolic equality check with bounded sampling:

* :meth:`filter_sound_atoms` — given candidate atoms for one loop,
  iterate to the greatest subset that is (a) true on every reachable
  loop-head state over the *checking* input space, and (b) inductive
  relative to the surviving conjunction (symbolically for equalities
  when the loop body is polynomial; bounded otherwise).  This realizes
  the paper's "check and remove unsound constraints" step.
* :meth:`check_invariant` — full three-VC report for a formula,
  including postcondition sufficiency, used to decide whether the
  CEGIS loop can stop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.sampling.cache import TraceCache

import numpy as np

from repro.lang.ast import Expr, Program, While
from repro.lang.analysis import extract_loop_paths
from repro.lang.interp import ExecutionTrace
from repro.sampling.termgen import ExternalTerm
from repro.smt.formula import And, Atom, Formula
from repro.smt.simplify import simplify
from repro.checker.bounded import BoundedChecker
from repro.checker.result import CHECKING_FULL, CheckOutcome, CheckReport
from repro.checker.symbolic import equality_inductive_symbolic


# Default seed for the checker's perturbation-sampling RNG.  Shared by
# the inference engine and the baseline solver adapters so every solver
# is filtered by an identically-behaved checker.
DEFAULT_CHECKER_SEED = 10_007


@dataclass
class AtomFilterResult:
    """Outcome of :meth:`InvariantChecker.filter_sound_atoms`."""

    sound: list[Atom] = field(default_factory=list)
    rejected: list[tuple[Atom, str]] = field(default_factory=list)
    counterexamples: list[dict] = field(default_factory=list)


class InvariantChecker:
    """Checks candidate invariants for one program."""

    # The checking mode this checker realizes, reported through
    # ``SolveResult.checking`` (trace-only problems degrade to the
    # ``bounded-holdout`` mode of repro.checker.trace).
    checking = CHECKING_FULL

    def __init__(
        self,
        program: Program,
        check_inputs: Sequence[Mapping[str, object]],
        externals: Sequence[ExternalTerm] = (),
        rng: np.random.Generator | None = None,
        fuel: int = 500_000,
        trace_cache: "TraceCache | None" = None,
        memoize: bool = True,
    ):
        """
        Args:
            program: program under verification.
            check_inputs: input assignments for the checking runs;
                should be wider than the training inputs.
            externals: external-function terms usable in invariants.
            rng: randomness for perturbation sampling.
            fuel: interpreter budget per run.
            trace_cache: optional :class:`~repro.sampling.cache.
                TraceCache`; when given, checking traces are memoized
                there and reused across checker instances for the same
                (program, inputs).
            memoize: cache per-atom verdicts across
                :meth:`filter_sound_atoms` calls.  The CEGIS retry loop
                re-submits its whole (growing) candidate pool every
                attempt; memoization makes re-checks of unchanged atoms
                free.  Reachability verdicts are absolute; inductiveness
                verdicts are reused monotonically — VALID under premise
                set P is reused for any premise ⊇ P (more assumptions
                only shrink the states tested), INVALID under P for any
                premise ⊆ P (the counterexample still satisfies it).
        """
        self.program = program
        self.bounded = BoundedChecker(
            program, externals=externals, rng=rng, fuel=fuel
        )
        self._traces: list[ExecutionTrace] | None = None
        self._check_inputs = list(check_inputs)
        self._fuel = fuel
        self._trace_cache = trace_cache
        self._paths_cache: dict[int, object] = {}
        self.memoize = memoize
        self._reach_memo: dict[tuple[int, str], CheckOutcome] = {}
        self._inductive_memo: dict[
            tuple[int, str], list[tuple[frozenset[str], bool]]
        ] = {}
        # Observability: how many bounded checks the memo skipped.
        self.memo_hits = 0

    @property
    def traces(self) -> list[ExecutionTrace]:
        """Checking traces (computed lazily, cached)."""
        if self._traces is None:
            if self._trace_cache is not None:
                self._traces = self._trace_cache.checker_traces(
                    self.program,
                    self._check_inputs,
                    self._fuel,
                    lambda: self.bounded.run_traces(self._check_inputs),
                )
            else:
                self._traces = self.bounded.run_traces(self._check_inputs)
        return self._traces

    def _loop(self, loop_index: int) -> While:
        return self.program.loops[loop_index]

    def _paths(self, loop_index: int):
        if loop_index not in self._paths_cache:
            self._paths_cache[loop_index] = extract_loop_paths(self._loop(loop_index))
        return self._paths_cache[loop_index]

    def _loop_states(self, loop_index: int, include_exit: bool) -> list[dict]:
        states = []
        for trace in self.traces:
            for snapshot in trace.snapshots:
                if snapshot.loop_id != loop_index:
                    continue
                if not include_exit and not snapshot.guard_value:
                    continue
                states.append(dict(snapshot.state))
        return states

    def _exit_states(self, loop_index: int) -> list[dict]:
        return [
            dict(s.state)
            for t in self.traces
            for s in t.snapshots
            if s.loop_id == loop_index and not s.guard_value
        ]

    # -- atom filtering ----------------------------------------------------------

    def filter_sound_atoms(
        self, loop_index: int, atoms: Sequence[Atom]
    ) -> AtomFilterResult:
        """Greatest sound subset of candidate atoms for one loop."""
        result = AtomFilterResult()
        loop = self._loop(loop_index)
        head_states = self._loop_states(loop_index, include_exit=True)

        # Phase 1: reachability soundness (absolute per atom; memoized).
        surviving: list[Atom] = []
        for atom in atoms:
            memo_key = (loop_index, str(atom))
            if self.memoize and memo_key in self._reach_memo:
                outcome, cex = self._reach_memo[memo_key], None
                self.memo_hits += 1
            else:
                outcome, cex = self.bounded.holds_on_reachable(
                    atom, loop_index, self.traces
                )
                if self.memoize:
                    self._reach_memo[memo_key] = outcome
            if outcome is CheckOutcome.INVALID:
                result.rejected.append((atom, "fails on reachable state"))
                if cex:
                    result.counterexamples.append(cex)
            else:
                surviving.append(atom)

        # Phase 2: inductiveness relative to the surviving set, to fixpoint.
        paths = self._paths(loop_index)
        changed = True
        while changed and surviving:
            changed = False
            conjunction: Formula = (
                And(surviving) if len(surviving) > 1 else surviving[0]
            )
            eq_polys = [a.poly for a in surviving if a.op == "=="]
            premise = frozenset(str(a) for a in surviving)
            keep: list[Atom] = []
            for atom in surviving:
                cached = self._inductive_cached(loop_index, atom, premise)
                if cached is not None:
                    self.memo_hits += 1
                    if cached:
                        keep.append(atom)
                    else:
                        result.rejected.append((atom, "not inductive"))
                        changed = True
                    continue
                verdict = CheckOutcome.UNKNOWN
                if atom.op == "==" and paths is not None:
                    verdict = equality_inductive_symbolic(atom.poly, eq_polys, paths)
                if verdict is not CheckOutcome.VALID:
                    verdict, cex = self.bounded.inductive_bounded(
                        conjunction, loop, atom, head_states
                    )
                    if verdict is CheckOutcome.INVALID:
                        self._inductive_record(loop_index, atom, premise, False)
                        result.rejected.append((atom, "not inductive"))
                        if cex:
                            result.counterexamples.append(cex)
                        changed = True
                        continue
                self._inductive_record(loop_index, atom, premise, True)
                keep.append(atom)
            surviving = keep
        result.sound = surviving
        return result

    def _inductive_cached(
        self, loop_index: int, atom: Atom, premise: frozenset[str]
    ) -> bool | None:
        """Reuse an inductiveness verdict if monotonicity allows it."""
        if not self.memoize:
            return None
        for cached_premise, valid in self._inductive_memo.get(
            (loop_index, str(atom)), ()
        ):
            if valid and cached_premise <= premise:
                return True
            if not valid and premise <= cached_premise:
                return False
        return None

    def _inductive_record(
        self, loop_index: int, atom: Atom, premise: frozenset[str], valid: bool
    ) -> None:
        if not self.memoize:
            return
        self._inductive_memo.setdefault((loop_index, str(atom)), []).append(
            (premise, valid)
        )

    # -- full check -------------------------------------------------------------

    def check_invariant(
        self,
        loop_index: int,
        invariant: Formula,
        post_exprs: Sequence[Expr] = (),
    ) -> CheckReport:
        """Full three-VC report for a candidate invariant formula."""
        report = CheckReport(outcome=CheckOutcome.UNKNOWN)
        loop = self._loop(loop_index)
        invariant = simplify(invariant)

        # P => I plus consistency along executions.
        outcome, cex = self.bounded.holds_on_reachable(
            invariant, loop_index, self.traces
        )
        report.precondition = outcome
        if outcome is CheckOutcome.INVALID and cex:
            report.counterexamples.append(cex)
            report.notes.append(f"invariant fails at reachable state {cex}")

        # Inductiveness.
        head_states = self._loop_states(loop_index, include_exit=True)
        paths = self._paths(loop_index)
        inductive = CheckOutcome.UNKNOWN
        atoms = invariant.atoms()
        if (
            paths is not None
            and atoms
            and all(a.op == "==" for a in atoms)
            and isinstance(invariant, (Atom, And))
        ):
            eq_polys = [a.poly for a in atoms]
            verdicts = [
                equality_inductive_symbolic(p, eq_polys, paths) for p in eq_polys
            ]
            if all(v is CheckOutcome.VALID for v in verdicts):
                inductive = CheckOutcome.VALID
        if inductive is not CheckOutcome.VALID:
            inductive, cex = self.bounded.inductive_bounded(
                invariant, loop, invariant, head_states
            )
            if cex:
                report.counterexamples.append(cex)
                report.notes.append(f"inductiveness fails from state {cex}")
        report.inductive = inductive

        # Postcondition sufficiency.
        if post_exprs:
            exit_states = self._exit_states(loop_index)
            post_outcome = CheckOutcome.VALID
            for expr in post_exprs:
                outcome, cex = self.bounded.postcondition_bounded(
                    invariant, loop, self.bounded.expr_fn(expr), exit_states
                )
                if outcome is CheckOutcome.INVALID:
                    post_outcome = CheckOutcome.INVALID
                    if cex:
                        report.counterexamples.append(cex)
                        report.notes.append(f"postcondition fails at {cex}")
                    break
                if outcome is CheckOutcome.UNKNOWN:
                    post_outcome = CheckOutcome.UNKNOWN
            report.postcondition = post_outcome
        else:
            report.postcondition = CheckOutcome.VALID

        verdicts = (report.precondition, report.inductive, report.postcondition)
        if any(v is CheckOutcome.INVALID for v in verdicts):
            report.outcome = CheckOutcome.INVALID
        elif all(v is CheckOutcome.VALID for v in verdicts):
            report.outcome = CheckOutcome.VALID
        else:
            report.outcome = CheckOutcome.UNKNOWN
        return report
