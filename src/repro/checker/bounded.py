"""Bounded / randomized invariant checking with counterexamples.

This module discharges the verification conditions that the symbolic
checker cannot, by sampling:

* **reachability soundness** — the candidate must hold at every
  loop-head state over a *wider* input space than training used;
* **bounded inductiveness** — perturb reachable loop-head states into
  nearby (generally unreachable) states, keep those satisfying the
  candidate invariant and the loop guard, execute the loop body once,
  and require the candidate to hold afterwards;
* **postcondition sufficiency** — perturb exit states into states
  satisfying ``I ∧ ¬LC`` and require the postcondition ``Q``.

A failure yields a concrete counterexample state.  This is the
sound-up-to-sampling substitute for Z3 described in DESIGN.md §2; the
CEGIS loop of the paper survives intact because failures produce
counterexamples that drive retraining / atom pruning.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Sequence

import numpy as np

from repro.errors import FuelExhausted, InterpError
from repro.lang.ast import Program, While
from repro.lang.interp import ExecutionTrace, Interpreter
from repro.sampling.termgen import ExternalTerm, extend_state
from repro.smt.formula import Formula
from repro.checker.result import CheckOutcome


class BoundedChecker:
    """Sampling-based VC checker for one program."""

    def __init__(
        self,
        program: Program,
        externals: Sequence[ExternalTerm] = (),
        rng: np.random.Generator | None = None,
        perturbations_per_state: int = 8,
        perturbation_radius: int = 3,
        max_base_states: int = 200,
        fuel: int = 200_000,
    ):
        """
        Args:
            program: the program under verification.
            externals: external-function terms the invariant may use;
                states are extended with their values before evaluation.
            rng: randomness source for perturbations.
            perturbations_per_state: perturbed states tried per base
                state during inductiveness/postcondition sampling.
            perturbation_radius: max absolute integer offset applied to
                each variable when perturbing.
            max_base_states: cap on base states used per VC.
            fuel: interpreter step budget per execution.
        """
        self.program = program
        self.externals = list(externals)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.perturbations_per_state = perturbations_per_state
        self.perturbation_radius = perturbation_radius
        self.max_base_states = max_base_states
        self._interp = Interpreter(program, fuel=fuel)

    # -- helpers ---------------------------------------------------------

    def _evaluate(self, formula: Formula, state: Mapping[str, object]) -> bool:
        extended = extend_state(state, self.externals) if self.externals else state
        exact = {}
        for key, value in extended.items():
            if isinstance(value, bool):
                continue
            exact[key] = Fraction(value)
        return formula.evaluate(exact)

    def run_traces(
        self, inputs: Sequence[Mapping[str, object]]
    ) -> list[ExecutionTrace]:
        """Execute the program over ``inputs``, dropping invalid runs."""
        traces = []
        for assignment in inputs:
            try:
                trace = self._interp.run(assignment)
            except (FuelExhausted, InterpError):
                continue
            if not trace.assume_violated:
                traces.append(trace)
        return traces

    def _perturb(self, state: dict[str, object]) -> dict[str, object]:
        """Integer-offset perturbation of a state (inputs included)."""
        perturbed = dict(state)
        names = [k for k, v in state.items() if not isinstance(v, bool)]
        k = max(1, int(self.rng.integers(1, len(names) + 1)))
        chosen = self.rng.choice(len(names), size=min(k, len(names)), replace=False)
        for idx in chosen:
            offset = int(
                self.rng.integers(-self.perturbation_radius, self.perturbation_radius + 1)
            )
            name = names[int(idx)]
            perturbed[name] = perturbed[name] + offset
        return perturbed

    # -- verification conditions --------------------------------------------

    def holds_on_reachable(
        self,
        invariant: Formula,
        loop_id: int,
        traces: Sequence[ExecutionTrace],
    ) -> tuple[CheckOutcome, dict | None]:
        """Check the invariant on every reachable loop-head state.

        Covers both ``P ⇒ I`` (iteration-0 snapshots) and consistency
        along real executions.
        """
        checked = 0
        for trace in traces:
            for snapshot in trace.snapshots:
                if snapshot.loop_id != loop_id:
                    continue
                if not self._evaluate(invariant, snapshot.state):
                    return CheckOutcome.INVALID, dict(snapshot.state)
                checked += 1
                if checked >= 50_000:
                    return CheckOutcome.VALID, None
        if checked == 0:
            return CheckOutcome.UNKNOWN, None
        return CheckOutcome.VALID, None

    def guard_fn(self, loop: While):
        """Boolean evaluator for a loop guard on raw states.

        Uses the interpreter's expression semantics so guards with
        ``%`` or external calls work even though they are outside the
        polynomial formula fragment.
        """

        def evaluate(state: Mapping[str, object]) -> bool:
            env = dict(state)
            return bool(self._interp._eval(loop.cond, env))

        return evaluate

    def expr_fn(self, expr):
        """Boolean evaluator for an arbitrary mini-language expression."""

        def evaluate(state: Mapping[str, object]) -> bool:
            env = dict(state)
            return bool(self._interp._eval(expr, env))

        return evaluate

    def inductive_bounded(
        self,
        invariant: Formula,
        loop: While,
        target: Formula,
        base_states: Sequence[Mapping[str, object]],
    ) -> tuple[CheckOutcome, dict | None]:
        """Perturbation-based inductiveness check.

        For perturbed states satisfying ``I ∧ LC``, one loop-body step
        must re-establish ``target`` (normally one atom of ``I``; pass
        ``invariant`` itself to check the whole conjunction).
        """
        guard = self.guard_fn(loop)
        tested = 0
        for state in list(base_states)[: self.max_base_states]:
            candidates = [dict(state)]
            candidates.extend(
                self._perturb(dict(state))
                for _ in range(self.perturbations_per_state)
            )
            for candidate in candidates:
                try:
                    if not guard(candidate):
                        continue
                    if not self._evaluate(invariant, candidate):
                        continue
                    after = self._interp.execute_block(loop.body, candidate)
                    if not self._evaluate(target, after):
                        return CheckOutcome.INVALID, dict(candidate)
                except (InterpError, FuelExhausted, ZeroDivisionError):
                    continue
                tested += 1
        if tested == 0:
            return CheckOutcome.UNKNOWN, None
        return CheckOutcome.VALID, None

    def postcondition_bounded(
        self,
        invariant: Formula,
        loop: While,
        post_fn,
        exit_states: Sequence[Mapping[str, object]],
    ) -> tuple[CheckOutcome, dict | None]:
        """Check ``I ∧ ¬LC ⇒ Q`` on exit states and perturbations."""
        guard = self.guard_fn(loop)
        tested = 0
        for state in list(exit_states)[: self.max_base_states]:
            candidates = [dict(state)]
            candidates.extend(
                self._perturb(dict(state))
                for _ in range(self.perturbations_per_state)
            )
            for candidate in candidates:
                try:
                    if guard(candidate):
                        continue
                    if not self._evaluate(invariant, candidate):
                        continue
                    if not post_fn(candidate):
                        return CheckOutcome.INVALID, dict(candidate)
                except (InterpError, ZeroDivisionError):
                    continue
                tested += 1
        if tested == 0:
            return CheckOutcome.UNKNOWN, None
        return CheckOutcome.VALID, None
