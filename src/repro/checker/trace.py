"""Degraded checking for trace-only problems: held-out recorded states.

Without a program there is nothing to perturb, step, or check
symbolically — the three-VC machinery of :mod:`repro.checker.vc`
cannot run.  What *can* run is the reachability half of the bounded
checker: every candidate must hold on every held-out recorded state
(the ``check`` sequences of the recording, which play the role of the
wider checking input space).  :class:`RecordedChecker` implements
exactly that, duck-typing the :class:`~repro.checker.vc.
InvariantChecker` surface the engine and the baseline adapters use,
and reports itself as the degraded ``bounded-holdout`` mode so
``SolveResult.checking`` makes the downgrade visible.

:func:`make_checker` is the one place that picks between the two —
every solver builds its checker through it, so a problem's
program-backed/trace-only nature never leaks into solver code.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.checker.result import (
    CHECKING_RECORDED,
    CheckOutcome,
    CheckReport,
)
from repro.checker.vc import (
    DEFAULT_CHECKER_SEED,
    AtomFilterResult,
    InvariantChecker,
)
from repro.sampling.source import Observation, RecordedTraceSource
from repro.sampling.termgen import ExternalTerm, extend_state
from repro.smt.formula import Atom, Formula
from repro.smt.simplify import simplify

if TYPE_CHECKING:  # pragma: no cover
    from repro.infer.problem import Problem
    from repro.sampling.cache import TraceCache

# Mirror of the bounded checker's reachability cap: stop after this
# many recorded states have been validated.
_MAX_CHECKED_STATES = 50_000


class RecordedChecker:
    """Reachability-only checking against held-out recorded states.

    The checking states are the recording's ``check`` sequences (train
    reused when absent) — the same states the full checker would read
    off its checking traces, so for a recording of a program-backed
    problem the reachability phase is state-for-state identical.
    Inductiveness and postcondition VCs are not checkable without a
    program; :meth:`check_invariant` degrades them to the recorded
    evidence and says so in the report notes.
    """

    checking = CHECKING_RECORDED

    def __init__(
        self,
        source: RecordedTraceSource,
        externals: Sequence[ExternalTerm] = (),
        memoize: bool = True,
    ):
        self.source = source
        self.externals = list(externals)
        self.memoize = memoize
        self._reach_memo: dict[tuple[int, str], CheckOutcome] = {}
        # Observability: same counter the full checker exposes.
        self.memo_hits = 0

    # -- helpers ---------------------------------------------------------

    def _evaluate(self, formula: Formula, state: Mapping[str, object]) -> bool:
        extended = extend_state(state, self.externals) if self.externals else state
        exact = {}
        for key, value in extended.items():
            if isinstance(value, bool):
                continue
            exact[key] = Fraction(value)
        return formula.evaluate(exact)

    def _holds_on_recorded(
        self, formula: Formula, observations: Sequence[Observation]
    ) -> tuple[CheckOutcome, dict | None]:
        checked = 0
        for ob in observations:
            if not self._evaluate(formula, ob.state):
                return CheckOutcome.INVALID, dict(ob.state)
            checked += 1
            if checked >= _MAX_CHECKED_STATES:
                return CheckOutcome.VALID, None
        if checked == 0:
            return CheckOutcome.UNKNOWN, None
        return CheckOutcome.VALID, None

    # -- checker surface -------------------------------------------------

    def filter_sound_atoms(
        self, loop_index: int, atoms: Sequence[Atom]
    ) -> AtomFilterResult:
        """Atoms that hold on every held-out recorded state.

        The rejection reason matches the full checker's reachability
        phase — recorded states *are* reachable states — so a recording
        of a program-backed problem reproduces its rejection records.
        """
        result = AtomFilterResult()
        observations = self.source.check_observations(loop_index)
        for atom in atoms:
            memo_key = (loop_index, str(atom))
            if self.memoize and memo_key in self._reach_memo:
                outcome, cex = self._reach_memo[memo_key], None
                self.memo_hits += 1
            else:
                outcome, cex = self._holds_on_recorded(atom, observations)
                if self.memoize:
                    self._reach_memo[memo_key] = outcome
            if outcome is CheckOutcome.INVALID:
                result.rejected.append((atom, "fails on reachable state"))
                if cex:
                    result.counterexamples.append(cex)
            else:
                result.sound.append(atom)
        return result

    def check_invariant(
        self,
        loop_index: int,
        invariant: Formula,
        post_exprs: Sequence = (),
    ) -> CheckReport:
        """Degraded full check: recorded evidence only.

        Inductiveness follows the reachability verdict (an invariant
        holding on every recorded state holds across every recorded
        transition; nothing beyond the recording can be stepped), and
        postconditions are unobservable without a program's asserts.
        """
        invariant = simplify(invariant)
        report = CheckReport(outcome=CheckOutcome.UNKNOWN)
        outcome, cex = self._holds_on_recorded(
            invariant, self.source.check_observations(loop_index)
        )
        report.precondition = outcome
        if outcome is CheckOutcome.INVALID and cex:
            report.counterexamples.append(cex)
            report.notes.append(f"invariant fails at recorded state {cex}")
        report.inductive = outcome
        report.postcondition = (
            CheckOutcome.UNKNOWN if post_exprs else CheckOutcome.VALID
        )
        report.notes.append(
            "trace-only problem: checked against held-out recorded states "
            "(no symbolic/perturbation inductiveness)"
        )
        verdicts = (report.precondition, report.inductive, report.postcondition)
        if any(v is CheckOutcome.INVALID for v in verdicts):
            report.outcome = CheckOutcome.INVALID
        elif all(v is CheckOutcome.VALID for v in verdicts):
            report.outcome = CheckOutcome.VALID
        else:
            report.outcome = CheckOutcome.UNKNOWN
        return report


def make_checker(
    problem: "Problem",
    cache: "TraceCache | None" = None,
    memoize: bool = True,
) -> InvariantChecker | RecordedChecker:
    """The right checker for a problem's observation source.

    Program-backed problems get the full hybrid
    :class:`~repro.checker.vc.InvariantChecker`; trace-only problems
    degrade to :class:`RecordedChecker`.  Every solver adapter builds
    its checker here, so the two modes stay behaviorally aligned (same
    seed, same externals handling) across strategies.
    """
    if problem.program_backed:
        return InvariantChecker(
            problem.program,
            problem.effective_check_inputs,
            externals=problem.externals,
            rng=np.random.default_rng(DEFAULT_CHECKER_SEED),
            trace_cache=cache,
            memoize=memoize,
        )
    source = problem.observations()
    assert isinstance(source, RecordedTraceSource)
    return RecordedChecker(
        source, externals=problem.externals, memoize=memoize
    )
