"""Graph taping: record a training step once, replay it every epoch.

The G-CLN training loops build a structurally identical autodiff graph
every epoch — only the numbers in the leaves (parameters, schedule
scalars) change.  :class:`Tape` exploits that: the first call to
:meth:`Tape.step` runs the builder under a recording hook that captures
every gradient-tracked node in creation order (a valid topological
order), then subsequent calls

1. **replay forward**: run each node's in-place forward closure, which
   recomputes ``node.data`` inside the same buffer from the parents'
   current data, and
2. **replay backward**: seed the root with 1 and fire the recorded
   backward closures in reverse order, accumulating into preallocated
   per-node gradient buffers.

No graph nodes, topological sorts, or gradient arrays are allocated
after the first epoch.  Values that change between epochs (λ schedules,
the annealed σ/c1) must live in leaf tensors or 0-d numpy "boxes" that
the loop updates *in place*; closures read them dynamically.

If any recorded node lacks a forward closure (e.g. ``where`` with a
precomputed condition, whose frozen mask would go stale), the tape
falls back to eager re-tracing: ``step`` simply calls the builder and
``backward`` every epoch.  Correctness never depends on replayability.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import AutodiffError
from repro.autodiff import tensor as _tensor_mod
from repro.autodiff.tensor import Tensor


class Tape:
    """Records one scalar-rooted graph and replays it with reused buffers."""

    def __init__(self) -> None:
        self._root: Tensor | None = None
        self._nodes: list[Tensor] | None = None
        self.replayable = False
        self.replays = 0

    @property
    def recorded(self) -> bool:
        return self._nodes is not None

    @property
    def n_nodes(self) -> int:
        return len(self._nodes) if self._nodes is not None else 0

    def step(self, build: Callable[[], Tensor]) -> Tensor:
        """One training step: forward + backward, recording or replaying.

        Args:
            build: zero-argument closure constructing the scalar loss
                graph from leaf tensors.  Called once to record (and on
                every step if the graph is not replayable).

        Returns:
            The root (loss) tensor with gradients accumulated into the
            graph's leaves.
        """
        if self._nodes is None:
            root = self._record(build)
            root.backward()
            return root
        if not self.replayable:
            root = build()
            root.backward()
            return root
        self._replay_forward()
        self._replay_backward()
        self.replays += 1
        return self._root  # type: ignore[return-value]

    # -- internals ---------------------------------------------------------

    def _record(self, build: Callable[[], Tensor]) -> Tensor:
        if _tensor_mod._TAPE_SINK is not None:
            raise AutodiffError("nested Tape recording is not supported")
        nodes: list[Tensor] = []
        _tensor_mod._TAPE_SINK = nodes
        try:
            root = build()
        finally:
            _tensor_mod._TAPE_SINK = None
        if root.data.size != 1:
            raise AutodiffError(
                f"Tape.step requires a scalar root, got shape {root.data.shape}"
            )
        self._root = root
        self._nodes = nodes
        self.replayable = root.requires_grad and all(
            node._forward_fn is not None for node in nodes
        )
        return root

    def _replay_forward(self) -> None:
        for node in self._nodes:  # type: ignore[union-attr]
            node._forward_fn()  # type: ignore[misc]

    def _replay_backward(self) -> None:
        nodes = self._nodes  # type: ignore[assignment]
        for node in nodes:  # type: ignore[union-attr]
            buf = node._grad_buf
            if buf is None:
                buf = node._grad_buf = np.zeros_like(node.data)
            else:
                buf.fill(0.0)
            node.grad = buf
        root = self._root
        root.grad[...] = 1.0  # type: ignore[union-attr, index]
        for node in reversed(nodes):  # type: ignore[arg-type]
            if node.grad is None:
                continue
            grad = node.grad
            node.grad = None
            node._backward_fn(grad)  # type: ignore[misc]
