"""Graph taping: record a training step once, replay it every epoch.

The G-CLN training loops build a structurally identical autodiff graph
every epoch — only the numbers in the leaves (parameters, schedule
scalars) change.  :class:`Tape` exploits that: the first call to
:meth:`Tape.step` runs the builder under a recording hook that captures
every gradient-tracked node in creation order (a valid topological
order), then subsequent calls

1. **replay forward**: run each node's in-place forward closure, which
   recomputes ``node.data`` inside the same buffer from the parents'
   current data, and
2. **replay backward**: seed the root with 1 and fire the recorded
   backward closures in reverse order, accumulating into preallocated
   per-node gradient buffers.

No graph nodes, topological sorts, or gradient arrays are allocated
after the first epoch.  Values that change between epochs (λ schedules,
the annealed σ/c1, ``where`` conditions) must live in leaf tensors,
0-d numpy "boxes" updated *in place*, or condition callables; replays
read them dynamically.

On top of the closure walker sits a *compiled* replay: a
:mod:`~repro.autodiff.backend` plan lowers the recorded node list into
straight-line numpy (optionally numba-jitted) code over the same
buffers, removing the per-op Python dispatch.  The walker remains the
reference — ``Tape(backend="numpy")`` never compiles, and any graph
the plan compiler cannot lower silently replays through the walker
(``stats()["fallback_reason"]`` says why).  If any recorded node lacks
a forward closure the tape degrades one step further, to eager
re-tracing: ``step`` simply calls the builder and ``backward`` every
epoch.  Correctness never depends on replayability or compilability.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

import numpy as np

from repro.errors import AutodiffError
from repro.autodiff import tensor as _tensor_mod
from repro.autodiff.tensor import Tensor
from repro.autodiff import backend as _backend_mod
from repro.autodiff.backend import Backend, ReplayProgram, get_backend


class Tape:
    """Records one scalar-rooted graph and replays it with reused buffers.

    Args:
        backend: replay strategy — ``"auto"`` (default: numba when
            importable, else the fused numpy plan), ``"numpy"`` (the
            reference closure walker), ``"fused"``, ``"numba"``, or a
            :class:`~repro.autodiff.backend.Backend` instance.
    """

    def __init__(self, backend: str | Backend | None = None) -> None:
        self._backend_obj = get_backend(backend)
        self.backend = self._backend_obj.name
        self._root: Tensor | None = None
        self._nodes: list[Tensor] | None = None
        self._plan: ReplayProgram | None = None
        self._plan_failed = False
        self.plan_failure: str | None = None
        self.replayable = False
        self.replays = 0
        self.eager_steps = 0
        # Warm-start observability: cumulative plan-compile wall time
        # and how often this tape was served from / deposited into a
        # TapePool (see repro.cln.train).
        self.compile_ms = 0.0
        self.pool_hits = 0
        self.pool_misses = 0

    @property
    def recorded(self) -> bool:
        return self._nodes is not None

    @property
    def n_nodes(self) -> int:
        return len(self._nodes) if self._nodes is not None else 0

    def step(self, build: Callable[[], Tensor]) -> Tensor:
        """One training step: forward + backward, recording or replaying.

        Args:
            build: zero-argument closure constructing the scalar loss
                graph from leaf tensors.  Called once to record (and on
                every step if the graph is not replayable).

        Returns:
            The root (loss) tensor with gradients accumulated into the
            graph's leaves.
        """
        if self._nodes is None:
            root = self._record(build)
            root.backward()
            self.eager_steps += 1
            return root
        if not self.replayable:
            root = build()
            root.backward()
            self.eager_steps += 1
            return root
        plan = self._ensure_plan()
        if plan is None:
            self._replay_forward()
            self._replay_backward()
        else:
            plan.prepare_grads()
            plan.forward()
            plan.backward()
        self.replays += 1
        return self._root  # type: ignore[return-value]

    def stats(self) -> dict:
        """Tape/plan observability counters (see ``repro profile``)."""
        plan = self._plan
        return {
            "backend": self.backend,
            "active_backend": self.backend if plan is not None else "numpy",
            "n_nodes": self.n_nodes,
            "replayable": self.replayable,
            "replays": self.replays,
            "eager_steps": self.eager_steps,
            "fused_segments": plan.n_segments if plan is not None else 0,
            "jitted_segments": plan.n_jitted if plan is not None else 0,
            "fused_bwd_segments": (
                plan.n_bwd_segments if plan is not None else 0
            ),
            "jitted_bwd_segments": (
                plan.n_bwd_jitted if plan is not None else 0
            ),
            "compile_ms": self.compile_ms,
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "fallback_reason": self.plan_failure,
        }

    # -- internals ---------------------------------------------------------

    def _record(self, build: Callable[[], Tensor]) -> Tensor:
        if _tensor_mod._TAPE_SINK is not None:
            raise AutodiffError("nested Tape recording is not supported")
        nodes: list[Tensor] = []
        _tensor_mod._TAPE_SINK = nodes
        try:
            root = build()
        finally:
            _tensor_mod._TAPE_SINK = None
        if root.data.size != 1:
            raise AutodiffError(
                f"Tape.step requires a scalar root, got shape {root.data.shape}"
            )
        self._root = root
        self._nodes = nodes
        self.replayable = root.requires_grad and all(
            node._forward_fn is not None for node in nodes
        )
        return root

    def _ensure_plan(self) -> ReplayProgram | None:
        """The compiled plan for this tape, (re)built lazily.

        Compilation happens on the first replay — after the recording
        step's eager backward, so every buffer exists.  A stale plan
        (a leaf's ``.data`` storage was swapped for a new array) is
        dropped and recompiled against the new storage.
        """
        if self._plan is not None:
            if self._plan.guards_ok():
                return self._plan
            self._plan = None
            self._plan_failed = False
        if self._plan_failed or self.backend == "numpy":
            return None
        started = time.perf_counter()
        plan = self._backend_obj.prepare(self._nodes, self._root)
        self.compile_ms += (time.perf_counter() - started) * 1000.0
        if plan is None:
            self._plan_failed = True
            self.plan_failure = _backend_mod.compile_plan.last_failure
            return None
        # The plan owns interior gradient buffers; drop stale references
        # left by the eager recording step (the walker also ends every
        # replay with interior ``grad`` unset).
        for node in self._nodes:  # type: ignore[union-attr]
            node.grad = None
        self._plan = plan
        return plan

    def _replay_forward(self) -> None:
        for node in self._nodes:  # type: ignore[union-attr]
            node._forward_fn()  # type: ignore[misc]

    def _replay_backward(self) -> None:
        nodes = self._nodes  # type: ignore[assignment]
        for node in nodes:  # type: ignore[union-attr]
            buf = node._grad_buf
            if buf is None:
                buf = node._grad_buf = np.zeros_like(node.data)
            else:
                buf.fill(0.0)
            node.grad = buf
        root = self._root
        root.grad[...] = 1.0  # type: ignore[union-attr, index]
        for node in reversed(nodes):  # type: ignore[arg-type]
            if node.grad is None:
                continue
            grad = node.grad
            node.grad = None
            node._backward_fn(grad)  # type: ignore[misc]


class TapePool:
    """LRU pool of recorded tapes keyed by graph structure.

    The warm-start layer deposits a *payload* (a recorded tape plus
    whatever leaf bookkeeping the depositor needs to rebind fresh
    values — see ``repro.cln.train``) under a structural key; a later
    training call with the same key adopts the payload and skips both
    graph recording and plan compilation.  The pool is a plain
    most-recently-used cache: ``get`` promotes, ``put`` evicts the
    least recently used entry beyond ``max_entries``.  A pool with
    ``max_entries <= 0`` is permanently disabled (gets always miss,
    puts are dropped), which is how ``--tape-pool-size 0`` turns the
    reuse path off without touching call sites.
    """

    def __init__(self, max_entries: int = 8):
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        """The payload stored under ``key``, or ``None`` (a miss)."""
        if self.max_entries <= 0:
            return None
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def put(self, key, payload) -> None:
        """Deposit ``payload`` under ``key``, evicting beyond capacity."""
        if self.max_entries <= 0:
            return
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
        }
