"""Numba JIT of fused forward segments (optional acceleration).

The plan compiler (:mod:`repro.autodiff.backend`) identifies *fused
segments*: maximal runs of adjacent elementwise nodes over same-shape
C-contiguous buffers (0-d operands allowed as dynamic scalars).  This
module lowers such a segment into a single per-element loop —

    def _segment(n, a0, a1, ..., s0, s1, ...):
        for i in range(n):
            v0 = a0[i] + a1[i]
            v1 = math.exp(-(v0 * v0) / (2.0 * s0 * s0))
            a2[i] = v1

— and compiles it with ``numba.njit``.  Intermediate values stay in
registers; every node's output buffer is still written so downstream
non-fused lines and the backward pass read the same arrays.

Design points:

* **Lazy import, graceful fallback.**  ``numba_available()`` attempts
  the import once; without numba (or on any compilation error) the
  segment keeps its fused-numpy lines.  Correctness never depends on
  numba being present.
* **Source-keyed kernel cache.**  Two plans with the same graph
  structure generate byte-identical source, so the jitted kernel is
  compiled once per structure, not once per plan (multi-restart
  training builds many structurally identical tapes).
* **Dynamic scalars.**  0-d operands (annealed sigma/c1 boxes, lambda
  schedule leaves) are read with ``float(...)`` on every call and
  passed as arguments, so in-place box updates are honored.
* **Pure-Python source.**  The generated loop body uses only ``math``
  and indexing, so tests exec and run it without numba to validate the
  codegen on numba-free interpreters.

Numba's libm scalar routines may differ from numpy's vector routines
in the last ulp, so jitted replays are held to a tight ``allclose``
against the reference walker rather than bitwise equality.
"""

from __future__ import annotations

import math
import warnings
from typing import Callable

import numpy as np

_numba = None
_numba_checked = False


def numba_available() -> bool:
    """True when ``import numba`` succeeds (checked once, lazily)."""
    global _numba, _numba_checked
    if not _numba_checked:
        _numba_checked = True
        try:
            import numba  # noqa: F401 - optional accelerator

            _numba = numba
        except Exception:
            _numba = None
    return _numba is not None


def numba_version() -> str | None:
    """The installed numba version, or None without numba."""
    return _numba.__version__ if numba_available() else None


class UnsupportedSegment(Exception):
    """Internal: a node this codegen cannot lower to a scalar loop."""


def _lit(value) -> str:
    return repr(value)


def codegen_forward(nodes, persist) -> tuple[str, list, list]:
    """Generate a per-element loop for a run of elementwise nodes.

    Args:
        nodes: adjacent elementwise nodes in recorded order, all with
            same-shape C-contiguous outputs (0-d parents allowed).
        persist: callable ``(node, tag) -> ndarray`` returning the
            plan's persisted buffer for ``node`` (pbqu's k/denominator,
            which the backward pass reads).

    Returns:
        ``(source, arrays, scalars)`` — the kernel source (argument
        order ``n, a0.., s0..``), the arrays to pass flattened, and the
        scalar operands (floats or 0-d arrays, converted per call).
    """
    arrays: list = []
    arr_names: dict[int, str] = {}
    scalars: list = []
    scal_names: dict[int, str] = {}
    local: dict[int, str] = {}
    body: list[str] = []

    def arr(a: np.ndarray) -> str:
        name = arr_names.get(id(a))
        if name is None:
            name = f"a{len(arrays)}"
            arr_names[id(a)] = name
            arrays.append(a)
        return name

    def scal(v) -> str:
        if isinstance(v, np.ndarray):
            name = scal_names.get(id(v))
            if name is None:
                name = f"s{len(scalars)}"
                scal_names[id(v)] = name
                scalars.append(v)
            return name
        name = f"s{len(scalars)}"
        scalars.append(float(v))
        return name

    def val(p) -> str:
        name = local.get(id(p))
        if name is not None:
            return name
        if p.data.ndim == 0:
            return scal(p.data)
        return f"{arr(p.data)}[i]"

    for idx, node in enumerate(nodes):
        kind, params = node._op
        ps = node._parents
        v = f"v{idx}"
        if kind == "add":
            body.append(f"{v} = {val(ps[0])} + {val(ps[1])}")
        elif kind == "sub":
            body.append(f"{v} = {val(ps[0])} - {val(ps[1])}")
        elif kind == "mul":
            body.append(f"{v} = {val(ps[0])} * {val(ps[1])}")
        elif kind == "div":
            body.append(f"{v} = {val(ps[0])} / {val(ps[1])}")
        elif kind == "neg":
            body.append(f"{v} = -{val(ps[0])}")
        elif kind == "abs":
            body.append(f"{v} = abs({val(ps[0])})")
        elif kind == "pow":
            body.append(f"{v} = {val(ps[0])} ** {_lit(params['exponent'])}")
        elif kind == "exp":
            body.append(f"{v} = math.exp({val(ps[0])})")
        elif kind == "log":
            body.append(f"{v} = math.log({val(ps[0])})")
        elif kind == "sqrt":
            body.append(f"{v} = math.sqrt({val(ps[0])})")
        elif kind == "tanh":
            body.append(f"{v} = math.tanh({val(ps[0])})")
        elif kind == "relu":
            body.append(f"{v} = max({val(ps[0])}, 0.0)")
        elif kind == "maximum":
            body.append(f"{v} = max({val(ps[0])}, {val(ps[1])})")
        elif kind == "minimum":
            body.append(f"{v} = min({val(ps[0])}, {val(ps[1])})")
        elif kind == "sigmoid":
            x = val(ps[0])
            body.append(f"{v}_c = min(max({x}, -500.0), 500.0)")
            body.append(f"if {x} >= 0.0:")
            body.append(f"    {v} = 1.0 / (1.0 + math.exp(-{v}_c))")
            body.append("else:")
            body.append(f"    {v}_e = math.exp({v}_c)")
            body.append(f"    {v} = {v}_e / (1.0 + {v}_e)")
        elif kind == "gaussian":
            x, s = val(ps[0]), scal(params["sigma"])
            body.append(
                f"{v} = math.exp(-({x} * {x}) / (2.0 * {s} * {s}))"
            )
        elif kind == "pbqu":
            x = val(ps[0])
            c1, c2 = scal(params["c1"]), scal(params["c2"])
            karr = arr(persist(node, "k"))
            darr = arr(persist(node, "den"))
            body.append(f"if {x} >= 0.0:")
            body.append(f"    {v}_k = {c2} * {c2}")
            body.append("else:")
            body.append(f"    {v}_k = {c1} * {c1}")
            body.append(f"{v}_d = {x} * {x} + {v}_k")
            body.append(f"{karr}[i] = {v}_k")
            body.append(f"{darr}[i] = {v}_d")
            body.append(f"{v} = {v}_k / {v}_d")
        else:
            raise UnsupportedSegment(f"kind {kind!r}")
        body.append(f"{arr(node.data)}[i] = {v}")
        local[id(node)] = v

    args = ", ".join(
        ["n"]
        + [f"a{i}" for i in range(len(arrays))]
        + [f"s{i}" for i in range(len(scalars))]
    )
    lines = "\n".join(f"        {ln}" for ln in body)
    source = f"def _segment({args}):\n    for i in range(n):\n{lines}\n"
    return source, arrays, scalars


# Kernel cache keyed by generated source: structurally identical plans
# share one compiled kernel.  None marks a known-bad source.
_KERNEL_CACHE: dict[str, object] = {}


def _compile_kernel(source: str):
    if source in _KERNEL_CACHE:
        return _KERNEL_CACHE[source]
    kernel = None
    try:
        ns = {"math": math}
        exec(compile(source, "<numba-segment>", "exec"), ns)
        # cache=True is honored for on-disk sources and silently skipped
        # for exec'd ones; the in-process _KERNEL_CACHE is the real
        # cross-plan cache either way.
        kernel = _numba.njit(cache=True)(ns["_segment"])
    except Exception:
        kernel = None
    _KERNEL_CACHE[source] = kernel
    return kernel


def codegen_backward(lowered) -> tuple[str, list]:
    """Generate a per-element loop for a run of backward source lines.

    Args:
        lowered: the plan compiler's parsed lines, each
            ``(out_array, op, operands)`` with operands already resolved
            to same-size env arrays or Python floats.

    Returns:
        ``(source, arrays)`` — kernel source (argument order
        ``n, a0..``) and the arrays to pass flattened.  Float operands
        embed as literals (backward lines carry no dynamic scalars; the
        compiler rejects ``_tN`` locals).
    """
    arrays: list = []
    arr_names: dict[int, str] = {}
    body: list[str] = []

    def arr(a: np.ndarray) -> str:
        name = arr_names.get(id(a))
        if name is None:
            name = f"a{len(arrays)}"
            arr_names[id(a)] = name
            arrays.append(a)
        return name

    def val(operand) -> str:
        if isinstance(operand, np.ndarray):
            return f"{arr(operand)}[i]"
        return _lit(operand)

    for out, op, operands in lowered:
        if op == "fill":
            expr = _lit(float(operands[0]))
        elif op == "copyto":
            expr = val(operands[0])
        elif op == "negative":
            expr = f"-{val(operands[0])}"
        elif op == "square":
            x = val(operands[0])
            expr = f"{x} * {x}"
        elif op == "sqrt":
            expr = f"math.sqrt({val(operands[0])})"
        elif op == "reciprocal":
            expr = f"1.0 / {val(operands[0])}"
        elif op == "abs":
            expr = f"abs({val(operands[0])})"
        elif op == "add":
            expr = f"{val(operands[0])} + {val(operands[1])}"
        elif op == "subtract":
            expr = f"{val(operands[0])} - {val(operands[1])}"
        elif op == "multiply":
            expr = f"{val(operands[0])} * {val(operands[1])}"
        elif op == "divide":
            expr = f"{val(operands[0])} / {val(operands[1])}"
        elif op == "maximum":
            expr = f"max({val(operands[0])}, {val(operands[1])})"
        elif op == "minimum":
            expr = f"min({val(operands[0])}, {val(operands[1])})"
        elif op == "power":
            expr = f"{val(operands[0])} ** {val(operands[1])}"
        else:
            raise UnsupportedSegment(f"backward op {op!r}")
        body.append(f"{arr(out)}[i] = {expr}")

    args = ", ".join(["n"] + [f"a{i}" for i in range(len(arrays))])
    lines = "\n".join(f"        {ln}" for ln in body)
    source = f"def _segment({args}):\n    for i in range(n):\n{lines}\n"
    return source, arrays


def jit_backward_run(lowered) -> Callable[[], None] | None:
    """JIT one backward run; None keeps the fused numpy lines.

    The eager compile trigger runs against the real buffers, which at
    plan-build time may hold uninitialized scratch (``np.empty``) —
    including zeros that would make njit's scalar division *raise*
    where numpy yields inf.  Every buffer is therefore snapshotted,
    filled with ones (division- and sqrt-safe), and restored, so the
    trigger validates compilation without perturbing replay state.
    """
    if not numba_available():
        return None
    try:
        source, arrays = codegen_backward(lowered)
    except UnsupportedSegment:
        return None
    kernel = _compile_kernel(source)
    if kernel is None:
        return None
    n = int(lowered[0][0].size)
    flat = tuple(a.reshape(-1) for a in arrays)

    def caller() -> None:
        kernel(n, *flat)

    snapshots = [a.copy() for a in arrays]
    try:
        for a in arrays:
            a.fill(1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            caller()  # eager trigger: compile (and validate) now
    except Exception:
        _KERNEL_CACHE[source] = None
        return None
    finally:
        for a, snap in zip(arrays, snapshots):
            a[...] = snap
    return caller


def jit_forward_segment(compiler, seg) -> Callable[[], None] | None:
    """JIT one fused forward segment; None keeps the numpy lines.

    ``seg`` is the plan compiler's ``(node, line_start, line_count)``
    run.  Compilation is triggered eagerly here against the real
    buffers (recomputing a forward idempotently), so a numba failure
    surfaces now — while falling back is still possible — instead of
    mid-training.
    """
    if not numba_available():
        return None
    nodes = [node for node, _, _ in seg]

    def persist(node, tag):
        name = compiler.persist(node, tag, node.data.shape)
        return compiler.env[name]

    try:
        source, arrays, scalars = codegen_forward(nodes, persist)
    except UnsupportedSegment:
        return None
    kernel = _compile_kernel(source)
    if kernel is None:
        return None
    n = int(nodes[0].data.size)
    flat = tuple(a.reshape(-1) for a in arrays)
    boxes = tuple(scalars)

    def caller() -> None:
        kernel(n, *flat, *(float(s) for s in boxes))

    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            caller()  # eager trigger: compile (and validate) now
    except Exception:
        _KERNEL_CACHE[source] = None
        return None
    return caller
