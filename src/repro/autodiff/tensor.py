"""The ``Tensor`` class: numpy arrays with reverse-mode gradients.

Each operation records its parents and a backward closure; calling
:meth:`Tensor.backward` on a scalar runs the closures in reverse
topological order.  Broadcasting is handled by summing gradients over
broadcast dimensions (``_unbroadcast``).

Ops additionally record a *forward* closure that recomputes the node's
value **in place** (into the same ``.data`` buffer) from its parents'
current data.  The :class:`~repro.autodiff.tape.Tape` uses these to
replay an identically-structured graph epoch after epoch without
rebuilding any nodes: training loops become a handful of large numpy
calls instead of thousands of graph-node allocations.  Ops whose
backward closure froze data-dependent state at build time (``where``
with a precomputed condition) simply do not provide a forward closure,
which makes any graph containing them fall back to eager re-tracing.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

from repro.errors import AutodiffError

_GRAD_ENABLED = True

# When non-None, Tensor._result appends every gradient-tracked node it
# creates (in creation order, which is a valid topological order) to
# this list.  The Tape installs it while recording.
_TAPE_SINK: list["Tensor"] | None = None


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (like torch.no_grad)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def exclusive_prod(x: np.ndarray, axis: int) -> np.ndarray:
    """Per-entry product of all *other* entries along ``axis``.

    Robust to zeros: uses shifted cumulative products from both ends
    instead of dividing the total product by each entry.
    """
    ones = np.ones_like(x)
    left = np.cumprod(
        np.concatenate(
            [np.take(ones, [0], axis=axis), np.delete(x, -1, axis=axis)],
            axis=axis,
        ),
        axis=axis,
    )
    rev = np.flip(x, axis=axis)
    right_rev = np.cumprod(
        np.concatenate(
            [np.take(ones, [0], axis=axis), np.delete(rev, -1, axis=axis)],
            axis=axis,
        ),
        axis=axis,
    )
    right = np.flip(right_rev, axis=axis)
    return left * right


def _arr(x) -> np.ndarray:
    """Materialize an op result as a float64 ndarray.

    Numpy reductions and 0-d arithmetic return numpy *scalars*; forward
    closures must capture the same writable buffer the Tensor will hold,
    so every op coerces before building its closures.
    """
    return np.asarray(x, dtype=np.float64)


class Tensor:
    """A numpy-backed tensor with optional gradient tracking."""

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_parents",
        "_backward_fn",
        "_forward_fn",
        "_grad_buf",
        "_op",
    )

    # Make numpy defer to Tensor's reflected operators: without this,
    # ``np.float64(2) * tensor`` would broadcast elementwise into an
    # object array instead of building one graph node.
    __array_ufunc__ = None

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._backward_fn: Callable[[np.ndarray], None] | None = None
        self._forward_fn: Callable[[], None] | None = None
        self._grad_buf: np.ndarray | None = None
        self._op: tuple[str, dict | None] | None = None

    # -- graph construction -------------------------------------------------

    @staticmethod
    def _result(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
        forward_fn: Callable[[], None] | None = None,
        op: tuple[str, dict | None] | None = None,
    ) -> "Tensor":
        """Build a graph node.

        ``op`` is structured metadata — ``(kind, params)`` — describing
        the operation the closures implement.  The plan compiler
        (:mod:`repro.autodiff.backend`) lowers a recorded tape through
        it; nodes without metadata make the tape fall back to the
        closure walker, never to wrong answers.
        """
        parents = tuple(parents)
        track = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = track
        if track:
            out._parents = parents
            out._backward_fn = backward_fn
            out._forward_fn = forward_fn
            out._op = op
            if _TAPE_SINK is not None:
                _TAPE_SINK.append(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # -- basic properties ------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        if self.data.size != 1:
            raise AutodiffError(
                f"item() requires a single-element tensor, got shape {self.data.shape}"
            )
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        return self.data.copy()

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag})"

    # -- autograd ------------------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Args:
            grad: seed gradient; defaults to 1 for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise AutodiffError(
                    "backward() without a gradient requires a scalar tensor"
                )
            grad = np.ones_like(self.data)
        if not self.requires_grad:
            return

        # Iterative post-order topological sort (deep graphs would blow
        # Python's recursion limit).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if id(node) in visited or not node.requires_grad:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                stack.append((parent, False))

        # Every node accumulates incoming gradients into ``.grad``; when
        # an interior node is visited (after all its consumers), its
        # closure fires once with the fully accumulated gradient and the
        # interior gradient is released.  Leaves keep theirs.
        self._accumulate(np.broadcast_to(np.asarray(grad, dtype=np.float64), self.data.shape))
        for node in reversed(order):
            if node._backward_fn is None or node.grad is None:
                continue
            node_grad = node.grad
            node.grad = None
            node._backward_fn(node_grad)

    # -- operators ------------------------------------------------------------

    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = _arr(self.data + other.data)

        def forward() -> None:
            np.add(self.data, other.data, out=data)

        def backward(grad: np.ndarray) -> None:
            self._push(grad)
            other._push(grad)

        return Tensor._result(data, (self, other), backward, forward, ("add", None))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = _arr(-self.data)

        def forward() -> None:
            np.negative(self.data, out=data)

        def backward(grad: np.ndarray) -> None:
            self._push(-grad)

        return Tensor._result(data, (self,), backward, forward, ("neg", None))

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = _arr(self.data - other.data)

        def forward() -> None:
            np.subtract(self.data, other.data, out=data)

        def backward(grad: np.ndarray) -> None:
            self._push(grad)
            other._push(-grad)

        return Tensor._result(data, (self, other), backward, forward, ("sub", None))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = _arr(self.data * other.data)

        def forward() -> None:
            np.multiply(self.data, other.data, out=data)

        def backward(grad: np.ndarray) -> None:
            self._push(grad * other.data)
            other._push(grad * self.data)

        return Tensor._result(data, (self, other), backward, forward, ("mul", None))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = _arr(self.data / other.data)

        def forward() -> None:
            np.divide(self.data, other.data, out=data)

        def backward(grad: np.ndarray) -> None:
            self._push(grad / other.data)
            other._push(-grad * self.data / (other.data**2))

        return Tensor._result(data, (self, other), backward, forward, ("div", None))

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise AutodiffError("tensor ** tensor is not supported; use exp/log")
        data = _arr(self.data**exponent)

        def forward() -> None:
            np.power(self.data, exponent, out=data)

        def backward(grad: np.ndarray) -> None:
            self._push(grad * exponent * self.data ** (exponent - 1))

        return Tensor._result(data, (self,), backward, forward, ("pow", {"exponent": exponent}))

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = _arr(self.data @ other.data)

        def forward() -> None:
            if data.ndim:
                np.matmul(self.data, other.data, out=data)
            else:
                data[...] = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad, dtype=np.float64)
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._push(grad * b)
                other._push(grad * a)
            elif a.ndim == 2 and b.ndim == 1:
                self._push(np.outer(grad, b))
                other._push(a.T @ grad)
            elif a.ndim == 1 and b.ndim == 2:
                self._push(b @ grad)
                other._push(np.outer(a, grad))
            else:
                # swapaxes(-1, -2) equals .T for 2-D operands and keeps
                # batch axes in place for stacked (N-D) matmuls; _push
                # reduces any broadcast batch axes back to the operand.
                self._push(grad @ b.swapaxes(-1, -2))
                other._push(a.swapaxes(-1, -2) @ grad)

        return Tensor._result(data, (self, other), backward, forward, ("matmul", None))

    def abs(self) -> "Tensor":
        """Elementwise absolute value (gradient 0 chosen at 0)."""
        data = _arr(np.abs(self.data))

        def forward() -> None:
            np.abs(self.data, out=data)

        def backward(grad: np.ndarray) -> None:
            self._push(grad * np.sign(self.data))

        return Tensor._result(data, (self,), backward, forward, ("abs", None))

    def __abs__(self) -> "Tensor":
        return self.abs()

    # -- reductions & reshaping ------------------------------------------------

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        data = _arr(self.data.sum(axis=axis, keepdims=keepdims))

        def forward() -> None:
            np.sum(self.data, axis=axis, keepdims=keepdims, out=data)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad, dtype=np.float64)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._push(np.broadcast_to(g, self.data.shape))

        return Tensor._result(
            data, (self,), backward, forward,
            ("sum", {"axis": axis, "keepdims": keepdims}),
        )

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def prod(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Product along one axis.

        The gradient uses the quotient form ``prod / x``; entries that
        are exactly zero get a gradient computed via the product of the
        other entries along the axis (exclusive product), so the result
        is correct even with zeros.
        """
        data = _arr(self.data.prod(axis=axis, keepdims=keepdims))

        def forward() -> None:
            np.prod(self.data, axis=axis, keepdims=keepdims, out=data)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad, dtype=np.float64)
            if not keepdims:
                g = np.expand_dims(g, axis=axis)
            x = self.data
            zero_mask = x == 0.0
            if not zero_mask.any():
                total = x.prod(axis=axis, keepdims=True)
                self._push(g * total / x)
            else:
                self._push(g * exclusive_prod(x, axis))

        return Tensor._result(
            data, (self,), backward, forward,
            ("prod", {"axis": axis, "keepdims": keepdims}),
        )

    def reshape(self, *shape: int) -> "Tensor":
        data = self.data.reshape(*shape)
        is_view = np.shares_memory(data, self.data)

        def forward() -> None:
            if not is_view:
                data[...] = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            self._push(np.asarray(grad).reshape(self.data.shape))

        return Tensor._result(
            data, (self,), backward, forward, ("reshape", {"is_view": is_view})
        )

    @property
    def T(self) -> "Tensor":
        data = self.data.T
        is_view = np.shares_memory(data, self.data)

        def forward() -> None:
            if not is_view:
                data[...] = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._push(np.asarray(grad).T)

        return Tensor._result(
            data, (self,), backward, forward, ("T", {"is_view": is_view})
        )

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Exchange two axes (a view, like ``np.swapaxes``).

        The N-D counterpart of :attr:`T` for stacked batches: e.g.
        ``(models, units, terms) -> (models, terms, units)`` ahead of a
        batched matmul.
        """
        data = self.data.swapaxes(axis1, axis2)

        def forward() -> None:
            pass  # always a view of self.data

        def backward(grad: np.ndarray) -> None:
            self._push(np.asarray(grad).swapaxes(axis1, axis2))

        return Tensor._result(
            data, (self,), backward, forward,
            ("swapaxes", {"axis1": axis1, "axis2": axis2}),
        )

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        is_view = np.shares_memory(data, self.data)

        def forward() -> None:
            if not is_view:
                data[...] = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, np.asarray(grad, dtype=np.float64))
            self._push(full)

        return Tensor._result(
            data, (self,), backward, forward,
            ("getitem", {"index": index, "is_view": is_view}),
        )

    # -- gradient plumbing -------------------------------------------------------

    def _push(self, grad: np.ndarray) -> None:
        """Route a gradient to this node during backprop.

        Leaves accumulate into ``.grad``; interior nodes invoke their own
        backward closure immediately.  Because :meth:`backward` walks in
        reverse topological order and closures fire on first receipt,
        interior nodes buffer gradients through ``.grad`` until visited.
        """
        if not self.requires_grad:
            return
        self._accumulate(grad)

    def __len__(self) -> int:
        return len(self.data)
