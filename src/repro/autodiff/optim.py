"""Optimizers: SGD and Adam with multiplicative learning-rate decay.

The paper trains with Adam (lr=0.01, decay 0.9996 per epoch, max 5000
epochs); :class:`Adam` implements the standard Kingma-Ba update with an
optional per-step decay factor to match.

Both optimizers are allocation-free in steady state: ``zero_grad``
zeroes the existing gradient buffers in place (``Tensor._accumulate``
then adds into them), and :meth:`Adam.step` stages every intermediate
in preallocated scratch buffers instead of allocating fresh arrays
each epoch.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import AutodiffError
from repro.autodiff.tensor import Tensor


class Optimizer:
    """Base optimizer over a list of parameter tensors."""

    def __init__(self, params: list[Tensor], lr: float):
        if lr <= 0:
            raise AutodiffError(f"learning rate must be positive, got {lr}")
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise AutodiffError("optimizer received no trainable parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        """Zero every parameter gradient, reusing the existing buffers."""
        for p in self.params:
            if p.grad is not None and p.grad.shape == p.data.shape:
                p.grad.fill(0.0)
            else:
                p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Tensor], lr: float, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba 2015) with multiplicative lr decay."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        decay: float = 1.0,
    ):
        """
        Args:
            params: trainable tensors.
            lr: initial learning rate.
            betas: exponential decay rates for the moment estimates.
            eps: numerical stabilizer.
            decay: multiplicative lr decay applied after every step
                (the paper uses 0.9996).
        """
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.decay = decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        # Two scratch buffers per parameter keep the update entirely
        # in place (no per-epoch allocations).
        self._s1 = [np.empty_like(p.data) for p in self.params]
        self._s2 = [np.empty_like(p.data) for p in self.params]

    def reset_moments(self) -> None:
        """Zero both moment estimates in place (warm-start seeding).

        After a restart's parameters are overwritten with another
        member's, its accumulated first/second moments describe a
        trajectory that no longer exists; zeroing them restarts moment
        estimation from the seeded point.  The step counter and decayed
        learning rate are deliberately kept — they are shared across
        members in the stacked optimizer, so resetting them per member
        would break the per-member ≡ stacked equivalence.
        """
        for m, v in zip(self._m, self._v):
            m.fill(0.0)
            v.fill(0.0)

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step
        bias2 = 1.0 - beta2**self._step
        for p, m, v, s1, s2 in zip(self.params, self._m, self._v, self._s1, self._s2):
            if p.grad is None:
                continue
            grad = p.grad
            # m = beta1*m + (1-beta1)*grad
            m *= beta1
            np.multiply(grad, 1.0 - beta1, out=s1)
            m += s1
            # v = beta2*v + (1-beta2)*grad^2
            v *= beta2
            np.multiply(grad, grad, out=s1)
            s1 *= 1.0 - beta2
            v += s1
            # p -= (lr * m_hat) / (sqrt(v_hat) + eps), same evaluation
            # order as the textbook form for bitwise reproducibility.
            np.divide(v, bias2, out=s1)
            np.sqrt(s1, out=s1)
            s1 += self.eps
            np.divide(m, bias1, out=s2)
            s2 *= self.lr
            s2 /= s1
            p.data -= s2
        self.lr *= self.decay


class StackedAdam(Adam):
    """Adam over ``(models, ...)`` stacked parameters with per-model freezing.

    Every Adam intermediate is elementwise, so one update over stacked
    tensors is bitwise-identical per leading-axis slice to running one
    Adam per model — as long as all models step in lockstep, which the
    stacked training loops guarantee (stopped models are *frozen*, not
    skipped).  :meth:`freeze` zeroes a model's future update slices so
    its parameters never change again; its moment buffers keep evolving
    against stale gradients but are never applied (models never
    unfreeze), preserving the per-model early-stop guarantee without
    per-model Python loops.
    """

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        decay: float = 1.0,
    ):
        super().__init__(params, lr, betas, eps, decay)
        self._frozen: list[int] = []

    def freeze(self, index: int) -> None:
        """Permanently stop updating model ``index``'s parameter slices."""
        if index not in self._frozen:
            self._frozen.append(index)

    def reset_member(self, index: int) -> None:
        """Zero model ``index``'s moment slices (warm-start seeding).

        The leading-axis analogue of :meth:`Adam.reset_moments`: only
        the seeded member's moments restart, the shared step counter
        and learning rate are untouched.
        """
        for m, v in zip(self._m, self._v):
            m[index] = 0.0
            v[index] = 0.0

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step
        bias2 = 1.0 - beta2**self._step
        for p, m, v, s1, s2 in zip(self.params, self._m, self._v, self._s1, self._s2):
            if p.grad is None:
                continue
            grad = p.grad
            m *= beta1
            np.multiply(grad, 1.0 - beta1, out=s1)
            m += s1
            v *= beta2
            np.multiply(grad, grad, out=s1)
            s1 *= 1.0 - beta2
            v += s1
            np.divide(v, bias2, out=s1)
            np.sqrt(s1, out=s1)
            s1 += self.eps
            np.divide(m, bias1, out=s2)
            s2 *= self.lr
            s2 /= s1
            if self._frozen:
                # x - 0.0 == x bitwise: frozen slices stay untouched.
                s2[self._frozen] = 0.0
            p.data -= s2
        self.lr *= self.decay


def clip_grad_norm_stacked(
    params: list[Tensor], max_norm: float
) -> np.ndarray:
    """Per-model global-norm clip over ``(models, ...)`` stacked grads.

    Model m's norm is taken over its leading-axis slices of every
    parameter, in parameter order — the same accumulation order (and
    hence bitwise the same norm) as :func:`clip_grad_norm` over that
    model's own parameter list.  Models under the threshold are scaled
    by exactly 1.0 (a bitwise no-op), so the result matches per-model
    clipping without a per-model Python loop.  Returns the pre-clip
    norms, one per model.
    """
    totals: np.ndarray | None = None
    n_models = params[0].data.shape[0]
    for p in params:
        if p.grad is None:
            continue
        grad = p.grad
        sq = (grad.reshape(n_models, -1) ** 2).sum(axis=1)
        totals = sq if totals is None else totals + sq
    if totals is None:
        return np.zeros(n_models)
    norms = np.sqrt(totals)
    needs_clip = (norms > max_norm) & (norms > 0)
    if needs_clip.any():
        scale = np.ones_like(norms)
        scale[needs_clip] = max_norm / norms[needs_clip]
        for p in params:
            if p.grad is not None:
                p.grad *= scale.reshape((-1,) + (1,) * (p.grad.ndim - 1))
    return norms


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Clip the global gradient norm in place; returns the pre-clip norm."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


def clip_grad_norm_groups(
    groups: Sequence[list[Tensor]], max_norm: float
) -> list[float]:
    """Clip each parameter group by its own global norm.

    Used by batched multi-restart training: every restart's parameters
    form one group, so the clipping a restart experiences is identical
    to what it would see trained alone.
    """
    return [clip_grad_norm(list(group), max_norm) for group in groups]
