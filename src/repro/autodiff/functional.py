"""Elementwise functions and combinators on tensors."""

from __future__ import annotations

import numpy as np

from repro.errors import AutodiffError
from repro.autodiff.tensor import Tensor


def exp(x: Tensor) -> Tensor:
    data = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        x._push(grad * data)

    return Tensor._result(data, (x,), backward)


def log(x: Tensor) -> Tensor:
    data = np.log(x.data)

    def backward(grad: np.ndarray) -> None:
        x._push(grad / x.data)

    return Tensor._result(data, (x,), backward)


def sqrt(x: Tensor) -> Tensor:
    data = np.sqrt(x.data)

    def backward(grad: np.ndarray) -> None:
        x._push(grad * 0.5 / np.maximum(data, 1e-300))

    return Tensor._result(data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    # Numerically stable logistic.
    data = np.where(
        x.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x.data, -500, 500))),
        np.exp(np.clip(x.data, -500, 500))
        / (1.0 + np.exp(np.clip(x.data, -500, 500))),
    )

    def backward(grad: np.ndarray) -> None:
        x._push(grad * data * (1.0 - data))

    return Tensor._result(data, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        x._push(grad * (1.0 - data**2))

    return Tensor._result(data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        x._push(grad * (x.data > 0))

    return Tensor._result(data, (x,), backward)


def gaussian(x: Tensor, sigma: float) -> Tensor:
    """The paper's equality relaxation ``exp(-x^2 / (2 sigma^2))`` (§4.2)."""
    if sigma <= 0:
        raise AutodiffError(f"sigma must be positive, got {sigma}")
    data = np.exp(-(x.data**2) / (2.0 * sigma**2))

    def backward(grad: np.ndarray) -> None:
        x._push(grad * data * (-x.data / sigma**2))

    return Tensor._result(data, (x,), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable piecewise selection; ``condition`` is data, not a node."""
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64)
        a._push(np.where(cond, g, 0.0))
        b._push(np.where(cond, 0.0, g))

    return Tensor._result(data, (a, b), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise max; ties send the gradient to the first argument."""
    data = np.maximum(a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64)
        take_a = a.data >= b.data
        a._push(np.where(take_a, g, 0.0))
        b._push(np.where(take_a, 0.0, g))

    return Tensor._result(data, (a, b), backward)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise min; ties send the gradient to the first argument."""
    data = np.minimum(a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64)
        take_a = a.data <= b.data
        a._push(np.where(take_a, g, 0.0))
        b._push(np.where(take_a, 0.0, g))

    return Tensor._result(data, (a, b), backward)


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    if not tensors:
        raise AutodiffError("concat needs at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64)
        offset = 0
        for tensor, size in zip(tensors, sizes):
            index = [slice(None)] * g.ndim
            index[axis] = slice(offset, offset + size)
            tensor._push(g[tuple(index)])
            offset += size

    return Tensor._result(data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack same-shape tensors along a new axis."""
    if not tensors:
        raise AutodiffError("stack needs at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64)
        for i, tensor in enumerate(tensors):
            tensor._push(np.take(g, i, axis=axis))

    return Tensor._result(data, tuple(tensors), backward)
