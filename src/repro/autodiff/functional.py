"""Elementwise functions, combinators, and fused CLN kernels.

Every op records an in-place forward closure (see
:mod:`repro.autodiff.tape`) alongside its backward closure — including
:func:`where`, which recomputes its condition dynamically (a callable
condition is re-evaluated, an array condition re-read in place), so
graphs containing it stay replayable.

The fused kernels at the bottom collapse the hot CLN chains into a
single graph node each:

* :func:`gaussian` — the equality relaxation (one node already; its σ
  may be a 0-d numpy "box" that an annealing loop updates in place).
* :func:`pbqu` — the PBQU inequality relaxation as one node (the eager
  formulation was a ``where`` over two 3-op branches, which is both 7
  nodes and un-replayable).
* :func:`fused_gated_tnorm` / :func:`fused_gated_tconorm` — a whole
  gated clause (``prod(1 + g·(v-1))`` / ``1 - prod(1 - g·v)``) as one
  node instead of a sub/mul/add/prod chain.

Scalar hyperparameters (σ, c1, c2) accept either plain floats or 0-d
numpy arrays; closures resolve them with ``float(...)`` at call time,
so a training loop can anneal them by assigning into the box without
invalidating a recorded tape.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AutodiffError
from repro.autodiff.tensor import Tensor, exclusive_prod


def exp(x: Tensor) -> Tensor:
    data = np.asarray(np.exp(x.data))

    def forward() -> None:
        np.exp(x.data, out=data)

    def backward(grad: np.ndarray) -> None:
        x._push(grad * data)

    return Tensor._result(data, (x,), backward, forward, ("exp", None))


def log(x: Tensor) -> Tensor:
    data = np.asarray(np.log(x.data))

    def forward() -> None:
        np.log(x.data, out=data)

    def backward(grad: np.ndarray) -> None:
        x._push(grad / x.data)

    return Tensor._result(data, (x,), backward, forward, ("log", None))


def sqrt(x: Tensor) -> Tensor:
    data = np.asarray(np.sqrt(x.data))

    def forward() -> None:
        np.sqrt(x.data, out=data)

    def backward(grad: np.ndarray) -> None:
        x._push(grad * 0.5 / np.maximum(data, 1e-300))

    return Tensor._result(data, (x,), backward, forward, ("sqrt", None))


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    clipped = np.clip(x, -500, 500)
    return np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-clipped)),
        np.exp(clipped) / (1.0 + np.exp(clipped)),
    )


def sigmoid(x: Tensor) -> Tensor:
    # Numerically stable logistic.
    data = np.asarray(_stable_sigmoid(x.data))

    def forward() -> None:
        data[...] = _stable_sigmoid(x.data)

    def backward(grad: np.ndarray) -> None:
        x._push(grad * data * (1.0 - data))

    return Tensor._result(data, (x,), backward, forward, ("sigmoid", None))


def tanh(x: Tensor) -> Tensor:
    data = np.asarray(np.tanh(x.data))

    def forward() -> None:
        np.tanh(x.data, out=data)

    def backward(grad: np.ndarray) -> None:
        x._push(grad * (1.0 - data**2))

    return Tensor._result(data, (x,), backward, forward, ("tanh", None))


def relu(x: Tensor) -> Tensor:
    data = np.asarray(np.maximum(x.data, 0.0))

    def forward() -> None:
        np.maximum(x.data, 0.0, out=data)

    def backward(grad: np.ndarray) -> None:
        x._push(grad * (x.data > 0))

    return Tensor._result(data, (x,), backward, forward, ("relu", None))


def gaussian(x: Tensor, sigma) -> Tensor:
    """The paper's equality relaxation ``exp(-x^2 / (2 sigma^2))`` (§4.2).

    ``sigma`` may be a float or a 0-d numpy box (annealed in place).
    """
    if float(sigma) <= 0:
        raise AutodiffError(f"sigma must be positive, got {float(sigma)}")

    def compute() -> np.ndarray:
        s = float(sigma)
        return np.exp(-(x.data**2) / (2.0 * s**2))

    data = np.asarray(compute())

    def forward() -> None:
        data[...] = compute()

    def backward(grad: np.ndarray) -> None:
        x._push(grad * data * (-x.data / float(sigma) ** 2))

    return Tensor._result(
        data, (x,), backward, forward, ("gaussian", {"sigma": sigma})
    )


def pbqu(t: Tensor, c1, c2) -> Tensor:
    """Fused PBQU relaxation of ``t >= 0`` (Eq. 3 of the paper).

        S(t) = c2^2 / (t^2 + c2^2)   if t >= 0  (slow decay)
             = c1^2 / (t^2 + c1^2)   if t <  0  (sharp penalty)

    One graph node instead of a ``where`` over two rational chains; the
    branch condition is recomputed from ``t.data`` on every replay, so
    the node is tape-safe.  ``c1``/``c2`` may be floats or 0-d boxes.
    """
    if float(c1) <= 0 or float(c2) <= 0:
        raise AutodiffError(
            f"PBQU constants must be positive, got {float(c1)}, {float(c2)}"
        )

    def compute() -> np.ndarray:
        td = t.data
        k = np.where(td >= 0.0, float(c2) ** 2, float(c1) ** 2)
        return k / (td * td + k)

    data = np.asarray(compute())

    def forward() -> None:
        data[...] = compute()

    def backward(grad: np.ndarray) -> None:
        td = t.data
        k = np.where(td >= 0.0, float(c2) ** 2, float(c1) ** 2)
        denom = td * td + k
        t._push(grad * (-2.0 * td * k) / (denom * denom))

    return Tensor._result(
        data, (t,), backward, forward, ("pbqu", {"c1": c1, "c2": c2})
    )


def fused_gated_tnorm(values: Tensor, gates: Tensor, axis: int = -1) -> Tensor:
    """Gated t-norm ``prod(1 + g*(v - 1))`` along ``axis`` as one node.

    ``gates`` broadcasts against ``values`` (e.g. per-clause gates of
    shape ``(clauses, literals)`` against ``(samples, clauses,
    literals)``, or ``(models, 1, clauses, literals)`` against a
    models-stacked ``(models, samples, clauses, literals)`` batch);
    gradients are reduced back over broadcast axes.
    """
    axis = axis if axis >= 0 else values.ndim + axis
    inner = np.asarray(1.0 + gates.data * (values.data - 1.0))
    data = np.asarray(inner.prod(axis=axis))

    def forward() -> None:
        if inner.shape == values.data.shape:
            np.subtract(values.data, 1.0, out=inner)
            np.multiply(inner, gates.data, out=inner)
            np.add(inner, 1.0, out=inner)
        else:
            inner[...] = 1.0 + gates.data * (values.data - 1.0)
        np.prod(inner, axis=axis, out=data)

    def backward(grad: np.ndarray) -> None:
        g = np.expand_dims(np.asarray(grad, dtype=np.float64), axis=axis)
        g_inner = g * exclusive_prod(inner, axis)
        values._push(g_inner * gates.data)
        gates._push(g_inner * (values.data - 1.0))

    return Tensor._result(
        data, (values, gates), backward, forward,
        ("tnorm", {"axis": axis, "inner": inner}),
    )


def fused_gated_tconorm(values: Tensor, gates: Tensor, axis: int = -1) -> Tensor:
    """Gated t-conorm ``1 - prod(1 - g*v)`` along ``axis`` as one node."""
    axis = axis if axis >= 0 else values.ndim + axis
    inner = np.asarray(1.0 - gates.data * values.data)
    data = np.asarray(1.0 - inner.prod(axis=axis))

    def forward() -> None:
        np.multiply(gates.data, values.data, out=inner)
        np.subtract(1.0, inner, out=inner)
        np.prod(inner, axis=axis, out=data)
        np.subtract(1.0, data, out=data)

    def backward(grad: np.ndarray) -> None:
        g = np.expand_dims(np.asarray(grad, dtype=np.float64), axis=axis)
        g_inner = g * exclusive_prod(inner, axis)
        values._push(g_inner * gates.data)
        gates._push(g_inner * values.data)

    return Tensor._result(
        data, (values, gates), backward, forward,
        ("tconorm", {"axis": axis, "inner": inner}),
    )


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable piecewise selection; ``condition`` is data, not a node.

    ``condition`` may be a boolean array or a zero-argument callable
    returning one.  Either way the node is tape-replayable: the forward
    closure recomputes the selection from the parents' *current* data
    on every replay, and a callable condition is re-evaluated first —
    so data-dependent branches (``where(lambda: x.data >= 0, ...)``)
    track the leaves instead of freezing at record time.  An array
    condition is re-read in place, so updating the caller's boolean
    buffer between epochs also works.  Prefer :func:`pbqu` (or a
    dedicated fused kernel) on hot paths.
    """
    cond_fn = condition if callable(condition) else None
    if cond_fn is not None:
        # Own buffer, refreshed in place on every replay.
        cond = np.array(cond_fn(), dtype=bool)
    else:
        # Shared when already boolean: in-place caller updates track.
        cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def forward() -> None:
        if cond_fn is not None:
            cond[...] = cond_fn()
        np.copyto(data, b.data)
        np.copyto(data, a.data, where=cond)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64)
        a._push(np.where(cond, g, 0.0))
        b._push(np.where(cond, 0.0, g))

    return Tensor._result(
        data, (a, b), backward, forward,
        ("where", {"cond": cond, "cond_fn": cond_fn}),
    )


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise max; ties send the gradient to the first argument."""
    data = np.asarray(np.maximum(a.data, b.data))

    def forward() -> None:
        np.maximum(a.data, b.data, out=data)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64)
        take_a = a.data >= b.data
        a._push(np.where(take_a, g, 0.0))
        b._push(np.where(take_a, 0.0, g))

    return Tensor._result(data, (a, b), backward, forward, ("maximum", None))


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise min; ties send the gradient to the first argument."""
    data = np.asarray(np.minimum(a.data, b.data))

    def forward() -> None:
        np.minimum(a.data, b.data, out=data)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64)
        take_a = a.data <= b.data
        a._push(np.where(take_a, g, 0.0))
        b._push(np.where(take_a, 0.0, g))

    return Tensor._result(data, (a, b), backward, forward, ("minimum", None))


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    if not tensors:
        raise AutodiffError("concat needs at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def forward() -> None:
        np.concatenate([t.data for t in tensors], axis=axis, out=data)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64)
        offset = 0
        for tensor, size in zip(tensors, sizes):
            index = [slice(None)] * g.ndim
            index[axis] = slice(offset, offset + size)
            tensor._push(g[tuple(index)])
            offset += size

    return Tensor._result(
        data, tuple(tensors), backward, forward,
        ("concat", {"axis": axis, "sizes": sizes}),
    )


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack same-shape tensors along a new axis."""
    if not tensors:
        raise AutodiffError("stack needs at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)

    def forward() -> None:
        np.stack([t.data for t in tensors], axis=axis, out=data)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64)
        for i, tensor in enumerate(tensors):
            tensor._push(np.take(g, i, axis=axis))

    return Tensor._result(
        data, tuple(tensors), backward, forward, ("stack", {"axis": axis})
    )
