"""Parameter initialization helpers."""

from __future__ import annotations

import numpy as np

from repro.autodiff.tensor import Tensor


def normal_init(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    std: float = 1.0,
    mean: float = 0.0,
) -> Tensor:
    """Gaussian-initialized trainable tensor."""
    return Tensor(rng.normal(mean, std, size=shape), requires_grad=True)


def uniform_init(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    low: float = -1.0,
    high: float = 1.0,
) -> Tensor:
    """Uniform-initialized trainable tensor."""
    return Tensor(rng.uniform(low, high, size=shape), requires_grad=True)
