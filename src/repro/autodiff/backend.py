"""Replay backends: compile a recorded tape into a fused replay program.

The :class:`~repro.autodiff.tape.Tape` replays a graph closure-by-
closure: per node, a Python call, ``asarray``/``_unbroadcast`` checks,
and freshly allocated gradient temporaries.  On the small arrays G-CLN
trains on, that per-op machinery — not numpy — is the floor under
epochs/sec.  This module removes it by *lowering* the recorded node
list into straight-line Python source over preallocated buffers:

* one generated ``_fwd()`` runs every forward in recorded order, and
  one generated ``_bwd()`` seeds the root and fires every backward
  contribution in reverse order — no per-op dispatch, no topological
  bookkeeping, no gradient allocation;
* scratch temporaries come from a shape-keyed arena allocated once at
  compile time; every ufunc writes with ``out=``;
* contributions to parents that do not require gradients are dropped
  at compile time (the walker computes and discards them);
* ``exclusive_prod`` — the t-norm backward hot spot — runs through an
  allocation-free twin that is bitwise-identical to the reference;
* runs of adjacent same-shape elementwise nodes form *fused segments*;
  the numba backend JITs those segments into single per-element loops
  (:mod:`repro.autodiff.backend_numba`), falling back to the fused
  numpy lines when numba is absent or compilation fails.

**Oracle guarantee**: the ``numpy`` backend is the untouched closure
walker, and the ``fused`` plan computes every gradient with the same
numpy ufunc sequence the closures execute (relying on documented
identities such as ``x ** 2`` lowering to ``np.square``, scalar
operands matching uniform-array operands bitwise, and multiply/add
commuting bitwise), so fused replays are bitwise-identical to walker
replays with two narrow, value-equal exceptions — values always
compare equal under ``==``/``np.array_equal``:

* the *sign* of exactly-zero gradients can differ: the plan's first
  contribution to a buffer overwrites instead of adding into zeros,
  constant gradient chains fold to Python floats, and masked selects
  (``where``/``maximum``/``minimum`` backward) use a boolean multiply
  instead of ``np.where``;
* those masked selects also assume *finite* gradients (an inf/nan
  gradient flowing into a masked-out branch would surface as nan here
  but 0 in the walker), and a dead subgraph — one whose output never
  receives a gradient — is skipped outright rather than fed exact
  zeros.

Numba segments use libm scalar math and are held to a tight
``allclose`` instead.

Compilation is conservative: any node without supported ``_op``
metadata makes :func:`compile_plan` return ``None`` and the tape falls
back to the walker.  Correctness never depends on compilability.
"""

from __future__ import annotations

import re
from typing import Callable

import numpy as np

from repro.errors import AutodiffError
from repro.autodiff.functional import _stable_sigmoid
from repro.autodiff.tensor import Tensor, exclusive_prod


def exclusive_prod_into(
    x: np.ndarray,
    axis: int,
    left: np.ndarray,
    right: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Allocation-free, bitwise-identical twin of ``exclusive_prod``.

    ``left``/``right``/``out`` are caller-owned scratch of ``x``'s
    shape.  The shifted-cumprod construction multiplies exactly the
    same values in the same order as the reference, so results are
    bitwise-equal (asserted by the backend test suite).
    """
    ndim = x.ndim
    first = tuple(
        slice(0, 1) if i == axis else slice(None) for i in range(ndim)
    )
    head = tuple(
        slice(0, x.shape[axis] - 1) if i == axis else slice(None)
        for i in range(ndim)
    )
    tail = tuple(
        slice(1, None) if i == axis else slice(None) for i in range(ndim)
    )
    left[first] = 1.0
    left[tail] = x[head]
    np.cumprod(left, axis=axis, out=left)
    rev = np.flip(x, axis=axis)
    right[first] = 1.0
    right[tail] = rev[head]
    np.cumprod(right, axis=axis, out=right)
    np.multiply(left, np.flip(right, axis=axis), out=out)
    return out


def _lit(value) -> str:
    """Embed a Python scalar in generated source, round-tripping floats."""
    return repr(value)


def _matmul_result_shape(sa: tuple, sb: tuple) -> tuple:
    batch = np.broadcast_shapes(sa[:-2], sb[:-2])
    return batch + (sa[-2], sb[-1])


class ReplayProgram:
    """A compiled forward/backward replay for one recorded tape."""

    def __init__(
        self,
        env: dict,
        data_guard: list,
        grad_guard: list,
        source: str,
        n_segments: int,
        n_jitted: int,
        n_bwd_segments: int = 0,
        n_bwd_jitted: int = 0,
    ):
        self.env = env
        self.forward: Callable[[], None] = env["_fwd"]
        self.backward: Callable[[], None] = env["_bwd"]
        self._data_guard = data_guard
        self._grad_guard = grad_guard
        self.source = source
        self.n_segments = n_segments
        self.n_jitted = n_jitted
        self.n_bwd_segments = n_bwd_segments
        self.n_bwd_jitted = n_bwd_jitted

    def guards_ok(self) -> bool:
        """True while every bound leaf still owns the compiled buffers.

        A leaf whose ``.data`` was swapped for a different array (e.g.
        storage rebinding) invalidates the plan; the tape recompiles.
        """
        env = self.env
        for tensor, name in self._data_guard:
            if env[name] is not tensor.data:
                return False
        return True

    def prepare_grads(self) -> None:
        """Point the plan at each leaf's current gradient buffer.

        A leaf entering the replay with ``grad=None`` gets a plan-owned
        zeroed buffer (the walker would copy its first contribution;
        adding into zeros is value-equal).  A caller-swapped buffer is
        simply rebound — names resolve through ``env`` at call time.
        """
        env = self.env
        for tensor, name, own in self._grad_guard:
            grad = tensor.grad
            if grad is None:
                own.fill(0.0)
                tensor.grad = grad = own
            if env[name] is not grad:
                env[name] = grad


# Elementwise kinds a numba segment can absorb (same-shape operands).
_SEGMENT_KINDS = frozenset(
    {
        "add", "sub", "mul", "div", "neg", "abs", "exp", "log", "sqrt",
        "tanh", "relu", "sigmoid", "pow", "gaussian", "pbqu",
        "maximum", "minimum",
    }
)
# Kinds heavy enough that a single-node segment is worth a JIT loop.
_HEAVY_KINDS = frozenset(
    {"exp", "log", "sqrt", "tanh", "sigmoid", "gaussian", "pbqu"}
)

# Backward lines eligible for segment JIT.  Unlike the forward pass
# (which segments *nodes*), the backward pass is segmented on the
# generated source lines: a line is JITable when it is a plain
# same-size elementwise ufunc call over C-contiguous env arrays and
# float literals.  Anything with reshapes, reductions, scatter,
# dynamic-scalar locals (``_tN``), or ``if`` blocks breaks a run.
_BWD_CALL_RE = re.compile(
    r"^np\.(negative|square|sqrt|reciprocal|abs|add|subtract|multiply|"
    r"divide|maximum|minimum|power)\(([^,()]+)(?:, ([^,()]+))?, "
    r"out=(\w+)\)$"
)
_BWD_COPYTO_RE = re.compile(r"^np\.copyto\((\w+), (\w+)\)$")
_BWD_FILL_RE = re.compile(r"^(\w+)\.fill\((-?[0-9][-+0-9.e]*)\)$")
_BWD_UNARY_OPS = frozenset(
    {"negative", "square", "sqrt", "reciprocal", "abs"}
)


class _PlanCompiler:
    """Lowers a recorded node list into a :class:`ReplayProgram`."""

    def __init__(self, nodes: list[Tensor], root: Tensor, jit: bool):
        self.nodes = nodes
        self.root = root
        self.jit = jit
        self.env: dict = {
            "np": np,
            "_sig": _stable_sigmoid,
            "_xp": exclusive_prod,
            "_xpi": exclusive_prod_into,
        }
        self.node_ids = {id(n) for n in nodes}
        self._names: dict[int, str] = {}
        self._keepalive: list = []
        self._guarded: set[int] = set()
        self.data_guard: list = []
        self.grad_guard: list = []
        self._leaf_grad: dict[int, str] = {}
        self._scratch: dict = {}
        self._persist: dict = {}
        # Interior gradient-buffer state for the backward emission:
        # ("unwritten",) — no contribution yet; ("uniform", u) — every
        # element is the Python float u, with no per-epoch line writing
        # the buffer; ("mat",) — per-epoch data.  The root seeds as
        # uniform 1.0 and constant chains (sum/add/neg/slice backward)
        # fold through as Python scalars instead of array traffic.
        self._gstate: dict[int, tuple] = {}
        self._init_fills: list[tuple[str, float]] = []
        self._slot = 0
        self._local = 0
        self.fwd_lines: list[str] = []
        self.bwd_lines: list[str] = []
        self._fwd_spans: list[tuple[Tensor, int, int]] = []
        self.failure: str | None = None

    # -- binding -----------------------------------------------------------

    def _bind(self, obj, prefix: str) -> str:
        key = id(obj)
        name = self._names.get(key)
        if name is None:
            name = f"{prefix}{len(self._names)}"
            self._names[key] = name
            self.env[name] = obj
            self._keepalive.append(obj)
        return name

    def dname(self, t: Tensor) -> str:
        name = self._bind(t.data, "v")
        if id(t) not in self.node_ids and id(t) not in self._guarded:
            self._guarded.add(id(t))
            self.data_guard.append((t, name))
        return name

    def gname(self, t: Tensor) -> str:
        if id(t) in self.node_ids:
            if t._grad_buf is None:
                t._grad_buf = np.zeros_like(t.data)
            return self._bind(t._grad_buf, "g")
        name = self._leaf_grad.get(id(t))
        if name is None:
            own = np.zeros_like(t.data)
            bound = t.grad if t.grad is not None else own
            name = f"lg{len(self._leaf_grad)}"
            self._leaf_grad[id(t)] = name
            self.env[name] = bound
            self._keepalive.append(own)
            self.grad_guard.append((t, name, own))
        return name

    def const(self, obj) -> str:
        return self._bind(obj, "c")

    def tmp(self, shape, dtype="f8") -> str:
        key = (tuple(shape), dtype, self._slot)
        self._slot += 1
        name = self._scratch.get(key)
        if name is None:
            name = self._bind(np.empty(shape, dtype=dtype), "s")
            self._scratch[key] = name
        return name

    def persist(self, node: Tensor, tag: str, shape, dtype="f8") -> str:
        key = (id(node), tag)
        name = self._persist.get(key)
        if name is None:
            name = self._bind(np.empty(shape, dtype=dtype), "p")
            self._persist[key] = name
        return name

    def local(self) -> str:
        self._local += 1
        return f"_t{self._local}"

    def scal(self, value, lines: list[str]) -> str:
        """A dynamic scalar: floats embed, 0-d boxes are read per call."""
        if isinstance(value, np.ndarray):
            name = self.const(value)
            var = self.local()
            lines.append(f"{var} = float({name})")
            return var
        return _lit(float(value))

    # -- gradient accumulation --------------------------------------------
    #
    # The walker zero-fills every interior gradient buffer and *adds*
    # each contribution.  The plan instead tracks buffer state: the
    # first contribution to an interior buffer *overwrites* it (a
    # successful claim), and purely constant gradients stay Python
    # floats until an op actually needs an array.  Both transforms are
    # value-equal to the walker; the only deviations are the sign of
    # exactly-zero gradients and dead subgraphs fed inf/nan data.

    def _state(self, t: Tensor) -> tuple:
        return self._gstate.get(id(t), ("unwritten",))

    def _claim(self, t: Tensor) -> bool:
        """True iff ``t``'s first contribution may overwrite its buffer."""
        if id(t) not in self.node_ids:
            return False  # leaves accumulate into caller-owned buffers
        if self._state(t)[0] == "unwritten":
            self._gstate[id(t)] = ("mat",)
            return True
        return False

    def gy_uniform(self, node: Tensor) -> float | None:
        """``node``'s incoming gradient as a Python float, or None."""
        state = self._state(node)
        if state[0] == "unwritten":
            return 0.0
        if state[0] == "uniform":
            return state[1]
        return None

    def gy_arr(self, node: Tensor) -> str:
        """``node``'s incoming gradient as an array, materializing it.

        A still-uniform buffer is filled *once at plan build* — every
        contribution to it has already been emitted (reverse order), so
        no per-epoch line writes it and the fill stays valid.
        """
        name = self.gname(node)
        state = self._state(node)
        if state[0] != "mat":
            u = 0.0 if state[0] == "unwritten" else state[1]
            self._init_fills.append((name, u))
            self._gstate[id(node)] = ("mat",)
        return name

    def _demote_uniform(self, lines: list[str], t: Tensor) -> None:
        """Materialize a uniform buffer before an add-form contribution."""
        state = self._state(t)
        if state[0] == "uniform":
            lines.append(f"{self.gname(t)}.fill({_lit(state[1])})")
            self._gstate[id(t)] = ("mat",)

    def push_uniform(
        self, lines: list[str], parent: Tensor, u: float
    ) -> None:
        """Contribute a uniform gradient of ``u`` to ``parent``."""
        if not parent.requires_grad or u == 0.0:
            return
        if id(parent) in self.node_ids:
            state = self._state(parent)
            if state[0] == "unwritten":
                self._gstate[id(parent)] = ("uniform", u)
                return
            if state[0] == "uniform":
                self._gstate[id(parent)] = ("uniform", state[1] + u)
                return
        g = self.gname(parent)
        lines.append(f"np.add({g}, {_lit(u)}, out={g})")

    def contrib_dest(
        self, lines: list[str], parent: Tensor, src_shape: tuple
    ):
        """Where an emitter's final op should write its contribution.

        Returns ``(dest, token)``: with ``token`` None the destination
        *is* the parent's (claimed) gradient buffer and the emitter is
        done; otherwise finish with :meth:`finish_contrib`.
        """
        if tuple(parent.data.shape) == tuple(src_shape) and self._claim(
            parent
        ):
            return self.gname(parent), None
        return self.tmp(src_shape), (parent, tuple(src_shape))

    def finish_contrib(self, lines: list[str], dest: str, token) -> None:
        if token is not None:
            parent, src_shape = token
            self.accum(lines, parent, dest, src_shape)

    def accum(
        self, lines: list[str], parent: Tensor, src: str, src_shape: tuple
    ) -> None:
        """buf (+)= _unbroadcast(src): the walker's accumulate, statically."""
        g = self.gname(parent)
        tshape = tuple(parent.data.shape)
        cur, curshape = src, tuple(src_shape)
        if curshape != tshape:
            extra = len(curshape) - len(tshape)
            if extra > 0:
                axes = tuple(range(extra))
                outshape = curshape[extra:]
                s = self.tmp(outshape)
                lines.append(f"np.add.reduce({cur}, axis={axes}, out={s})")
                cur, curshape = s, outshape
            axes = tuple(
                i for i, d in enumerate(tshape)
                if d == 1 and curshape[i] != 1
            )
            if axes:
                outshape = tuple(
                    1 if i in axes else d for i, d in enumerate(curshape)
                )
                s = self.tmp(outshape)
                lines.append(
                    f"np.add.reduce({cur}, axis={axes}, keepdims=True, "
                    f"out={s})"
                )
                cur, curshape = s, outshape
            if curshape != tshape:
                cur = f"{cur}.reshape({tshape!r})"
        if self._claim(parent):
            lines.append(f"np.copyto({g}, {cur})")
            return
        self._demote_uniform(lines, parent)
        lines.append(f"np.add({g}, {cur}, out={g})")

    def accum_neg(
        self, lines: list[str], parent: Tensor, src: str, src_shape: tuple
    ) -> None:
        """buf += (-src), using in-place subtract when shapes line up."""
        tshape = tuple(parent.data.shape)
        if tuple(src_shape) == tshape:
            g = self.gname(parent)
            if self._claim(parent):
                lines.append(f"np.negative({src}, out={g})")
                return
            self._demote_uniform(lines, parent)
            lines.append(f"np.subtract({g}, {src}, out={g})")
            return
        s = self.tmp(src_shape)
        lines.append(f"np.negative({src}, out={s})")
        self.accum(lines, parent, s, src_shape)

    # -- emission ----------------------------------------------------------

    def compile(self) -> ReplayProgram | None:
        for node in self.nodes:
            if node._op is None:
                self.failure = "node without op metadata"
                return None
        try:
            self._gstate[id(self.root)] = ("uniform", 1.0)
            for node in self.nodes:
                self._slot = 0
                self._emit_forward(node)
            for node in reversed(self.nodes):
                self._slot = 0
                self._emit_backward(node)
        except _Unsupported as exc:
            self.failure = str(exc)
            return None
        n_segments, n_jitted = self._finalize_segments()
        n_bwd_segments, n_bwd_jitted = self._finalize_bwd_segments()
        body_f = "\n".join(f"    {ln}" for ln in self.fwd_lines) or "    pass"
        body_b = "\n".join(f"    {ln}" for ln in self.bwd_lines) or "    pass"
        source = f"def _fwd():\n{body_f}\n\ndef _bwd():\n{body_b}\n"
        exec(compile(source, "<replay-plan>", "exec"), self.env)
        # Buffers still uniform at the end of emission are never written
        # per-epoch; fill them once, now.
        for name, u in self._init_fills:
            self.env[name].fill(u)
        return ReplayProgram(
            self.env, self.data_guard, self.grad_guard, source,
            n_segments, n_jitted, n_bwd_segments, n_bwd_jitted,
        )

    # Forward lines are tagged with their node so the segment pass can
    # group adjacent elementwise work; each entry of _fwd_spans is
    # (node, first_line_index, n_lines).
    def _emit_forward(self, node: Tensor) -> None:
        start = len(self.fwd_lines)
        self._forward_op(node)
        self._fwd_spans.append((node, start, len(self.fwd_lines) - start))

    def _finalize_segments(self) -> tuple[int, int]:
        """Count fused segments; JIT them when the numba backend is on."""
        spans = self._fwd_spans
        segments: list[list] = []
        run: list = []
        for node, start, count in spans:
            if self._segmentable(node):
                run.append((node, start, count))
            else:
                if run:
                    segments.append(run)
                run = []
        if run:
            segments.append(run)
        worthwhile = [
            seg for seg in segments
            if len(seg) >= 2
            or any(n._op[0] in _HEAVY_KINDS for n, _, _ in seg)
        ]
        n_jitted = 0
        if self.jit and worthwhile:
            from repro.autodiff import backend_numba

            replaced: list[tuple[int, int, str]] = []
            for seg in worthwhile:
                caller = backend_numba.jit_forward_segment(self, seg)
                if caller is None:
                    continue
                name = self._bind(caller, "j")
                first = seg[0][1]
                last = seg[-1][1] + seg[-1][2]
                replaced.append((first, last, f"{name}()"))
                n_jitted += 1
            for first, last, call in sorted(replaced, reverse=True):
                self.fwd_lines[first:last] = [call]
        return len(worthwhile), n_jitted

    def _segmentable(self, node: Tensor) -> bool:
        kind, params = node._op
        if kind not in _SEGMENT_KINDS:
            return False
        shape = node.data.shape
        if node.data.ndim == 0 or not node.data.flags.c_contiguous:
            return False
        for p in node._parents:
            if p.data.shape == shape:
                if not p.data.flags.c_contiguous:
                    return False
            elif p.data.ndim != 0:
                return False
        return True

    # -- backward segments -------------------------------------------------

    def _bwd_operand(self, token: str, size: int):
        """Resolve a backward-line operand, or None if unsupported.

        Returns the env array (same element count, C-contiguous, float
        or bool, never a rebindable leaf-grad buffer) or a Python float
        for literal tokens.
        """
        if token.startswith("lg"):
            # Leaf gradients rebind through env on every replay
            # (prepare_grads); a kernel would pin a stale buffer.
            return None
        arr = self.env.get(token)
        if isinstance(arr, np.ndarray):
            if (
                arr.ndim >= 1
                and arr.size == size
                and arr.flags.c_contiguous
                and arr.dtype in (np.float64, np.bool_)
            ):
                return arr
            return None
        try:
            return float(token)
        except ValueError:
            return None

    def _parse_bwd_line(self, line: str):
        """Lower one backward source line to ``(out, op, operands)``.

        Returns None when the line cannot join a JIT run.  ``out`` is
        the (float64) destination array, ``operands`` resolved arrays
        or floats.
        """
        m = _BWD_CALL_RE.match(line)
        if m is not None:
            op, a1, a2, out_name = m.groups()
            args = [a1] if a2 is None else [a1, a2]
            if (op in _BWD_UNARY_OPS) != (a2 is None):
                return None
        else:
            m = _BWD_COPYTO_RE.match(line)
            if m is not None:
                out_name, src = m.groups()
                op, args = "copyto", [src]
            else:
                m = _BWD_FILL_RE.match(line)
                if m is None:
                    return None
                out_name, lit = m.groups()
                op, args = "fill", [lit]
        out = self.env.get(out_name)
        if (
            not isinstance(out, np.ndarray)
            or out.ndim == 0
            or not out.flags.c_contiguous
            or out.dtype != np.float64
            or out_name.startswith("lg")
        ):
            return None
        operands = []
        for token in args:
            operand = self._bwd_operand(token.strip(), out.size)
            if operand is None:
                return None
            operands.append(operand)
        if op != "fill" and all(
            not isinstance(o, np.ndarray) for o in operands
        ):
            return None  # degenerate constant line; keep numpy
        return out, op, operands

    def _finalize_bwd_segments(self) -> tuple[int, int]:
        """Group adjacent JITable backward lines; JIT runs of >= 2.

        Mirrors :meth:`_finalize_segments` for the backward pass.  Runs
        are maximal stretches of parseable lines over buffers of one
        element count; short runs stay as their numpy lines.
        """
        runs: list[tuple[int, int, list]] = []
        start = None
        parsed: list = []
        for i, line in enumerate(self.bwd_lines):
            lowered = self._parse_bwd_line(line)
            if lowered is not None and (
                not parsed or lowered[0].size == parsed[0][0].size
            ):
                if start is None:
                    start = i
                parsed.append(lowered)
                continue
            if len(parsed) >= 2:
                runs.append((start, i, parsed))
            start, parsed = None, []
            if lowered is not None:
                start, parsed = i, [lowered]
        if len(parsed) >= 2:
            runs.append((start, len(self.bwd_lines), parsed))
        n_jitted = 0
        if self.jit and runs:
            from repro.autodiff import backend_numba

            replaced: list[tuple[int, int, str]] = []
            for first, last, lowered in runs:
                caller = backend_numba.jit_backward_run(lowered)
                if caller is None:
                    continue
                name = self._bind(caller, "jb")
                replaced.append((first, last, f"{name}()"))
                n_jitted += 1
            for first, last, call in sorted(replaced, reverse=True):
                self.bwd_lines[first:last] = [call]
        return len(runs), n_jitted

    # -- forward ops -------------------------------------------------------

    def _forward_op(self, node: Tensor) -> None:
        kind, params = node._op
        y = self.dname(node)
        ps = node._parents
        out = self.fwd_lines
        if kind == "add":
            out.append(f"np.add({self.dname(ps[0])}, {self.dname(ps[1])}, out={y})")
        elif kind == "sub":
            out.append(f"np.subtract({self.dname(ps[0])}, {self.dname(ps[1])}, out={y})")
        elif kind == "mul":
            out.append(f"np.multiply({self.dname(ps[0])}, {self.dname(ps[1])}, out={y})")
        elif kind == "div":
            out.append(f"np.divide({self.dname(ps[0])}, {self.dname(ps[1])}, out={y})")
        elif kind == "neg":
            out.append(f"np.negative({self.dname(ps[0])}, out={y})")
        elif kind == "abs":
            out.append(f"np.abs({self.dname(ps[0])}, out={y})")
        elif kind == "pow":
            e = params["exponent"]
            out.append(f"np.power({self.dname(ps[0])}, {_lit(e)}, out={y})")
        elif kind == "matmul":
            a, b = self.dname(ps[0]), self.dname(ps[1])
            if node.data.ndim:
                out.append(f"np.matmul({a}, {b}, out={y})")
            else:
                out.append(f"{y}[...] = {a} @ {b}")
        elif kind == "sum":
            # np.sum delegates to add.reduce; calling it directly skips
            # the dispatch wrapper and stays bitwise-identical.
            out.append(
                f"np.add.reduce({self.dname(ps[0])}, "
                f"axis={params['axis']!r}, "
                f"keepdims={params['keepdims']!r}, out={y})"
            )
        elif kind == "prod":
            out.append(
                f"np.multiply.reduce({self.dname(ps[0])}, "
                f"axis={params['axis']!r}, "
                f"keepdims={params['keepdims']!r}, out={y})"
            )
        elif kind == "reshape":
            if not params["is_view"]:
                shape = tuple(node.data.shape)
                out.append(
                    f"{y}[...] = {self.dname(ps[0])}.reshape({shape!r})"
                )
        elif kind == "T":
            if not params["is_view"]:
                out.append(f"{y}[...] = {self.dname(ps[0])}.T")
        elif kind == "swapaxes":
            pass  # always a view of the parent
        elif kind == "getitem":
            if not params["is_view"]:
                idx = self.const(params["index"])
                out.append(f"{y}[...] = {self.dname(ps[0])}[{idx}]")
        elif kind == "exp":
            out.append(f"np.exp({self.dname(ps[0])}, out={y})")
        elif kind == "log":
            out.append(f"np.log({self.dname(ps[0])}, out={y})")
        elif kind == "sqrt":
            out.append(f"np.sqrt({self.dname(ps[0])}, out={y})")
        elif kind == "tanh":
            out.append(f"np.tanh({self.dname(ps[0])}, out={y})")
        elif kind == "relu":
            out.append(f"np.maximum({self.dname(ps[0])}, 0.0, out={y})")
        elif kind == "sigmoid":
            out.append(f"{y}[...] = _sig({self.dname(ps[0])})")
        elif kind == "gaussian":
            a = self.dname(ps[0])
            s = self.scal(params["sigma"], out)
            t = self.tmp(node.data.shape)
            out.append(f"np.square({a}, out={t})")
            out.append(f"np.negative({t}, out={t})")
            out.append(f"np.divide({t}, 2.0 * {s} ** 2, out={t})")
            out.append(f"np.exp({t}, out={y})")
        elif kind == "pbqu":
            a = self.dname(ps[0])
            c1 = self.scal(params["c1"], out)
            c2 = self.scal(params["c2"], out)
            k = self.persist(node, "k", node.data.shape)
            den = self.persist(node, "den", node.data.shape)
            mask = self.tmp(node.data.shape, "?")
            inv = self.tmp(node.data.shape, "?")
            s = self.tmp(node.data.shape)
            # k = where(mask, c2**2, c1**2) built as mask*c2**2 +
            # (~mask)*c1**2 — bitwise-identical for positive constants
            # and ~7x faster than copyto(where=) on small arrays.
            out.append(f"np.greater_equal({a}, 0.0, out={mask})")
            out.append(f"np.multiply({mask}, {c2} ** 2, out={k})")
            out.append(f"np.logical_not({mask}, out={inv})")
            out.append(f"np.multiply({inv}, {c1} ** 2, out={s})")
            out.append(f"np.add({k}, {s}, out={k})")
            out.append(f"np.multiply({a}, {a}, out={den})")
            out.append(f"np.add({den}, {k}, out={den})")
            out.append(f"np.divide({k}, {den}, out={y})")
        elif kind in ("tnorm", "tconorm"):
            self._forward_tnorm(node, kind, params)
        elif kind == "where":
            a, b = self.dname(ps[0]), self.dname(ps[1])
            cond = self.const(params["cond"])
            if params["cond_fn"] is not None:
                fn = self.const(params["cond_fn"])
                out.append(f"{cond}[...] = {fn}()")
            out.append(f"np.copyto({y}, {b})")
            out.append(f"np.copyto({y}, {a}, where={cond})")
        elif kind == "maximum":
            out.append(f"np.maximum({self.dname(ps[0])}, {self.dname(ps[1])}, out={y})")
        elif kind == "minimum":
            out.append(f"np.minimum({self.dname(ps[0])}, {self.dname(ps[1])}, out={y})")
        elif kind == "concat":
            parts = ", ".join(self.dname(p) for p in ps)
            out.append(
                f"np.concatenate(({parts}), axis={params['axis']!r}, out={y})"
            )
        elif kind == "stack":
            parts = ", ".join(self.dname(p) for p in ps)
            out.append(f"np.stack(({parts}), axis={params['axis']!r}, out={y})")
        else:
            raise _Unsupported(f"unsupported op kind {kind!r}")

    def _forward_tnorm(self, node: Tensor, kind: str, params: dict) -> None:
        values, gates = node._parents
        v, g = self.dname(values), self.dname(gates)
        y = self.dname(node)
        inner = self.const(params["inner"])
        axis = params["axis"]
        out = self.fwd_lines
        if kind == "tnorm":
            if params["inner"].shape == values.data.shape:
                out.append(f"np.subtract({v}, 1.0, out={inner})")
                out.append(f"np.multiply({inner}, {g}, out={inner})")
                out.append(f"np.add({inner}, 1.0, out={inner})")
            else:
                out.append(f"{inner}[...] = 1.0 + {g} * ({v} - 1.0)")
            out.append(f"np.multiply.reduce({inner}, axis={axis!r}, out={y})")
        else:
            out.append(f"np.multiply({g}, {v}, out={inner})")
            out.append(f"np.subtract(1.0, {inner}, out={inner})")
            out.append(f"np.multiply.reduce({inner}, axis={axis!r}, out={y})")
            out.append(f"np.subtract(1.0, {y}, out={y})")

    # -- backward ops ------------------------------------------------------

    def _emit_backward(self, node: Tensor) -> None:
        kind, params = node._op
        yshape = tuple(node.data.shape)
        ps = node._parents
        out = self.bwd_lines
        u = self.gy_uniform(node)
        if u == 0.0:
            # Dead subgraph: the walker would propagate exact zeros.
            return
        if kind == "add":
            if u is not None:
                for p in ps:
                    self.push_uniform(out, p, u)
                return
            gy = self.gy_arr(node)
            for p in ps:
                if p.requires_grad:
                    self.accum(out, p, gy, yshape)
        elif kind == "sub":
            if u is not None:
                self.push_uniform(out, ps[0], u)
                self.push_uniform(out, ps[1], -u)
                return
            gy = self.gy_arr(node)
            if ps[0].requires_grad:
                self.accum(out, ps[0], gy, yshape)
            if ps[1].requires_grad:
                self.accum_neg(out, ps[1], gy, yshape)
        elif kind == "neg":
            if u is not None:
                self.push_uniform(out, ps[0], -u)
                return
            if ps[0].requires_grad:
                self.accum_neg(out, ps[0], self.gy_arr(node), yshape)
        elif kind == "mul":
            a, b = ps
            if a is b:
                # x*x: both sides push the identical product — compute
                # it once and add it twice (the walker's 0+c+c and this
                # c+c agree bitwise).
                if a.requires_grad:
                    dest, token = self.contrib_dest(out, a, yshape)
                    if u is not None:
                        out.append(
                            f"np.multiply({self.dname(a)}, {_lit(u)}, "
                            f"out={dest})"
                        )
                    else:
                        out.append(
                            f"np.multiply({self.gy_arr(node)}, "
                            f"{self.dname(a)}, out={dest})"
                        )
                    if token is None:
                        g = self.gname(a)
                        out.append(f"np.add({g}, {g}, out={g})")
                    else:
                        self.finish_contrib(out, dest, token)
                        self.accum(out, a, dest, yshape)
                return
            if a.requires_grad:
                dest, token = self.contrib_dest(out, a, yshape)
                if u is not None:
                    out.append(
                        f"np.multiply({self.dname(b)}, {_lit(u)}, out={dest})"
                    )
                else:
                    out.append(
                        f"np.multiply({self.gy_arr(node)}, "
                        f"{self.dname(b)}, out={dest})"
                    )
                self.finish_contrib(out, dest, token)
            if b.requires_grad:
                dest, token = self.contrib_dest(out, b, yshape)
                if u is not None:
                    out.append(
                        f"np.multiply({self.dname(a)}, {_lit(u)}, out={dest})"
                    )
                else:
                    out.append(
                        f"np.multiply({self.gy_arr(node)}, "
                        f"{self.dname(a)}, out={dest})"
                    )
                self.finish_contrib(out, dest, token)
        elif kind == "div":
            a, b = ps
            if a.requires_grad:
                dest, token = self.contrib_dest(out, a, yshape)
                if u is not None:
                    out.append(
                        f"np.divide({_lit(u)}, {self.dname(b)}, out={dest})"
                    )
                else:
                    out.append(
                        f"np.divide({self.gy_arr(node)}, "
                        f"{self.dname(b)}, out={dest})"
                    )
                self.finish_contrib(out, dest, token)
            if b.requires_grad:
                s = self.tmp(yshape)
                s2 = self.tmp(tuple(b.data.shape))
                if u is not None:
                    out.append(
                        f"np.multiply({self.dname(a)}, {_lit(-u)}, out={s})"
                    )
                else:
                    out.append(f"np.negative({self.gy_arr(node)}, out={s})")
                    out.append(f"np.multiply({s}, {self.dname(a)}, out={s})")
                out.append(f"np.square({self.dname(b)}, out={s2})")
                dest, token = self.contrib_dest(out, b, yshape)
                out.append(f"np.divide({s}, {s2}, out={dest})")
                self.finish_contrib(out, dest, token)
        elif kind == "pow":
            if ps[0].requires_grad:
                self._backward_pow(node, params["exponent"], u)
        elif kind == "matmul":
            self._backward_matmul(node)
        elif kind == "abs":
            if ps[0].requires_grad:
                a = self.dname(ps[0])
                s = self.tmp(yshape)
                out.append(f"np.sign({a}, out={s})")
                dest, token = self.contrib_dest(out, ps[0], yshape)
                if u is not None:
                    out.append(f"np.multiply({s}, {_lit(u)}, out={dest})")
                else:
                    out.append(
                        f"np.multiply({self.gy_arr(node)}, {s}, out={dest})"
                    )
                self.finish_contrib(out, dest, token)
        elif kind == "sum":
            if ps[0].requires_grad:
                if u is not None:
                    self.push_uniform(out, ps[0], u)
                else:
                    self._backward_sum(node, params)
        elif kind == "prod":
            if ps[0].requires_grad:
                self._backward_prod(node, params, u)
        elif kind == "reshape":
            if ps[0].requires_grad:
                if u is not None:
                    self.push_uniform(out, ps[0], u)
                    return
                pshape = tuple(ps[0].data.shape)
                gy = self.gy_arr(node)
                self.accum(out, ps[0], f"{gy}.reshape({pshape!r})", pshape)
        elif kind == "T":
            if ps[0].requires_grad:
                if u is not None:
                    self.push_uniform(out, ps[0], u)
                    return
                pshape = tuple(ps[0].data.shape)
                self.accum(out, ps[0], f"{self.gy_arr(node)}.T", pshape)
        elif kind == "swapaxes":
            if ps[0].requires_grad:
                if u is not None:
                    self.push_uniform(out, ps[0], u)
                    return
                a1, a2 = params["axis1"], params["axis2"]
                pshape = tuple(ps[0].data.shape)
                self.accum(
                    out, ps[0],
                    f"{self.gy_arr(node)}.swapaxes({a1}, {a2})", pshape,
                )
        elif kind == "getitem":
            if ps[0].requires_grad:
                pshape = tuple(ps[0].data.shape)
                full = self.persist(node, "scatter", pshape)
                idx = self.const(params["index"])
                src = _lit(u) if u is not None else self.gy_arr(node)
                out.append(f"{full}.fill(0.0)")
                out.append(f"np.add.at({full}, {idx}, {src})")
                self.accum(out, ps[0], full, pshape)
        elif kind == "exp":
            if ps[0].requires_grad:
                dest, token = self.contrib_dest(out, ps[0], yshape)
                if u is not None:
                    out.append(
                        f"np.multiply({self.dname(node)}, {_lit(u)}, "
                        f"out={dest})"
                    )
                else:
                    out.append(
                        f"np.multiply({self.gy_arr(node)}, "
                        f"{self.dname(node)}, out={dest})"
                    )
                self.finish_contrib(out, dest, token)
        elif kind == "log":
            if ps[0].requires_grad:
                dest, token = self.contrib_dest(out, ps[0], yshape)
                if u is not None:
                    out.append(
                        f"np.divide({_lit(u)}, {self.dname(ps[0])}, "
                        f"out={dest})"
                    )
                else:
                    out.append(
                        f"np.divide({self.gy_arr(node)}, "
                        f"{self.dname(ps[0])}, out={dest})"
                    )
                self.finish_contrib(out, dest, token)
        elif kind == "sqrt":
            if ps[0].requires_grad:
                s2 = self.tmp(yshape)
                if u is not None:
                    out.append(
                        f"np.maximum({self.dname(node)}, 1e-300, out={s2})"
                    )
                    dest, token = self.contrib_dest(out, ps[0], yshape)
                    out.append(
                        f"np.divide({_lit(u * 0.5)}, {s2}, out={dest})"
                    )
                else:
                    s = self.tmp(yshape)
                    out.append(f"np.multiply({self.gy_arr(node)}, 0.5, out={s})")
                    out.append(
                        f"np.maximum({self.dname(node)}, 1e-300, out={s2})"
                    )
                    dest, token = self.contrib_dest(out, ps[0], yshape)
                    out.append(f"np.divide({s}, {s2}, out={dest})")
                self.finish_contrib(out, dest, token)
        elif kind == "tanh":
            if ps[0].requires_grad:
                s = self.tmp(yshape)
                out.append(f"np.square({self.dname(node)}, out={s})")
                out.append(f"np.subtract(1.0, {s}, out={s})")
                dest, token = self.contrib_dest(out, ps[0], yshape)
                if u is not None:
                    out.append(f"np.multiply({s}, {_lit(u)}, out={dest})")
                else:
                    out.append(
                        f"np.multiply({self.gy_arr(node)}, {s}, out={dest})"
                    )
                self.finish_contrib(out, dest, token)
        elif kind == "relu":
            if ps[0].requires_grad:
                mask = self.tmp(yshape, "?")
                out.append(f"np.greater({self.dname(ps[0])}, 0, out={mask})")
                dest, token = self.contrib_dest(out, ps[0], yshape)
                if u is not None:
                    out.append(f"np.multiply({mask}, {_lit(u)}, out={dest})")
                else:
                    out.append(
                        f"np.multiply({self.gy_arr(node)}, {mask}, "
                        f"out={dest})"
                    )
                self.finish_contrib(out, dest, token)
        elif kind == "sigmoid":
            if ps[0].requires_grad:
                y = self.dname(node)
                s = self.tmp(yshape)
                s2 = self.tmp(yshape)
                if u is not None:
                    out.append(f"np.multiply({y}, {_lit(u)}, out={s})")
                else:
                    out.append(
                        f"np.multiply({self.gy_arr(node)}, {y}, out={s})"
                    )
                out.append(f"np.subtract(1.0, {y}, out={s2})")
                dest, token = self.contrib_dest(out, ps[0], yshape)
                out.append(f"np.multiply({s}, {s2}, out={dest})")
                self.finish_contrib(out, dest, token)
        elif kind == "gaussian":
            if ps[0].requires_grad:
                a, y = self.dname(ps[0]), self.dname(node)
                sg = self.scal(params["sigma"], out)
                s = self.tmp(yshape)
                s2 = self.tmp(yshape)
                if u is not None:
                    out.append(f"np.multiply({y}, {_lit(u)}, out={s})")
                else:
                    out.append(
                        f"np.multiply({self.gy_arr(node)}, {y}, out={s})"
                    )
                out.append(f"np.negative({a}, out={s2})")
                out.append(f"np.divide({s2}, {sg} ** 2, out={s2})")
                dest, token = self.contrib_dest(out, ps[0], yshape)
                out.append(f"np.multiply({s}, {s2}, out={dest})")
                self.finish_contrib(out, dest, token)
        elif kind == "pbqu":
            if ps[0].requires_grad:
                a = self.dname(ps[0])
                k = self.persist(node, "k", yshape)
                den = self.persist(node, "den", yshape)
                s = self.tmp(yshape)
                s2 = self.tmp(yshape)
                if u == -1.0:
                    # -((a * -2) * k) folds exactly to (a * 2) * k.
                    out.append(f"np.multiply({a}, 2.0, out={s})")
                    out.append(f"np.multiply({s}, {k}, out={s})")
                else:
                    out.append(f"np.multiply({a}, -2.0, out={s})")
                    out.append(f"np.multiply({s}, {k}, out={s})")
                    if u is None:
                        out.append(
                            f"np.multiply({self.gy_arr(node)}, {s}, out={s})"
                        )
                    elif u != 1.0:
                        out.append(f"np.multiply({s}, {_lit(u)}, out={s})")
                out.append(f"np.multiply({den}, {den}, out={s2})")
                dest, token = self.contrib_dest(out, ps[0], yshape)
                out.append(f"np.divide({s}, {s2}, out={dest})")
                self.finish_contrib(out, dest, token)
        elif kind in ("tnorm", "tconorm"):
            self._backward_tnorm(node, kind, params, u)
        elif kind == "where":
            self._backward_select(node, self.const(params["cond"]), u)
        elif kind == "maximum":
            mask = self.tmp(yshape, "?")
            out.append(
                f"np.greater_equal({self.dname(ps[0])}, "
                f"{self.dname(ps[1])}, out={mask})"
            )
            self._backward_select(node, mask, u)
        elif kind == "minimum":
            mask = self.tmp(yshape, "?")
            out.append(
                f"np.less_equal({self.dname(ps[0])}, "
                f"{self.dname(ps[1])}, out={mask})"
            )
            self._backward_select(node, mask, u)
        elif kind == "concat":
            axis = params["axis"]
            offset = 0
            gy = None if u is not None else self.gy_arr(node)
            for p, size in zip(ps, params["sizes"]):
                idx = tuple(
                    slice(offset, offset + size) if i == axis else slice(None)
                    for i in range(node.data.ndim)
                )
                offset += size
                if not p.requires_grad:
                    continue
                if u is not None:
                    self.push_uniform(out, p, u)
                else:
                    c = self.const(idx)
                    self.accum(out, p, f"{gy}[{c}]", tuple(p.data.shape))
        elif kind == "stack":
            axis = params["axis"] if params["axis"] >= 0 else (
                node.data.ndim + params["axis"]
            )
            gy = None if u is not None else self.gy_arr(node)
            for i, p in enumerate(ps):
                if not p.requires_grad:
                    continue
                if u is not None:
                    self.push_uniform(out, p, u)
                    continue
                idx = tuple(
                    i if d == axis else slice(None)
                    for d in range(node.data.ndim)
                )
                c = self.const(idx)
                self.accum(out, p, f"{gy}[{c}]", tuple(p.data.shape))
        else:  # pragma: no cover - forward pass already rejected it
            raise _Unsupported(f"unsupported op kind {kind!r}")

    def _pow_operand(self, a: str, e2, yshape: tuple) -> str | None:
        # numpy lowers small scalar exponents of ``**`` to dedicated
        # ufuncs; mirror that mapping so values stay bitwise-equal.
        out = self.bwd_lines
        if e2 == 1:
            return a
        if e2 == 0:
            return None
        s2 = self.tmp(yshape)
        if e2 == 2:
            out.append(f"np.square({a}, out={s2})")
        elif e2 == 0.5:
            out.append(f"np.sqrt({a}, out={s2})")
        elif e2 == -1:
            out.append(f"np.reciprocal({a}, out={s2})")
        else:
            out.append(f"np.power({a}, {_lit(e2)}, out={s2})")
        return s2

    def _backward_pow(self, node: Tensor, exponent, u: float | None) -> None:
        out = self.bwd_lines
        parent = node._parents[0]
        yshape = tuple(node.data.shape)
        a = self.dname(parent)
        e2 = exponent - 1
        if u is not None:
            # The walker's first op is gy * exponent; fold it in Python
            # (double multiply either way, bitwise-equal).
            m = float(u * exponent)
            operand = self._pow_operand(a, e2, yshape)
            if operand is None:
                self.push_uniform(out, parent, m)
                return
            dest, token = self.contrib_dest(out, parent, yshape)
            out.append(f"np.multiply({operand}, {_lit(m)}, out={dest})")
            self.finish_contrib(out, dest, token)
            return
        gy = self.gy_arr(node)
        s = self.tmp(yshape)
        out.append(f"np.multiply({gy}, {_lit(exponent)}, out={s})")
        operand = self._pow_operand(a, e2, yshape)
        if operand is None:
            self.accum(out, parent, s, yshape)
            return
        dest, token = self.contrib_dest(out, parent, yshape)
        out.append(f"np.multiply({s}, {operand}, out={dest})")
        self.finish_contrib(out, dest, token)

    def _backward_matmul(self, node: Tensor) -> None:
        # gemms need an array gradient; a still-uniform gy materializes.
        out = self.bwd_lines
        a, b = node._parents
        an, bn = self.dname(a), self.dname(b)
        ashape, bshape = tuple(a.data.shape), tuple(b.data.shape)
        yshape = tuple(node.data.shape)
        if not (a.requires_grad or b.requires_grad):
            return
        gy = self.gy_arr(node)
        if len(ashape) == 1 and len(bshape) == 1:
            if a.requires_grad:
                dest, token = self.contrib_dest(out, a, bshape)
                out.append(f"np.multiply({gy}, {bn}, out={dest})")
                self.finish_contrib(out, dest, token)
            if b.requires_grad:
                dest, token = self.contrib_dest(out, b, ashape)
                out.append(f"np.multiply({gy}, {an}, out={dest})")
                self.finish_contrib(out, dest, token)
        elif len(ashape) == 2 and len(bshape) == 1:
            if a.requires_grad:
                n, m = ashape
                dest, token = self.contrib_dest(out, a, ashape)
                out.append(
                    f"np.multiply({gy}.reshape({n}, 1), "
                    f"{bn}.reshape(1, {m}), out={dest})"
                )
                self.finish_contrib(out, dest, token)
            if b.requires_grad:
                dest, token = self.contrib_dest(out, b, bshape)
                out.append(f"np.matmul({an}.T, {gy}, out={dest})")
                self.finish_contrib(out, dest, token)
        elif len(ashape) == 1 and len(bshape) == 2:
            if a.requires_grad:
                dest, token = self.contrib_dest(out, a, ashape)
                out.append(f"np.matmul({bn}, {gy}, out={dest})")
                self.finish_contrib(out, dest, token)
            if b.requires_grad:
                n, m = bshape
                dest, token = self.contrib_dest(out, b, bshape)
                out.append(
                    f"np.multiply({an}.reshape({n}, 1), "
                    f"{gy}.reshape(1, {m}), out={dest})"
                )
                self.finish_contrib(out, dest, token)
        else:
            swapped_b = bshape[:-2] + (bshape[-1], bshape[-2])
            swapped_a = ashape[:-2] + (ashape[-1], ashape[-2])
            if a.requires_grad:
                cshape = _matmul_result_shape(yshape, swapped_b)
                dest, token = self.contrib_dest(out, a, cshape)
                out.append(
                    f"np.matmul({gy}, {bn}.swapaxes(-1, -2), out={dest})"
                )
                self.finish_contrib(out, dest, token)
            if b.requires_grad:
                cshape = _matmul_result_shape(swapped_a, yshape)
                dest, token = self.contrib_dest(out, b, cshape)
                out.append(
                    f"np.matmul({an}.swapaxes(-1, -2), {gy}, out={dest})"
                )
                self.finish_contrib(out, dest, token)

    def _backward_sum(self, node: Tensor, params: dict) -> None:
        parent = node._parents[0]
        gy = self.gy_arr(node)
        g = self.gname(parent)
        axis, keepdims = params["axis"], params["keepdims"]
        if axis is None or keepdims:
            src = gy
        else:
            pshape = parent.data.shape
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(ax if ax >= 0 else len(pshape) + ax for ax in axes)
            expanded = tuple(
                1 if i in axes else d for i, d in enumerate(pshape)
            )
            src = f"{gy}.reshape({expanded!r})"
        if self._claim(parent):
            self.bwd_lines.append(f"np.copyto({g}, {src})")
            return
        self._demote_uniform(self.bwd_lines, parent)
        self.bwd_lines.append(f"np.add({g}, {src}, out={g})")

    def _backward_prod(
        self, node: Tensor, params: dict, u: float | None
    ) -> None:
        # Mirrors the closure verbatim, zero-robust branch included; the
        # branch is data-dependent so this op allocates like the walker.
        parent = node._parents[0]
        a = self.dname(parent)
        axis, keepdims = params["axis"], params["keepdims"]
        pshape = tuple(parent.data.shape)
        if u is not None:
            gexpr = _lit(u)
        elif keepdims:
            gexpr = self.gy_arr(node)
        else:
            gy = self.gy_arr(node)
            ax = axis if axis >= 0 else len(pshape) + axis
            expanded = tuple(
                1 if i == ax else d for i, d in enumerate(pshape)
            )
            gexpr = f"{gy}.reshape({expanded!r})"
        contrib = self.tmp(pshape)
        out = self.bwd_lines
        out.append(f"if not ({a} == 0.0).any():")
        out.append(
            f"    {contrib}[...] = {gexpr} * "
            f"{a}.prod(axis={axis!r}, keepdims=True) / {a}"
        )
        out.append("else:")
        out.append(f"    {contrib}[...] = {gexpr} * _xp({a}, {axis!r})")
        self.accum(out, parent, contrib, pshape)

    def _backward_tnorm(
        self, node: Tensor, kind: str, params: dict, u: float | None
    ) -> None:
        values, gates = node._parents
        axis = params["axis"]
        inner = params["inner"]
        inner_name = self.const(inner)
        ishape = tuple(inner.shape)
        out = self.bwd_lines
        ax = axis if axis >= 0 else len(ishape) + axis
        expanded = tuple(
            1 if i == ax else d for i, d in enumerate(ishape)
        )
        left = self.persist(node, "xl", ishape)
        right = self.persist(node, "xr", ishape)
        ep = self.persist(node, "ep", ishape)
        out.append(f"_xpi({inner_name}, {ax}, {left}, {right}, {ep})")
        if u is None:
            out.append(
                f"np.multiply({self.gy_arr(node)}.reshape({expanded!r}), "
                f"{ep}, out={ep})"
            )
        elif u != 1.0:
            out.append(f"np.multiply({ep}, {_lit(u)}, out={ep})")
        v, g = self.dname(values), self.dname(gates)
        if values.requires_grad:
            dest, token = self.contrib_dest(out, values, ishape)
            out.append(f"np.multiply({ep}, {g}, out={dest})")
            self.finish_contrib(out, dest, token)
        if gates.requires_grad:
            if kind == "tnorm":
                s = self.tmp(ishape)
                out.append(f"np.subtract({v}, 1.0, out={s})")
                dest, token = self.contrib_dest(out, gates, ishape)
                out.append(f"np.multiply({ep}, {s}, out={dest})")
            else:
                dest, token = self.contrib_dest(out, gates, ishape)
                out.append(f"np.multiply({ep}, {v}, out={dest})")
            self.finish_contrib(out, dest, token)

    def _backward_select(
        self, node: Tensor, mask: str, u: float | None
    ) -> None:
        """where/maximum/minimum: route the gradient through a mask.

        The walker's ``np.where(mask, g, 0)`` select is emitted as a
        boolean multiply — ``copyto(where=)`` is pathologically slow on
        small arrays.  Value-equal for finite gradients (the sign of
        masked-out zeros can differ).
        """
        a, b = node._parents
        yshape = tuple(node.data.shape)
        out = self.bwd_lines
        if a.requires_grad:
            dest, token = self.contrib_dest(out, a, yshape)
            if u is not None:
                out.append(f"np.multiply({mask}, {_lit(u)}, out={dest})")
            else:
                out.append(
                    f"np.multiply({self.gy_arr(node)}, {mask}, out={dest})"
                )
            self.finish_contrib(out, dest, token)
        if b.requires_grad:
            inv = self.tmp(yshape, "?")
            out.append(f"np.logical_not({mask}, out={inv})")
            dest, token = self.contrib_dest(out, b, yshape)
            if u is not None:
                out.append(f"np.multiply({inv}, {_lit(u)}, out={dest})")
            else:
                out.append(
                    f"np.multiply({self.gy_arr(node)}, {inv}, out={dest})"
                )
            self.finish_contrib(out, dest, token)


class _Unsupported(Exception):
    """Internal: an op the plan compiler cannot lower."""


def compile_plan(
    nodes: list[Tensor], root: Tensor, jit: bool = False
) -> ReplayProgram | None:
    """Compile a recorded tape; None (never an error) when unsupported."""
    compile_plan.last_failure = None  # type: ignore[attr-defined]
    if not nodes:
        compile_plan.last_failure = "empty tape"  # type: ignore[attr-defined]
        return None
    compiler = _PlanCompiler(nodes, root, jit)
    program = compiler.compile()
    if program is None:
        compile_plan.last_failure = compiler.failure  # type: ignore[attr-defined]
    return program


compile_plan.last_failure = None  # type: ignore[attr-defined]


# -- backend registry -------------------------------------------------------


class Backend:
    """Strategy for replaying a recorded tape."""

    name = "backend"

    def prepare(self, nodes: list[Tensor], root: Tensor) -> ReplayProgram | None:
        """Compile a replay program, or None to use the closure walker."""
        raise NotImplementedError


class NumpyBackend(Backend):
    """The reference closure walker (the bitwise oracle)."""

    name = "numpy"

    def prepare(self, nodes, root):
        return None


class FusedBackend(Backend):
    """Fused straight-line numpy plan (bitwise-equal to the walker)."""

    name = "fused"

    def prepare(self, nodes, root):
        return compile_plan(nodes, root, jit=False)


class NumbaBackend(Backend):
    """Fused plan with numba-JITted elementwise segments.

    Degrades to the plain fused plan when numba is missing or any
    segment fails to compile — never to an error.
    """

    name = "numba"

    def prepare(self, nodes, root):
        from repro.autodiff import backend_numba

        return compile_plan(
            nodes, root, jit=backend_numba.numba_available()
        )


_BACKENDS = {
    "numpy": NumpyBackend,
    "fused": FusedBackend,
    "numba": NumbaBackend,
}


class UnknownBackendError(AutodiffError):
    """Raised for a backend name outside the registry."""


def available_backends() -> tuple[str, ...]:
    """Selectable backend names (``auto`` resolves at tape creation)."""
    return ("auto",) + tuple(sorted(_BACKENDS))


def resolve_backend_name(spec: str | Backend | None) -> str:
    """The concrete backend ``spec`` selects (resolving ``auto``)."""
    if isinstance(spec, Backend):
        return spec.name
    if spec is None:
        spec = "auto"
    if spec == "auto":
        from repro.autodiff import backend_numba

        return "numba" if backend_numba.numba_available() else "fused"
    if spec not in _BACKENDS:
        raise UnknownBackendError(
            f"unknown backend {spec!r}; expected one of "
            f"{', '.join(available_backends())}"
        )
    return spec


def get_backend(spec: str | Backend | None = None) -> Backend:
    """Instantiate the backend ``spec`` names (default ``auto``)."""
    if isinstance(spec, Backend):
        return spec
    return _BACKENDS[resolve_backend_name(spec)]()
