"""Reverse-mode automatic differentiation on numpy arrays.

A minimal but correct substitute for the slice of PyTorch the paper
uses: tensors with gradients, broadcasting elementwise ops, matrix
multiplication, reductions, piecewise functions via ``where``, and the
Adam optimizer with multiplicative learning-rate decay.  Gradients are
verified against central finite differences in the test suite.
"""

from repro.autodiff.tensor import Tensor, no_grad
from repro.autodiff.tape import Tape, TapePool
from repro.autodiff.backend import (
    Backend,
    available_backends,
    get_backend,
    resolve_backend_name,
)
from repro.autodiff.backend_numba import numba_available, numba_version
from repro.autodiff.functional import (
    concat,
    exp,
    fused_gated_tconorm,
    fused_gated_tnorm,
    gaussian,
    log,
    maximum,
    minimum,
    pbqu,
    relu,
    sigmoid,
    sqrt,
    tanh,
    where,
)
from repro.autodiff.optim import SGD, Adam, clip_grad_norm, clip_grad_norm_groups
from repro.autodiff.init import normal_init, uniform_init

__all__ = [
    "Tensor",
    "Tape",
    "TapePool",
    "Backend",
    "available_backends",
    "get_backend",
    "resolve_backend_name",
    "numba_available",
    "numba_version",
    "no_grad",
    "pbqu",
    "fused_gated_tnorm",
    "fused_gated_tconorm",
    "clip_grad_norm_groups",
    "concat",
    "exp",
    "log",
    "sqrt",
    "sigmoid",
    "tanh",
    "relu",
    "gaussian",
    "where",
    "maximum",
    "minimum",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "normal_init",
    "uniform_init",
]
