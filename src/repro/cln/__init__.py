"""Gated Continuous Logic Networks — the paper's core contribution.

Exports the G-CLN model (Fig. 9 architecture), the activation functions
(Gaussian equality relaxation, PBQU inequality relaxation, the original
CLN sigmoid relaxation), gated t-norms/t-conorms (§4.1), the training
loop with gate regularization (§5.2.1), and formula extraction
(Algorithm 1).
"""

from repro.cln.tnorms import (
    product_tnorm,
    product_tconorm,
    gated_tnorm,
    gated_tconorm,
    godel_tnorm,
    godel_tconorm,
)
from repro.cln.activations import (
    gaussian_equality,
    pbqu_ge,
    pbqu_le,
    sigmoid_ge,
    sigmoid_gt,
    pbqu_ge_numpy,
    sigmoid_ge_numpy,
    gaussian_equality_numpy,
)
from repro.cln.model import GCLN, GCLNConfig, GCLNStack, AtomicKind
from repro.cln.train import (
    RestartOutcome,
    TrainResult,
    train_gcln,
    train_gcln_restarts,
    train_units_independently,
)
from repro.cln.extract import extract_formula, extract_equalities, extract_inequalities

__all__ = [
    "product_tnorm",
    "product_tconorm",
    "gated_tnorm",
    "gated_tconorm",
    "godel_tnorm",
    "godel_tconorm",
    "gaussian_equality",
    "pbqu_ge",
    "pbqu_le",
    "sigmoid_ge",
    "sigmoid_gt",
    "pbqu_ge_numpy",
    "sigmoid_ge_numpy",
    "gaussian_equality_numpy",
    "GCLN",
    "GCLNConfig",
    "GCLNStack",
    "AtomicKind",
    "TrainResult",
    "RestartOutcome",
    "train_gcln",
    "train_gcln_restarts",
    "train_units_independently",
    "extract_formula",
    "extract_equalities",
    "extract_inequalities",
]
