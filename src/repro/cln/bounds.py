"""Vectorized PBQU bound fitting (§5.2.2 of the paper).

The paper structures inequality dropout to consider *all combinations
of up to three terms* (constant included) of degree at most two.  Each
combination is a tiny atomic unit; since there can be hundreds, we
train them as one weight matrix with row-wise masks and row-wise L2
normalization — a single computational graph per epoch instead of one
per unit.

After training, each row is rounded and validated like any other
atomic unit; bounds that are loose (PBQU activation below threshold) or
never touch the data (violating the 'desired inequality' condition,
Eq. 4) are discarded.
"""

from __future__ import annotations

from itertools import combinations
from typing import Mapping, Sequence

import numpy as np

from repro.errors import TrainingError
from repro.autodiff.optim import Adam, clip_grad_norm
from repro.autodiff.tape import Tape
from repro.autodiff.tensor import Tensor
from repro.cln.activations import pbqu_ge
from repro.cln.extract import (
    _round_and_validate,
    make_exact_validator,
    make_touch_checker,
)
from repro.cln.model import AtomicKind, GCLNConfig
from repro.sampling.termgen import TermBasis
from repro.smt.formula import Atom


def enumerate_bound_masks(
    term_variable_sets: Sequence[frozenset[str]],
    term_degrees: Sequence[int],
    config: GCLNConfig,
    max_terms: int = 3,
    max_units: int = 600,
) -> np.ndarray:
    """Masks for every small term combination.

    Each mask keeps the constant term plus 1..(max_terms-1) non-constant
    monomials of degree <= ``config.ineq_degree`` drawn from a common
    variable subset of size <= ``config.max_ineq_vars``.

    Returns:
        Boolean matrix of shape (n_units, n_terms).
    """
    n_terms = len(term_variable_sets)
    constant_idx = [j for j in range(n_terms) if not term_variable_sets[j]]
    if not constant_idx:
        raise TrainingError("term basis must include the constant term")
    const = constant_idx[0]
    eligible = [
        j
        for j in range(n_terms)
        if term_variable_sets[j]
        and term_degrees[j] <= config.ineq_degree
        and len(term_variable_sets[j]) <= config.max_ineq_vars
    ]
    masks: list[np.ndarray] = []
    seen: set[frozenset[int]] = set()
    for size in range(1, max_terms):
        for combo in combinations(eligible, size):
            all_vars: set[str] = set()
            for j in combo:
                all_vars |= term_variable_sets[j]
            if len(all_vars) > config.max_ineq_vars:
                continue
            key = frozenset(combo)
            if key in seen:
                continue
            seen.add(key)
            mask = np.zeros(n_terms, dtype=bool)
            mask[const] = True
            for j in combo:
                mask[j] = True
            masks.append(mask)
            if len(masks) >= max_units:
                return np.stack(masks)
    if not masks:
        raise TrainingError("no eligible inequality term combinations")
    return np.stack(masks)


class BoundBank:
    """A batch of independent PBQU bound units trained jointly."""

    def __init__(
        self,
        masks: np.ndarray,
        config: GCLNConfig,
        rng: np.random.Generator,
    ):
        if masks.ndim != 2 or masks.dtype != bool:
            raise TrainingError("masks must be a 2-D boolean matrix")
        self.masks = masks
        self.config = config
        init = rng.normal(0.0, 1.0, size=masks.shape)
        init[~masks] = 0.0
        self.weight = Tensor(init, requires_grad=True)
        self._mask_tensor = Tensor(masks.astype(np.float64))

    def effective_weights(self) -> Tensor:
        w = self.weight * self._mask_tensor
        norms = ((w * w).sum(axis=1, keepdims=True) + 1e-12) ** 0.5
        return w / norms

    def forward(self, X: Tensor, relax_scale: float = 1.0, c1=None) -> Tensor:
        """Activations of shape (samples, n_units).

        ``c1`` (float or 0-d numpy box) overrides the config constant
        scaled by ``relax_scale`` — the taped trainer passes a box it
        anneals in place.
        """
        residuals = X @ self.effective_weights().T
        if c1 is None:
            c1 = self.config.c1 * relax_scale
        return pbqu_ge(residuals, c1, self.config.c2)

    def weights_numpy(self) -> np.ndarray:
        w = self.weight.data * self.masks
        norms = np.sqrt((w**2).sum(axis=1, keepdims=True)) + 1e-12
        return w / norms


def train_bound_bank(
    bank: BoundBank,
    data: np.ndarray,
    max_epochs: int | None = None,
    early_stop_patience: int = 150,
    loss_tolerance: float = 1e-4,
) -> float:
    """Fit every bound unit; returns the final loss."""
    config = bank.config
    epochs = max_epochs if max_epochs is not None else config.max_epochs
    X = Tensor(data)
    optimizer = Adam([bank.weight], lr=config.learning_rate, decay=config.lr_decay)
    anneal_init = max(config.anneal_init, 1.0)
    anneal_epochs = max(1, epochs // 2)
    anneal_decay = anneal_init ** (-1.0 / anneal_epochs)

    c1_box = np.array(config.c1 * anneal_init)
    tape = Tape()
    loss_node: list[Tensor] = []

    def build() -> Tensor:
        loss_node.clear()
        loss = (1.0 - bank.forward(X, c1=c1_box)).sum()
        loss_node.append(loss)
        return loss

    relax_scale = anneal_init
    best = float("inf")
    stale = 0
    value = float("inf")
    for _epoch in range(1, epochs + 1):
        c1_box[...] = config.c1 * relax_scale
        optimizer.zero_grad()
        tape.step(build)
        clip_grad_norm([bank.weight], 1000.0)
        optimizer.step()
        relax_scale = max(relax_scale * anneal_decay, 1.0)
        value = float(loss_node[0].data)
        if not np.isfinite(value):
            raise TrainingError(f"bound-bank loss diverged to {value}")
        if relax_scale > 1.0:
            best = min(best, value)
            continue
        if value < best - loss_tolerance:
            best = value
            stale = 0
        else:
            stale += 1
        if stale >= early_stop_patience:
            break
    return value


def extract_bound_atoms(
    bank: BoundBank,
    basis: TermBasis,
    states: Sequence[Mapping[str, object]],
    data: np.ndarray,
) -> list[Atom]:
    """Validated, tight inequality atoms from every bank row."""
    validator = make_exact_validator(states, basis)
    touch = make_touch_checker(states, basis)
    weights = bank.weights_numpy()
    with_nograd = bank.forward(Tensor(data)).data
    mean_act = with_nograd.mean(axis=0)
    atoms: list[Atom] = []
    seen: set[str] = set()
    threshold = bank.config.ineq_activation_threshold
    for row in range(weights.shape[0]):
        if mean_act[row] < threshold:
            continue
        mask_idx = [int(i) for i in np.flatnonzero(bank.masks[row])]
        atom = _round_and_validate(
            weights[row, mask_idx],
            mask_idx,
            basis,
            validator,
            bank.config.max_denominators,
            AtomicKind.GE,
            touch,
        )
        if atom is None:
            continue
        key = str(atom.poly)
        if key not in seen:
            seen.add(key)
            atoms.append(atom)
    return atoms
