"""G-CLN training loops (§5.2.1, §6 system configuration).

Full-batch Adam with multiplicative learning-rate decay, adaptive gate
regularization schedules, gate projection back into [0, 1] after every
step, and early stopping when the loss plateaus with saturated gates.

Two execution strategies share the same math:

* **Vectorized** (default, ``GCLNConfig.vectorized``): one batched
  forward through the stacked ``(units, terms)`` weight matrix with
  fused kernels, recorded once on a :class:`~repro.autodiff.tape.Tape`
  and replayed with preallocated gradient buffers — an epoch is a
  handful of large numpy calls.  Schedule values (λ1, λ2, annealed
  σ/c1) live in leaf tensors / 0-d boxes updated in place.
* **Eager reference** (``vectorized=False``, or models the stacked
  forward cannot express): the original per-unit graph-building loops,
  kept as the ground truth for equivalence tests and as the baseline
  that ``benchmarks/bench_perf.py`` measures speedups against.

:func:`train_gcln_restarts` trains R independent restarts
simultaneously in one graph.  Restart gradients are decoupled (the
total loss is a sum of per-restart terms), clipping is per restart
group, each restart keeps its own Adam instance and λ/σ schedules, and
a restart that hits its early-stop condition is snapshotted at that
epoch and restored at the end — so every restart finishes with exactly
the parameters sequential training would have produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import TrainingError
from repro.autodiff.optim import (
    Adam,
    StackedAdam,
    clip_grad_norm,
    clip_grad_norm_stacked,
)
from repro.autodiff.backend import resolve_backend_name
from repro.autodiff.tape import Tape, TapePool
from repro.autodiff.tensor import Tensor, no_grad
from repro.cln.activations import gaussian_equality, pbqu_ge
from repro.cln.loss import (
    GateSchedule,
    build_gcln_loss_batched,
    build_gcln_loss_stacked,
    gcln_loss,
)
from repro.cln.model import AtomicKind, GCLN, GCLNStack


@dataclass
class TrainResult:
    """Outcome of one training run."""

    final_loss: float
    epochs: int
    converged: bool
    loss_history: list[float] = field(default_factory=list)


@dataclass
class RestartOutcome:
    """One restart's outcome from :func:`train_gcln_restarts`.

    ``error`` carries the message of what would have been a
    :class:`TrainingError` in sequential training (e.g. divergence);
    the restart's parameters are then unusable and ``result`` is None.
    """

    result: TrainResult | None
    error: str | None = None



#: ``tape.stats()`` snapshot from the most recent taped training loop in
#: this process — observability for ``python -m repro profile``.  Not
#: part of the training contract; may be ``None`` before any training.
LAST_TAPE_STATS: dict | None = None


def _publish_tape_stats(tape: Tape) -> None:
    global LAST_TAPE_STATS
    LAST_TAPE_STATS = tape.stats()


def _validate_data(data: np.ndarray) -> None:
    if data.ndim != 2 or data.shape[0] == 0:
        raise TrainingError(
            f"training data must be a non-empty 2-D matrix, got {data.shape}"
        )


def _anneal(config, epochs: int) -> tuple[float, float]:
    """(initial relax scale, per-epoch geometric decay factor)."""
    anneal_init = max(config.anneal_init, 1.0)
    anneal_epochs = max(1, epochs // 2)
    return anneal_init, anneal_init ** (-1.0 / anneal_epochs)


def _data_convergence(model: GCLN, X: Tensor, n_samples: int) -> tuple[float, bool]:
    with no_grad():
        data_term = float((1.0 - model.forward(X).data).sum())
    return data_term, (data_term / n_samples) < 0.1


class _RestartState:
    """Per-restart bookkeeping for the batched multi-restart loop."""

    __slots__ = (
        "model",
        "optimizer",
        "lambda1",
        "lambda2",
        "lam1_t",
        "lam2_t",
        "sigma_box",
        "c1_box",
        "relax_scale",
        "anneal_decay",
        "best_loss",
        "stale",
        "epoch",
        "stopped",
        "error",
        "history",
    )

    def __init__(self, model: GCLN, epochs: int, make_optimizer: bool = True):
        config = model.config
        self.model = model
        # The stacked cross-problem loop optimizes the model-stack
        # super-tensors with one StackedAdam instead of per-model
        # optimizers; it passes make_optimizer=False.
        self.optimizer = (
            Adam(
                model.parameters_batched(),
                lr=config.learning_rate,
                decay=config.lr_decay,
            )
            if make_optimizer
            else None
        )
        self.lambda1 = GateSchedule(*config.lambda1_schedule)
        self.lambda2 = GateSchedule(*config.lambda2_schedule)
        self.lam1_t = Tensor(0.0)
        self.lam2_t = Tensor(0.0)
        anneal_init, self.anneal_decay = _anneal(config, epochs)
        self.relax_scale = anneal_init
        self.sigma_box = np.array(config.sigma * anneal_init)
        self.c1_box = np.array(config.c1 * anneal_init)
        self.best_loss = float("inf")
        self.stale = 0
        self.epoch = 0
        self.stopped = False
        self.error: str | None = None
        self.history: list[float] | None = None

    def begin_epoch(self) -> None:
        config = self.model.config
        self.lam1_t.data[...] = self.lambda1.step()
        self.lam2_t.data[...] = self.lambda2.step()
        self.sigma_box[...] = config.sigma * self.relax_scale
        self.c1_box[...] = config.c1 * self.relax_scale


# -- warm start: tape/plan reuse across training calls -----------------------
#
# Same-shape training calls build structurally identical graphs: the
# only differences are leaf *values* (weights, masks, data, schedule
# scalars).  A :class:`TapePool` therefore stores the recorded tape of
# a finished call together with its leaf objects; a later call with a
# matching structural key copies its fresh values into the pooled
# storage, rebinds the caller's models onto it (the same row-view
# machinery :class:`GCLNStack` uses), and replays from epoch 1 —
# skipping graph recording and plan compilation entirely.  Replays are
# bitwise-identical to the eager recording step, so a pooled run
# produces exactly the parameters a fresh run would.
#
# Adoption reuses (and overwrites) the pooled leaf storage, so a
# deposited entry must no longer be trained through its original
# owners — the inference engine satisfies this by training, extracting,
# and discarding models within one attempt batch before the next
# training call can hit the pool.


@dataclass
class _PooledRestartRun:
    """Recorded state of one ``_run_restart_epochs`` graph."""

    tape: Tape
    models: list[GCLN]
    xs: list[Tensor]
    loss_nodes: list[Tensor]
    lam1: list[Tensor]
    lam2: list[Tensor]
    sigma: list[np.ndarray]
    c1: list[np.ndarray]


@dataclass
class _PooledStackedRun:
    """Recorded state of one ``_run_stacked_epochs`` graph."""

    tape: Tape
    stack: GCLNStack
    X: Tensor
    loss_node: list[Tensor]
    lam1_vec: Tensor
    lam2_vec: Tensor
    sigma_box: np.ndarray
    c1_box: np.ndarray


@dataclass
class _PooledUnitsRun:
    """Recorded state of one ``_train_units_batched`` graph."""

    tape: Tape
    model: GCLN
    X: Tensor
    loss_node: list[Tensor]
    sigma_box: np.ndarray
    c1_box: np.ndarray


def _xs_pattern(xs: Sequence[Tensor]) -> tuple[int, ...]:
    """Aliasing pattern of a data-leaf list (index of first occurrence).

    A shared-leaf recording (``[x, x, x]`` → ``(0, 0, 0)``) reads one
    tensor from every subgraph and cannot be adopted by a call with
    per-state leaves (``(0, 1, 2)``) of the same shapes, and vice
    versa — the pattern is part of the pool key.
    """
    firsts: dict[int, int] = {}
    return tuple(firsts.setdefault(id(x), i) for i, x in enumerate(xs))


def _copy_model_into(dst: GCLN, src: GCLN) -> None:
    """Copy ``src``'s parameter/mask values into ``dst``'s storage."""
    dst.unit_weights.data[...] = src.unit_weights.data
    dst.unit_masks[...] = src.unit_masks
    dst._unit_mask_tensor.data[...] = src._unit_mask_tensor.data
    dst.and_gates.data[...] = src.and_gates.data
    dst.or_gates_stacked.data[...] = src.or_gates_stacked.data


def _share_storage(fresh: GCLN, pooled: GCLN) -> None:
    """Rebind the caller's model onto the pooled (tape-leaf) storage."""
    fresh.rebind_storage(
        pooled.unit_weights.data,
        pooled.unit_masks,
        pooled._unit_mask_tensor.data,
        pooled.and_gates.data,
        pooled.or_gates_stacked.data,
    )


def _restart_pool_key(states: list[_RestartState], xs: list[Tensor]) -> tuple:
    return (
        "restarts",
        resolve_backend_name(states[0].model.config.backend),
        tuple(s.model.stack_signature() for s in states),
        tuple(x.data.shape for x in xs),
        _xs_pattern(xs),
    )


def _adopt_restart_run(
    entry: _PooledRestartRun, states: list[_RestartState], xs: list[Tensor]
) -> None:
    """Bind fresh states onto a pooled recording (fresh values copied in)."""
    seen: set[int] = set()
    for pooled_x, fresh_x in zip(entry.xs, xs):
        if id(pooled_x) in seen:
            continue
        seen.add(id(pooled_x))
        pooled_x.data[...] = fresh_x.data
    for state, pooled in zip(states, entry.models):
        _copy_model_into(pooled, state.model)
        _share_storage(state.model, pooled)
        config = state.model.config
        params = pooled.parameters_batched()
        for p in params:
            p.grad = None
        # A fresh Adam over the pooled tensors is bitwise-identical to
        # the cold-start optimizer: same zero moments, same lr schedule.
        state.optimizer = Adam(
            params, lr=config.learning_rate, decay=config.lr_decay
        )
    for i, state in enumerate(states):
        state.lam1_t = entry.lam1[i]
        state.lam2_t = entry.lam2[i]
        state.sigma_box = entry.sigma[i]
        state.c1_box = entry.c1[i]
    entry.tape.pool_hits += 1


# -- warm start: best-member seeding -----------------------------------------


def _groups_by_identity(matrices) -> list[list[int]]:
    """Sibling groups = members trained on the *same* data object."""
    groups: dict[int, list[int]] = {}
    for i, m in enumerate(matrices):
        groups.setdefault(id(m), []).append(i)
    return [g for g in groups.values() if len(g) > 1]


def _seed_from_best(
    states: list[_RestartState],
    groups: list[list[int]],
    stacked_optimizer: StackedAdam | None = None,
) -> None:
    """Exploit step: re-seed worse members from their group's best.

    Copies the best-loss member's weight and gate *values* into every
    strictly worse active member (dropout masks are kept — each member
    retains its own support, so the population stays diverse) and
    restarts the seeded members' Adam moments.  Only meaningful after
    annealing, when losses are comparable.
    """
    for group in groups:
        active = [
            i
            for i in group
            if not states[i].stopped and states[i].relax_scale == 1.0
        ]
        if len(active) < 2:
            continue
        best = min(active, key=lambda i: states[i].best_loss)
        if not np.isfinite(states[best].best_loss):
            continue
        src = states[best].model
        for i in active:
            if i == best or states[i].best_loss <= states[best].best_loss:
                continue
            dst = states[i].model
            dst.unit_weights.data[...] = src.unit_weights.data
            dst.and_gates.data[...] = src.and_gates.data
            if (
                dst.or_gates_stacked is not None
                and src.or_gates_stacked is not None
            ):
                dst.or_gates_stacked.data[...] = src.or_gates_stacked.data
            states[i].stale = 0
            if stacked_optimizer is not None:
                stacked_optimizer.reset_member(i)
            elif states[i].optimizer is not None:
                states[i].optimizer.reset_moments()


def _run_restart_epochs(
    states: list[_RestartState],
    X: Tensor | Sequence[Tensor],
    epochs: int,
    early_stop_patience: int,
    loss_tolerance: float,
    require_saturation: bool,
    clip_norm: float,
    raise_on_divergence: bool = False,
    pool: TapePool | None = None,
    seed_groups: list[list[int]] | None = None,
) -> None:
    """Drive the shared epoch loop over every restart simultaneously.

    This is the *single* copy of the vectorized training-loop
    invariants (anneal gating, prune timing, post-anneal loss
    comparability, stale/saturation early stop): solo ``train_gcln``
    runs it with one state, so the bitwise restarts==solo guarantee is
    structural rather than maintained by hand.

    ``X`` may be one shared data tensor or a per-state sequence of
    data tensors (one leaf per model, e.g. attempts from different
    problems); each state's loss term is built from its own leaf.

    With ``pool``, a same-key recording from an earlier call is adopted
    (skipping record + plan compile) and this call's recording is
    deposited for the next one — bitwise-transparent either way.
    ``seed_groups`` names sibling states for the opt-in warm-start
    exploit step (default: states sharing one data leaf).
    """
    xs = list(X) if isinstance(X, (list, tuple)) else [X] * len(states)
    config = states[0].model.config
    key: tuple | None = None
    entry: _PooledRestartRun | None = None
    if pool is not None and all(s.model.batched_capable() for s in states):
        key = _restart_pool_key(states, xs)
        entry = pool.get(key)
    if entry is not None:
        _adopt_restart_run(entry, states, xs)
        tape = entry.tape
        loss_nodes = entry.loss_nodes
    else:
        loss_nodes = []
        tape = Tape(backend=config.backend)

    def build() -> Tensor:
        loss_nodes.clear()
        total: Tensor | None = None
        for state, x in zip(states, xs):
            term = build_gcln_loss_batched(
                state.model, x, state.lam1_t, state.lam2_t,
                state.sigma_box, state.c1_box,
            )
            loss_nodes.append(term)
            total = term if total is None else total + term
        return total  # type: ignore[return-value]

    seeding = (
        config.warm_start and config.seed_period > 0 and len(states) > 1
    )
    groups: list[list[int]] = []
    if seeding:
        groups = (
            seed_groups
            if seed_groups is not None
            else _groups_by_identity(xs)
        )
        seeding = bool(groups)

    for epoch in range(1, epochs + 1):
        for state in states:
            if not state.stopped:
                state.begin_epoch()
        tape.step(build)
        for state in states:
            if not state.stopped:
                clip_grad_norm(state.optimizer.params, clip_norm)
                state.optimizer.step()
                state.model.project_gates()
        for state, node in zip(states, loss_nodes):
            if state.stopped:
                continue
            state.epoch = epoch
            config = state.model.config
            state.relax_scale = max(
                state.relax_scale * state.anneal_decay, 1.0
            )
            if (
                state.relax_scale == 1.0
                and config.prune_interval > 0
                and epoch % config.prune_interval == 0
            ):
                for group in state.model.clauses:
                    for unit in group:
                        unit.prune(config.prune_threshold)
            value = float(node.data)
            if not np.isfinite(value):
                message = f"loss diverged to {value} at epoch {epoch}"
                if raise_on_divergence:
                    raise TrainingError(message)
                state.error = message
                state.stopped = True
                continue
            if state.history is not None:
                state.history.append(value)
            if state.relax_scale > 1.0:
                # Still annealing: loss values are not yet comparable.
                state.best_loss = min(state.best_loss, value)
                continue
            if value < state.best_loss - loss_tolerance:
                state.best_loss = value
                state.stale = 0
            else:
                state.stale += 1
            if state.stale >= early_stop_patience and (
                not require_saturation or state.model.gates_saturated()
            ):
                # Once stopped, the restart's parameters never change
                # again (no clip/step/project/prune), so it finishes
                # with exactly the weights sequential training at this
                # epoch would have produced; the shared graph keeps
                # computing its (ignored) forward pass.
                state.stopped = True
        if seeding and epoch % config.seed_period == 0:
            _seed_from_best(states, groups)
        for state in states:
            state.optimizer.zero_grad()
        if all(state.stopped for state in states):
            break
    if entry is None and key is not None and tape.recorded and tape.replayable:
        tape.pool_misses += 1
        pool.put(  # type: ignore[union-attr]
            key,
            _PooledRestartRun(
                tape=tape,
                models=[s.model for s in states],
                xs=list(xs),
                loss_nodes=list(loss_nodes),
                lam1=[s.lam1_t for s in states],
                lam2=[s.lam2_t for s in states],
                sigma=[s.sigma_box for s in states],
                c1=[s.c1_box for s in states],
            ),
        )
    _publish_tape_stats(tape)


def _run_stacked_epochs(
    states: list[_RestartState],
    stack: GCLNStack,
    X: Tensor,
    epochs: int,
    early_stop_patience: int,
    loss_tolerance: float,
    require_saturation: bool,
    clip_norm: float,
    pool: TapePool | None = None,
    seed_groups: list[list[int]] | None = None,
) -> None:
    """Epoch loop over a model stack: one graph for all models.

    Mirrors :func:`_run_restart_epochs` invariant for invariant (anneal
    gating, prune timing, post-anneal loss comparability, the
    stale/saturation early stop), but the forward/backward is a single
    models-stacked graph and the update is a single
    :class:`StackedAdam` step over the super-tensors — every Adam
    intermediate is elementwise and the per-model clip norms accumulate
    in the same order, so each model's slice evolves bitwise as it
    would under its own optimizer.  A model that early-stops (or
    diverges) is frozen in the optimizer: its update slices are zeroed
    from then on, so its parameters never change again — the same
    guarantee the per-model loop provides.  Gate projection is one
    ``np.clip`` over the stacked gates; a frozen model's gates are
    already projected, so re-clipping them is a bitwise no-op.

    Must be called after :class:`GCLNStack` rebinding, with ``states``
    built from the rebound models (``make_optimizer=False``).
    """
    config = stack.config
    n_models = len(states)
    anneal_init, anneal_decay = _anneal(config, epochs)
    relax_scale = anneal_init
    key: tuple | None = None
    entry: _PooledStackedRun | None = None
    if pool is not None:
        key = (
            "stacked",
            resolve_backend_name(config.backend),
            n_models,
            X.data.shape,
            stack.models[0].stack_signature(),
        )
        entry = pool.get(key)
    if entry is not None:
        # Copy the fresh stack's values into the pooled super-arrays and
        # rebind the caller's models onto them, exactly as GCLNStack
        # itself rebinds; the pooled stack becomes the live one.
        pooled = entry.stack
        pooled.unit_weights.data[...] = stack.unit_weights.data
        pooled.unit_masks[...] = stack.unit_masks
        pooled._unit_mask_tensor.data[...] = stack._unit_mask_tensor.data
        pooled.and_gates.data[...] = stack.and_gates.data
        pooled.or_gates.data[...] = stack.or_gates.data
        entry.X.data[...] = X.data
        for i, model in enumerate(stack.models):
            model.rebind_storage(
                pooled.unit_weights.data[i],
                pooled.unit_masks[i],
                pooled._unit_mask_tensor.data[i],
                pooled.and_gates.data[i],
                pooled.or_gates.data[i],
            )
        pooled.models = list(stack.models)
        stack = pooled
        lam1_vec, lam2_vec = entry.lam1_vec, entry.lam2_vec
        lam1_vec.data[...] = 0.0
        lam2_vec.data[...] = 0.0
        sigma_box, c1_box = entry.sigma_box, entry.c1_box
        loss_node = entry.loss_node
        tape = entry.tape
        tape.pool_hits += 1
    else:
        lam1_vec = Tensor(np.zeros(n_models))
        lam2_vec = Tensor(np.zeros(n_models))
        sigma_box = np.array(config.sigma * anneal_init)
        c1_box = np.array(config.c1 * anneal_init)
        loss_node = []
        tape = Tape(backend=config.backend)
    stacked_params = [stack.and_gates, stack.or_gates, stack.unit_weights]
    if entry is not None:
        for p in stacked_params:
            p.grad = None
    optimizer = StackedAdam(
        stacked_params,
        lr=config.learning_rate,
        decay=config.lr_decay,
    )

    def build() -> Tensor:
        loss_node.clear()
        vec = build_gcln_loss_stacked(
            stack, X, lam1_vec, lam2_vec, sigma_box, c1_box
        )
        loss_node.append(vec)
        return vec.sum()

    seeding = (
        config.warm_start
        and config.seed_period > 0
        and seed_groups is not None
        and bool(seed_groups)
    )

    for epoch in range(1, epochs + 1):
        for i, state in enumerate(states):
            if not state.stopped:
                lam1_vec.data[i] = state.lambda1.step()
                lam2_vec.data[i] = state.lambda2.step()
        sigma_box[...] = config.sigma * relax_scale
        c1_box[...] = config.c1 * relax_scale
        tape.step(build)
        clip_grad_norm_stacked(stacked_params, clip_norm)
        optimizer.step()
        np.clip(stack.and_gates.data, 0.0, 1.0, out=stack.and_gates.data)
        np.clip(stack.or_gates.data, 0.0, 1.0, out=stack.or_gates.data)
        relax_scale = max(relax_scale * anneal_decay, 1.0)
        values = loss_node[0].data
        for i, state in enumerate(states):
            if state.stopped:
                continue
            state.epoch = epoch
            state.relax_scale = relax_scale
            if (
                relax_scale == 1.0
                and config.prune_interval > 0
                and epoch % config.prune_interval == 0
            ):
                for group in state.model.clauses:
                    for unit in group:
                        unit.prune(config.prune_threshold)
            value = float(values[i])
            if not np.isfinite(value):
                state.error = f"loss diverged to {value} at epoch {epoch}"
                state.stopped = True
                optimizer.freeze(i)
                continue
            if state.history is not None:
                state.history.append(value)
            if relax_scale > 1.0:
                state.best_loss = min(state.best_loss, value)
                continue
            if value < state.best_loss - loss_tolerance:
                state.best_loss = value
                state.stale = 0
            else:
                state.stale += 1
            if state.stale >= early_stop_patience and (
                not require_saturation or state.model.gates_saturated()
            ):
                state.stopped = True
                optimizer.freeze(i)
        if seeding and epoch % config.seed_period == 0:
            _seed_from_best(states, seed_groups, stacked_optimizer=optimizer)
        optimizer.zero_grad()
        if all(state.stopped for state in states):
            break
    if entry is None and key is not None and tape.recorded and tape.replayable:
        tape.pool_misses += 1
        pool.put(  # type: ignore[union-attr]
            key,
            _PooledStackedRun(
                tape=tape,
                stack=stack,
                X=X,
                loss_node=loss_node,
                lam1_vec=lam1_vec,
                lam2_vec=lam2_vec,
                sigma_box=sigma_box,
                c1_box=c1_box,
            ),
        )
    _publish_tape_stats(tape)


def _per_model_matrices(
    models: list[GCLN], data
) -> list[np.ndarray] | None:
    """Normalize the ``data`` argument of :func:`train_gcln_restarts`.

    Returns ``None`` for the legacy shared 2-D matrix, else one matrix
    per model (from a ``(models, samples, terms)`` array or a sequence
    of 2-D matrices).
    """
    if isinstance(data, np.ndarray) and data.ndim == 2:
        return None
    if isinstance(data, np.ndarray) and data.ndim == 3:
        matrices = [data[i] for i in range(data.shape[0])]
    elif isinstance(data, (list, tuple)):
        matrices = [np.asarray(d, dtype=np.float64) for d in data]
    else:
        raise TrainingError(
            "data must be a 2-D matrix, a (models, samples, terms) array, "
            f"or a sequence of 2-D matrices; got {type(data).__name__}"
        )
    if len(matrices) != len(models):
        raise TrainingError(
            f"got {len(matrices)} data matrices for {len(models)} models"
        )
    for matrix in matrices:
        _validate_data(matrix)
    return matrices


def train_gcln_restarts(
    models: list[GCLN],
    data,
    max_epochs: int | None = None,
    early_stop_patience: int = 200,
    loss_tolerance: float = 1e-4,
    pool: TapePool | None = None,
) -> list[RestartOutcome]:
    """Train R independent G-CLN models simultaneously in one graph.

    Every model trains exactly as it would under :func:`train_gcln`
    alone (decoupled gradients, per-model clipping and Adam state,
    early-stopped models frozen in place), but the epochs run through
    one taped graph, amortizing the Python interpreter over the whole
    batch.

    ``data`` selects the batching mode:

    * a 2-D ``(samples, terms)`` matrix — R restarts of one problem
      sharing one data leaf (the PR 3 mode);
    * a 3-D ``(models, samples, terms)`` array or a sequence of R 2-D
      matrices — one data matrix *per model*, e.g. same-shape first
      attempts from different problems (cross-problem batches).  When
      every model shares one :meth:`GCLN.stack_signature` the whole
      batch trains through a single models-stacked forward
      (:class:`GCLNStack`); otherwise each model keeps its own subgraph
      with its own data leaf on one shared tape.

    Args:
        models: batched-capable models (e.g. one per scheduled attempt,
            differing only in dropout masks / seeds).
        data: shared matrix, stacked batch, or per-model matrices (all
            already normalized).
        max_epochs: overrides each model's ``config.max_epochs``.
        pool: optional :class:`TapePool` for cross-call tape/plan reuse
            (bitwise-transparent; see the warm-start section above).

    Returns:
        One :class:`RestartOutcome` per model, in input order.
    """
    if not models:
        raise TrainingError("train_gcln_restarts needs at least one model")
    if not all(m.batched_capable() for m in models):
        raise TrainingError(
            "all models must be batched-capable; train ragged/mixed models "
            "individually via train_gcln"
        )
    epochs = max_epochs if max_epochs is not None else models[0].config.max_epochs
    matrices = _per_model_matrices(models, data)
    if matrices is None:
        _validate_data(data)
        shared = Tensor(data)
        per_model_x = [shared] * len(models)
        states = [_RestartState(model, epochs) for model in models]
        _run_restart_epochs(
            states, shared, epochs, early_stop_patience, loss_tolerance,
            require_saturation=True, clip_norm=100.0, pool=pool,
        )
    else:
        signatures = {m.stack_signature() for m in models}
        shapes = {m.shape for m in matrices}
        # Members trained on the same matrix *object* are siblings
        # (restarts of one problem) for warm-start seeding; the Tensor
        # leaves built below don't preserve that identity, so compute
        # the groups here.
        seed_groups = _groups_by_identity(matrices)
        if len(signatures) == 1 and len(shapes) == 1:
            # One stacked graph for the whole batch.  The stack rebinds
            # model storage to slice views, so states (whose optimizers
            # capture the parameter tensors) must be built afterwards.
            stack = GCLNStack(models)
            stacked = Tensor(np.stack(matrices))
            per_model_x = [
                Tensor(stacked.data[i]) for i in range(len(models))
            ]
            states = [
                _RestartState(model, epochs, make_optimizer=False)
                for model in models
            ]
            _run_stacked_epochs(
                states, stack, stacked, epochs, early_stop_patience,
                loss_tolerance, require_saturation=True, clip_norm=100.0,
                pool=pool, seed_groups=seed_groups,
            )
            # The stacked data tensor is not rebound on a pool hit, but
            # its values match the live storage bitwise, so the
            # convergence checks below read identical numbers.
        else:
            per_model_x = [Tensor(matrix) for matrix in matrices]
            states = [_RestartState(model, epochs) for model in models]
            _run_restart_epochs(
                states, per_model_x, epochs, early_stop_patience,
                loss_tolerance, require_saturation=True, clip_norm=100.0,
                pool=pool, seed_groups=seed_groups,
            )
    outcomes: list[RestartOutcome] = []
    for state, x in zip(states, per_model_x):
        if state.error is not None:
            outcomes.append(RestartOutcome(result=None, error=state.error))
            continue
        data_term, converged = _data_convergence(
            state.model, x, x.data.shape[0]
        )
        outcomes.append(
            RestartOutcome(
                result=TrainResult(
                    final_loss=state.best_loss,
                    epochs=state.epoch,
                    converged=converged,
                )
            )
        )
    return outcomes


def train_gcln(
    model: GCLN,
    data: np.ndarray,
    max_epochs: int | None = None,
    early_stop_patience: int = 200,
    loss_tolerance: float = 1e-4,
    record_history: bool = False,
    pool: TapePool | None = None,
) -> TrainResult:
    """Train ``model`` on the normalized data matrix.

    Args:
        model: the G-CLN to train (modified in place).
        data: samples-by-terms float matrix (already normalized).
        max_epochs: overrides ``model.config.max_epochs`` when given.
        early_stop_patience: stop when the best loss has not improved
            by ``loss_tolerance`` for this many epochs and the gates
            have saturated.
        loss_tolerance: minimum improvement counted as progress.
        record_history: keep the per-epoch loss curve (for the
            stability study).
        pool: optional :class:`TapePool` for cross-call tape/plan reuse
            (only used on the vectorized path).

    Returns:
        A :class:`TrainResult`; ``converged`` is True when the data
        term of the loss is small (every sample close to truth value 1).
    """
    _validate_data(data)
    config = model.config
    epochs = max_epochs if max_epochs is not None else config.max_epochs
    if config.vectorized and model.batched_capable():
        return _train_gcln_vectorized(
            model, data, epochs, early_stop_patience, loss_tolerance,
            record_history, pool=pool,
        )
    return _train_gcln_eager(
        model, data, epochs, early_stop_patience, loss_tolerance,
        record_history,
    )


def _train_gcln_vectorized(
    model: GCLN,
    data: np.ndarray,
    epochs: int,
    early_stop_patience: int,
    loss_tolerance: float,
    record_history: bool,
    pool: TapePool | None = None,
) -> TrainResult:
    """Taped single-model training: the one-restart run of the shared loop."""
    X = Tensor(data)
    state = _RestartState(model, epochs)
    if record_history:
        state.history = []
    _run_restart_epochs(
        [state], X, epochs, early_stop_patience, loss_tolerance,
        require_saturation=True, clip_norm=100.0, raise_on_divergence=True,
        pool=pool,
    )
    _, converged = _data_convergence(model, X, data.shape[0])
    return TrainResult(
        final_loss=state.best_loss,
        epochs=state.epoch,
        converged=converged,
        loss_history=state.history or [],
    )


def _train_gcln_eager(
    model: GCLN,
    data: np.ndarray,
    epochs: int,
    early_stop_patience: int,
    loss_tolerance: float,
    record_history: bool,
) -> TrainResult:
    """Reference implementation: rebuild the graph every epoch."""
    config = model.config
    X = Tensor(data)
    optimizer = Adam(
        model.parameters(), lr=config.learning_rate, decay=config.lr_decay
    )
    lambda1 = GateSchedule(*config.lambda1_schedule)
    lambda2 = GateSchedule(*config.lambda2_schedule)

    # Relaxation annealing: start with σ (and c1) widened by
    # ``anneal_init`` and tighten geometrically to the paper's constants
    # by mid-training, so initial residuals (~data norm) still produce
    # gradients.  relax_scale = 1.0 from the midpoint on.
    anneal_init, anneal_decay = _anneal(config, epochs)

    history: list[float] = []
    best_loss = float("inf")
    stale = 0
    epoch = 0
    relax_scale = anneal_init
    for epoch in range(1, epochs + 1):
        optimizer.zero_grad()
        loss = gcln_loss(model, X, lambda1.step(), lambda2.step(), relax_scale)
        loss.backward()
        clip_grad_norm(optimizer.params, 100.0)
        optimizer.step()
        model.project_gates()
        relax_scale = max(relax_scale * anneal_decay, 1.0)

        if (
            relax_scale == 1.0
            and config.prune_interval > 0
            and epoch % config.prune_interval == 0
        ):
            for group in model.clauses:
                for unit in group:
                    unit.prune(config.prune_threshold)

        value = loss.item()
        if not np.isfinite(value):
            raise TrainingError(f"loss diverged to {value} at epoch {epoch}")
        if record_history:
            history.append(value)
        if relax_scale > 1.0:
            # Still annealing: loss values are not yet comparable (and
            # the gate-saturation scan is skipped entirely).
            best_loss = min(best_loss, value)
            continue
        if value < best_loss - loss_tolerance:
            best_loss = value
            stale = 0
        else:
            stale += 1
        if stale >= early_stop_patience and model.gates_saturated():
            break

    _, converged = _data_convergence(model, X, data.shape[0])
    return TrainResult(
        final_loss=best_loss,
        epochs=epoch,
        converged=converged,
        loss_history=history,
    )


def train_units_independently(
    model: GCLN,
    data: np.ndarray,
    max_epochs: int | None = None,
    early_stop_patience: int = 200,
    loss_tolerance: float = 1e-4,
    batched: bool | None = None,
    pool: TapePool | None = None,
) -> TrainResult:
    """Train each atomic unit on its own objective (no gate coupling).

    Used for PBQU bound fitting (§5.2.2): each variable-subset unit
    maximizes its own mean activation, which is the per-unit restriction
    of the G-CLN loss.  Joint training through a 20-way gated product
    starves individual bound units of gradient; independent fitting
    matches the paper's per-bound convergence analysis (Theorem 4.2).

    Args:
        batched: run all units as one stacked forward on a tape
            (default: ``model.config.vectorized``).  The sequential
            per-unit loop is the reference the batched path is tested
            against — both produce the same invariants for the same
            seed.
        pool: optional :class:`TapePool` for cross-call tape/plan reuse
            (only used on the batched path).
    """
    _validate_data(data)
    config = model.config
    epochs = max_epochs if max_epochs is not None else config.max_epochs
    if batched is None:
        batched = config.vectorized
    if batched:
        return _train_units_batched(
            model, data, epochs, early_stop_patience, loss_tolerance,
            pool=pool,
        )
    return _train_units_sequential(
        model, data, epochs, early_stop_patience, loss_tolerance
    )


def _train_units_batched(
    model: GCLN,
    data: np.ndarray,
    epochs: int,
    early_stop_patience: int,
    loss_tolerance: float,
    pool: TapePool | None = None,
) -> TrainResult:
    """One stacked forward + tape replay for all units at once."""
    config = model.config
    X = Tensor(data)
    anneal_init, anneal_decay = _anneal(config, epochs)
    eq_idx = [
        i for i, u in enumerate(model.units_flat) if u.kind is AtomicKind.EQ
    ]
    ge_idx = [
        i for i, u in enumerate(model.units_flat) if u.kind is AtomicKind.GE
    ]

    key: tuple | None = None
    entry: _PooledUnitsRun | None = None
    if pool is not None and model.or_gates_stacked is not None:
        key = (
            "units",
            resolve_backend_name(config.backend),
            model.stack_signature(),
            tuple(u.kind.value for u in model.units_flat),
            data.shape,
        )
        entry = pool.get(key)
    if entry is not None:
        entry.X.data[...] = data
        _copy_model_into(entry.model, model)
        _share_storage(model, entry.model)
        entry.model.unit_weights.grad = None
        sigma_box = entry.sigma_box
        c1_box = entry.c1_box
        tape = entry.tape
        loss_node = entry.loss_node
        X = entry.X
        weights = entry.model.unit_weights
        tape.pool_hits += 1
    else:
        sigma_box = np.array(config.sigma * anneal_init)
        c1_box = np.array(config.c1 * anneal_init)
        tape = Tape(backend=config.backend)
        loss_node = []
        weights = model.unit_weights
    # A fresh Adam over the (possibly pooled) weight tensor is bitwise
    # identical to the cold-start optimizer: zero moments, same lr.
    optimizer = Adam(
        [weights], lr=config.learning_rate, decay=config.lr_decay
    )

    def build() -> Tensor:
        loss_node.clear()
        residuals = model.unit_residuals(X)
        total: Tensor | None = None
        for idx, mixed in ((eq_idx, bool(ge_idx)), (ge_idx, bool(eq_idx))):
            if not idx:
                continue
            r = residuals[:, idx] if mixed else residuals
            if idx is eq_idx:
                act = gaussian_equality(r, sigma_box)
            else:
                act = pbqu_ge(r, c1_box, config.c2)
            term = (1.0 - act).sum()
            total = term if total is None else total + term
        loss_node.append(total)  # type: ignore[arg-type]
        return total  # type: ignore[return-value]

    best_loss = float("inf")
    stale = 0
    relax_scale = anneal_init
    epoch = 0
    for epoch in range(1, epochs + 1):
        sigma_box[...] = config.sigma * relax_scale
        c1_box[...] = config.c1 * relax_scale
        optimizer.zero_grad()
        tape.step(build)
        clip_grad_norm(optimizer.params, 100.0)
        optimizer.step()
        relax_scale = max(relax_scale * anneal_decay, 1.0)

        value = float(loss_node[0].data)
        if not np.isfinite(value):
            raise TrainingError(f"loss diverged to {value} at epoch {epoch}")
        if relax_scale > 1.0:
            best_loss = min(best_loss, value)
            continue
        if value < best_loss - loss_tolerance:
            best_loss = value
            stale = 0
        else:
            stale += 1
        if stale >= early_stop_patience:
            break
    if (
        entry is None
        and key is not None
        and tape.recorded
        and tape.replayable
    ):
        tape.pool_misses += 1
        pool.put(  # type: ignore[union-attr]
            key,
            _PooledUnitsRun(
                tape=tape,
                model=model,
                X=X,
                loss_node=loss_node,
                sigma_box=sigma_box,
                c1_box=c1_box,
            ),
        )
    _publish_tape_stats(tape)
    return TrainResult(final_loss=best_loss, epochs=epoch, converged=True)


def _train_units_sequential(
    model: GCLN,
    data: np.ndarray,
    epochs: int,
    early_stop_patience: int,
    loss_tolerance: float,
) -> TrainResult:
    """Reference implementation: one graph chain per unit per epoch."""
    config = model.config
    X = Tensor(data)
    units = [unit for group in model.clauses for unit in group]
    optimizer = Adam(
        [u.weight for u in units], lr=config.learning_rate, decay=config.lr_decay
    )
    anneal_init, anneal_decay = _anneal(config, epochs)

    best_loss = float("inf")
    stale = 0
    relax_scale = anneal_init
    epoch = 0
    for epoch in range(1, epochs + 1):
        optimizer.zero_grad()
        loss = None
        for unit in units:
            term = (1.0 - unit.forward(X, relax_scale)).sum()
            loss = term if loss is None else loss + term
        loss.backward()
        clip_grad_norm(optimizer.params, 100.0)
        optimizer.step()
        relax_scale = max(relax_scale * anneal_decay, 1.0)

        value = loss.item()
        if not np.isfinite(value):
            raise TrainingError(f"loss diverged to {value} at epoch {epoch}")
        if relax_scale > 1.0:
            best_loss = min(best_loss, value)
            continue
        if value < best_loss - loss_tolerance:
            best_loss = value
            stale = 0
        else:
            stale += 1
        if stale >= early_stop_patience:
            break
    return TrainResult(final_loss=best_loss, epochs=epoch, converged=True)
