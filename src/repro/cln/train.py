"""G-CLN training loop (§5.2.1, §6 system configuration).

Full-batch Adam with multiplicative learning-rate decay, adaptive gate
regularization schedules, gate projection back into [0, 1] after every
step, and early stopping when the loss plateaus with saturated gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.autodiff.optim import Adam, clip_grad_norm
from repro.autodiff.tensor import Tensor
from repro.cln.loss import GateSchedule, gcln_loss
from repro.cln.model import GCLN


@dataclass
class TrainResult:
    """Outcome of one training run."""

    final_loss: float
    epochs: int
    converged: bool
    loss_history: list[float] = field(default_factory=list)


def train_gcln(
    model: GCLN,
    data: np.ndarray,
    max_epochs: int | None = None,
    early_stop_patience: int = 200,
    loss_tolerance: float = 1e-4,
    record_history: bool = False,
) -> TrainResult:
    """Train ``model`` on the normalized data matrix.

    Args:
        model: the G-CLN to train (modified in place).
        data: samples-by-terms float matrix (already normalized).
        max_epochs: overrides ``model.config.max_epochs`` when given.
        early_stop_patience: stop when the best loss has not improved
            by ``loss_tolerance`` for this many epochs and the gates
            have saturated.
        loss_tolerance: minimum improvement counted as progress.
        record_history: keep the per-epoch loss curve (for the
            stability study).

    Returns:
        A :class:`TrainResult`; ``converged`` is True when the data
        term of the loss is small (every sample close to truth value 1).
    """
    if data.ndim != 2 or data.shape[0] == 0:
        raise TrainingError(f"training data must be a non-empty 2-D matrix, got {data.shape}")
    config = model.config
    epochs = max_epochs if max_epochs is not None else config.max_epochs
    X = Tensor(data)
    optimizer = Adam(
        model.parameters(), lr=config.learning_rate, decay=config.lr_decay
    )
    lambda1 = GateSchedule(*config.lambda1_schedule)
    lambda2 = GateSchedule(*config.lambda2_schedule)

    # Relaxation annealing: start with σ (and c1) widened by
    # ``anneal_init`` and tighten geometrically to the paper's constants
    # by mid-training, so initial residuals (~data norm) still produce
    # gradients.  relax_scale = 1.0 from the midpoint on.
    anneal_init = max(config.anneal_init, 1.0)
    anneal_epochs = max(1, epochs // 2)
    anneal_decay = anneal_init ** (-1.0 / anneal_epochs)

    history: list[float] = []
    best_loss = float("inf")
    stale = 0
    epoch = 0
    relax_scale = anneal_init
    for epoch in range(1, epochs + 1):
        optimizer.zero_grad()
        loss = gcln_loss(model, X, lambda1.step(), lambda2.step(), relax_scale)
        loss.backward()
        clip_grad_norm(optimizer.params, 100.0)
        optimizer.step()
        model.project_gates()
        relax_scale = max(relax_scale * anneal_decay, 1.0)

        if (
            relax_scale == 1.0
            and config.prune_interval > 0
            and epoch % config.prune_interval == 0
        ):
            for group in model.clauses:
                for unit in group:
                    unit.prune(config.prune_threshold)

        value = loss.item()
        if not np.isfinite(value):
            raise TrainingError(f"loss diverged to {value} at epoch {epoch}")
        if record_history:
            history.append(value)
        if relax_scale > 1.0:
            # Still annealing: loss values are not yet comparable.
            best_loss = min(best_loss, value)
            continue
        if value < best_loss - loss_tolerance:
            best_loss = value
            stale = 0
        else:
            stale += 1
        if stale >= early_stop_patience and model.gates_saturated():
            break

    data_term = float((1.0 - model.forward(X).data).sum())
    per_sample = data_term / data.shape[0]
    return TrainResult(
        final_loss=best_loss,
        epochs=epoch,
        converged=per_sample < 0.1,
        loss_history=history,
    )


def train_units_independently(
    model: GCLN,
    data: np.ndarray,
    max_epochs: int | None = None,
    early_stop_patience: int = 200,
    loss_tolerance: float = 1e-4,
) -> TrainResult:
    """Train each atomic unit on its own objective (no gate coupling).

    Used for PBQU bound fitting (§5.2.2): each variable-subset unit
    maximizes its own mean activation, which is the per-unit restriction
    of the G-CLN loss.  Joint training through a 20-way gated product
    starves individual bound units of gradient; independent fitting
    matches the paper's per-bound convergence analysis (Theorem 4.2).
    """
    if data.ndim != 2 or data.shape[0] == 0:
        raise TrainingError(
            f"training data must be a non-empty 2-D matrix, got {data.shape}"
        )
    config = model.config
    epochs = max_epochs if max_epochs is not None else config.max_epochs
    X = Tensor(data)
    units = [unit for group in model.clauses for unit in group]
    optimizer = Adam(
        [u.weight for u in units], lr=config.learning_rate, decay=config.lr_decay
    )
    anneal_init = max(config.anneal_init, 1.0)
    anneal_epochs = max(1, epochs // 2)
    anneal_decay = anneal_init ** (-1.0 / anneal_epochs)

    best_loss = float("inf")
    stale = 0
    relax_scale = anneal_init
    epoch = 0
    for epoch in range(1, epochs + 1):
        optimizer.zero_grad()
        loss = None
        for unit in units:
            term = (1.0 - unit.forward(X, relax_scale)).sum()
            loss = term if loss is None else loss + term
        loss.backward()
        clip_grad_norm(optimizer.params, 100.0)
        optimizer.step()
        relax_scale = max(relax_scale * anneal_decay, 1.0)

        value = loss.item()
        if not np.isfinite(value):
            raise TrainingError(f"loss diverged to {value} at epoch {epoch}")
        if relax_scale > 1.0:
            best_loss = min(best_loss, value)
            continue
        if value < best_loss - loss_tolerance:
            best_loss = value
            stale = 0
        else:
            stale += 1
        if stale >= early_stop_patience:
            break
    return TrainResult(final_loss=best_loss, epochs=epoch, converged=True)
