"""The G-CLN model (Fig. 9 of the paper).

Architecture, bottom to top:

1. **Input**: the normalized samples-by-terms matrix (terms include the
   constant-1 column, so bias is an ordinary weight).
2. **Term dropout** (§5.1.3): each atomic unit owns a fixed binary mask
   over terms, drawn before training.  Equality units use random masks;
   inequality units use structured masks over variable subsets
   (§5.2.2).
3. **Atomic units**: a linear layer with unit-L2 weight constraint
   (§5.1.2) followed by the Gaussian activation (equalities) or the
   PBQU activation (inequalities).
4. **Gated disjunction layer**: each clause is a gated t-conorm of up
   to ``literals_per_clause`` atomic units.
5. **Gated conjunction layer**: a gated t-norm over the clause outputs.

The extracted SMT formula is therefore in CNF, a conjunction of up to
``n_clauses`` disjunctions (m=10, n=2 in the paper's evaluation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.errors import TrainingError
from repro.autodiff.functional import stack
from repro.autodiff.tensor import Tensor
from repro.cln.activations import gaussian_equality, pbqu_ge
from repro.cln.tnorms import gated_tconorm, gated_tnorm


class AtomicKind(enum.Enum):
    """What predicate an atomic unit relaxes."""

    EQ = "eq"
    GE = "ge"


@dataclass
class GCLNConfig:
    """Hyperparameters, defaulting to the paper's §6 configuration."""

    n_clauses: int = 10
    literals_per_clause: int = 2
    sigma: float = 0.1
    c1: float = 1.0
    c2: float = 50.0
    # Term dropout probability.  The paper starts at 0.3 and lowers it
    # on failed attempts; on our numpy substrate higher dropout (smaller
    # per-unit supports) converges to clean single invariants far more
    # reliably, so the pipeline sweeps a schedule around this default.
    dropout_rate: float = 0.6
    # Hard cap on terms kept per unit: on large bases (e.g. 56 deg-3
    # terms) even high dropout leaves supports whose restricted
    # nullspace is multi-dimensional, which yields mixtures.
    max_kept_terms: int = 8
    weight_regularization: bool = True
    # Gate regularization schedules: (initial, multiplier, floor/ceiling).
    lambda1_schedule: tuple[float, float, float] = (1.0, 0.999, 0.1)
    lambda2_schedule: tuple[float, float, float] = (0.001, 1.001, 0.1)
    learning_rate: float = 0.01
    lr_decay: float = 0.9996
    max_epochs: int = 5000
    # Relaxation annealing (see train.train_gcln): σ and c1 start
    # multiplied by this factor and tighten to 1x by mid-training.
    anneal_init: float = 100.0
    # Sparsity pressure: L1 penalty on the normalized unit weights and
    # periodic magnitude pruning (post-anneal).  Both push a unit toward
    # a single clean invariant instead of an arbitrary mixture of
    # invariants, which would not round to small rational coefficients.
    weight_l1: float = 0.02
    prune_interval: int = 100
    prune_threshold: float = 0.05
    # Inequality learning (§5.2.2).
    max_ineq_vars: int = 2
    ineq_degree: int = 2
    ineq_activation_threshold: float = 0.5
    # Independent random restarts per variable subset; PBQU training is
    # multimodal and extraction validates/discards, so extra units only
    # cost training time.
    ineq_restarts: int = 2
    # Vectorized training core: batched (units, terms) forward through
    # the stacked weight matrix, fused kernels, and tape replay.  Off
    # recovers the per-unit eager loops (kept as the reference
    # implementation for equivalence tests and bench_perf baselines).
    vectorized: bool = True
    # Tape replay backend: "auto" (numba when importable, else the
    # fused numpy plan), "numpy" (reference closure walker), "fused",
    # or "numba".  See repro.autodiff.backend.
    backend: str = "auto"
    # Warm start (opt-in): carry gate states across retry attempts and
    # periodically seed worse restarts from the best-loss member during
    # multi-restart training.  Off keeps every attempt/restart fully
    # independent — bitwise-identical to training without this field.
    warm_start: bool = False
    # Exploit period for best-member seeding (post-anneal epochs between
    # seeding steps); <= 0 disables seeding even with warm_start on.
    seed_period: int = 100
    # Extraction.
    max_denominators: tuple[int, ...] = (10, 15, 30)


class AtomicUnit:
    """One linear-plus-activation unit with a fixed dropout mask."""

    def __init__(
        self,
        kind: AtomicKind,
        mask: np.ndarray,
        rng: np.random.Generator,
        config: GCLNConfig,
    ):
        if mask.dtype != bool:
            raise TrainingError("dropout mask must be boolean")
        if not mask.any():
            raise TrainingError("dropout mask dropped every term")
        self.kind = kind
        # Own copy: prune() mutates the mask in place (so that row views
        # into a parent GCLN's stacked matrices stay bound).
        self.mask = np.array(mask, dtype=bool)
        self.config = config
        init = rng.normal(0.0, 1.0, size=mask.shape[0])
        init[~mask] = 0.0
        self.weight = Tensor(init, requires_grad=True)
        self._mask_tensor = Tensor(self.mask.astype(np.float64))

    def bind_row(
        self,
        weight_row: np.ndarray,
        mask_row: np.ndarray,
        mask_value_row: np.ndarray,
    ) -> None:
        """Rebind this unit's storage onto rows of a stacked matrix.

        The rows are numpy *views* into the parent model's
        ``(units, terms)`` arrays, so the per-unit eager path and the
        batched path read and write the same memory — no syncing.
        """
        self.weight = Tensor(weight_row, requires_grad=True)
        self.mask = mask_row
        self._mask_tensor = Tensor(mask_value_row)

    def effective_weight(self) -> Tensor:
        """Masked, optionally unit-L2-normalized weight vector."""
        w = self.weight * self._mask_tensor
        if self.config.weight_regularization:
            norm = ((w * w).sum() + 1e-12) ** 0.5
            w = w / norm
        return w

    def residual(self, X: Tensor) -> Tensor:
        """Linear response ``X @ w_hat`` per sample."""
        return X @ self.effective_weight()

    def forward(self, X: Tensor, relax_scale: float = 1.0) -> Tensor:
        """Continuous truth value per sample.

        Args:
            X: normalized data tensor.
            relax_scale: multiplier (>= 1) applied to σ and c1 during
                annealed training; 1.0 recovers the paper's constants.
                With σ = 0.1 and rows normalized to L2 norm 10, random
                initial weights give residuals ~100σ where the Gaussian
                gradient vanishes; starting wide and tightening restores
                the training signal without changing the converged
                semantics.
        """
        r = self.residual(X)
        if self.kind is AtomicKind.EQ:
            return gaussian_equality(r, self.config.sigma * relax_scale)
        return pbqu_ge(r, self.config.c1 * relax_scale, self.config.c2)

    def prune(self, threshold: float) -> bool:
        """Drop mask entries whose scaled weight is below ``threshold``.

        Returns True when anything was pruned.  At least two terms are
        always kept so the unit can still express a constraint.
        """
        w = self.weight_numpy()
        top = np.abs(w).max()
        if top == 0.0:
            return False
        scaled = np.abs(w) / top
        candidates = self.mask & (scaled < threshold)
        if not candidates.any():
            return False
        if (self.mask.sum() - candidates.sum()) < 2:
            return False
        # In place: the mask arrays may be row views into the parent
        # model's stacked matrices, and the mask-value tensor may be a
        # leaf of a recorded tape (replay picks the update up).
        new_mask = self.mask & ~candidates
        self.mask[...] = new_mask
        self._mask_tensor.data[...] = new_mask.astype(np.float64)
        self.weight.data[~new_mask] = 0.0
        return True

    def weight_numpy(self) -> np.ndarray:
        """Effective (masked/normalized) weights as a numpy vector."""
        w = self.weight.data * self.mask
        if self.config.weight_regularization:
            norm = float(np.sqrt((w**2).sum()) + 1e-12)
            w = w / norm
        return w


class GCLN:
    """Gated CLN over a fixed term basis.

    Attributes:
        clauses: ``n_clauses`` lists of atomic units (the OR groups).
        or_gates: per-clause, per-literal gate parameters in [0, 1].
        and_gates: per-clause gate parameters in [0, 1].
    """

    def __init__(
        self,
        n_terms: int,
        config: GCLNConfig,
        rng: np.random.Generator,
        units: Sequence[Sequence[AtomicUnit]] | None = None,
        kind: AtomicKind = AtomicKind.EQ,
        protected_terms: Sequence[int] = (),
        term_weights: np.ndarray | None = None,
    ):
        """
        Args:
            n_terms: number of candidate terms (input width).
            config: hyperparameters.
            rng: RNG for dropout masks and weight initialization.
            units: pre-built clause structure; when ``None``, builds
                ``config.n_clauses`` clauses of ``literals_per_clause``
                equality units with random dropout.
            kind: activation family used when auto-building units.
            protected_terms: term indices never dropped (e.g. the
                constant column stays available to every unit).
            term_weights: relative keep-probability per term during
                dropout; benchmark invariants overwhelmingly use
                low-degree few-variable monomials, so the pipeline
                passes weights decaying with term complexity.
        """
        self.config = config
        self.n_terms = n_terms
        # Scale clause count with basis size: large bases need more
        # dropout lottery tickets for some unit to isolate an invariant.
        n_clauses = max(config.n_clauses, min(3 * config.n_clauses, n_terms))
        if units is None:
            units = [
                [
                    AtomicUnit(
                        kind,
                        _random_mask(
                            n_terms,
                            config.dropout_rate,
                            rng,
                            protected_terms,
                            config.max_kept_terms,
                            term_weights,
                        ),
                        rng,
                        config,
                    )
                    for _ in range(config.literals_per_clause)
                ]
                for _ in range(n_clauses)
            ]
        self.clauses: list[list[AtomicUnit]] = [list(group) for group in units]
        if not self.clauses:
            raise TrainingError("G-CLN needs at least one clause")
        self.and_gates = Tensor(np.full(len(self.clauses), 0.95), requires_grad=True)
        self._stack_units()

    def _stack_units(self) -> None:
        """Stack all unit weights/masks into (units, terms) matrices.

        The stacked tensors are the parameters the batched training
        path optimizes; each unit's ``weight``/``mask`` are rebound to
        row views, so the per-unit eager path (extraction, pruning,
        legacy training) shares the same storage with no syncing.  OR
        gates stack the same way when every clause has the same literal
        count (always true for auto-built models).
        """
        flat = [unit for group in self.clauses for unit in group]
        self.units_flat: list[AtomicUnit] = flat
        self.unit_masks = np.stack([u.mask for u in flat])
        self.unit_weights = Tensor(
            np.stack([u.weight.data for u in flat]), requires_grad=True
        )
        self._unit_mask_tensor = Tensor(self.unit_masks.astype(np.float64))
        for i, unit in enumerate(flat):
            unit.bind_row(
                self.unit_weights.data[i],
                self.unit_masks[i],
                self._unit_mask_tensor.data[i],
            )
        sizes = {len(group) for group in self.clauses}
        self.uniform_literals = len(sizes) == 1
        if self.uniform_literals:
            per_clause = next(iter(sizes))
            stacked = np.full((len(self.clauses), per_clause), 0.95)
            self.or_gates_stacked: Tensor | None = Tensor(
                stacked, requires_grad=True
            )
            self.or_gates = [
                Tensor(self.or_gates_stacked.data[i], requires_grad=True)
                for i in range(len(self.clauses))
            ]
        else:
            self.or_gates_stacked = None
            self.or_gates = [
                Tensor(np.full(len(group), 0.95), requires_grad=True)
                for group in self.clauses
            ]

    # -- forward ---------------------------------------------------------

    def clause_values(self, X: Tensor, relax_scale: float = 1.0) -> Tensor:
        """Stack of clause truth values, shape (samples, n_clauses)."""
        outputs = []
        for group, gates in zip(self.clauses, self.or_gates):
            literals = stack(
                [unit.forward(X, relax_scale) for unit in group], axis=1
            )
            outputs.append(gated_tconorm(literals, gates, axis=1))
        return stack(outputs, axis=1)

    def forward(self, X: Tensor, relax_scale: float = 1.0) -> Tensor:
        """Model output M(x) per sample, shape (samples,)."""
        values = self.clause_values(X, relax_scale)
        return gated_tnorm(values, self.and_gates, axis=1)

    # -- batched forward ------------------------------------------------------

    def batched_capable(self) -> bool:
        """Can this model run the stacked (units, terms) forward?

        Requires a uniform literal count per clause (for the reshape
        into ``(samples, clauses, literals)``) and a single activation
        family across units.  Auto-built equality models and structured
        inequality models both qualify; hand-assembled ragged or mixed
        models fall back to the per-unit eager path.
        """
        kinds = {unit.kind for unit in self.units_flat}
        return self.uniform_literals and len(kinds) == 1

    def stacked_effective_weights(self) -> Tensor:
        """Masked, optionally row-normalized (units, terms) weight matrix.

        Row i is exactly ``units_flat[i].effective_weight()`` — the
        epsilon and normalization must stay in lockstep with
        :meth:`AtomicUnit.effective_weight` for the batched and
        sequential paths to train identically.
        """
        w = self.unit_weights * self._unit_mask_tensor
        if self.config.weight_regularization:
            norm = ((w * w).sum(axis=1, keepdims=True) + 1e-12) ** 0.5
            w = w / norm
        return w

    def unit_residuals(self, X: Tensor) -> Tensor:
        """All units' linear responses at once, shape (samples, units)."""
        return X @ self.stacked_effective_weights().T

    def unit_activations(self, X: Tensor, sigma=None, c1=None, c2=None) -> Tensor:
        """Batched unit truth values, shape (samples, units).

        ``sigma``/``c1``/``c2`` may be floats or 0-d numpy boxes (for
        tape-compatible annealing); defaults come from the config.
        """
        kinds = {unit.kind for unit in self.units_flat}
        if len(kinds) != 1:
            raise TrainingError("unit_activations requires a single unit kind")
        residuals = self.unit_residuals(X)
        if next(iter(kinds)) is AtomicKind.EQ:
            return gaussian_equality(
                residuals, self.config.sigma if sigma is None else sigma
            )
        return pbqu_ge(
            residuals,
            self.config.c1 if c1 is None else c1,
            self.config.c2 if c2 is None else c2,
        )

    def forward_batched(self, X: Tensor, sigma=None, c1=None) -> Tensor:
        """Model output M(x) via the stacked forward, shape (samples,).

        Callers must check :meth:`batched_capable` first.  A whole
        epoch's forward is ~10 graph nodes: mask/normalize, one matmul,
        one fused activation, one reshape, and two fused gated t-norms.
        """
        acts = self.unit_activations(X, sigma=sigma, c1=c1)
        values = acts.reshape(
            acts.shape[0], len(self.clauses), len(self.clauses[0])
        )
        clause = gated_tconorm(values, self.or_gates_stacked, axis=2)
        return gated_tnorm(clause, self.and_gates, axis=1)

    def stack_signature(self) -> tuple:
        """Key under which models may train together in one model stack.

        Two models with equal signatures build structurally identical
        loss graphs whose training dynamics (activation constants,
        schedules, regularizers, pruning) coincide, so their parameter
        tensors can share one ``(models, units, terms)`` stack.  Dropout
        masks and weight initializations are data, not structure, and
        deliberately stay out of the key.
        """
        c = self.config
        return (
            self.units_flat[0].kind.value,
            self.unit_weights.data.shape,
            None if self.or_gates_stacked is None else self.or_gates_stacked.data.shape,
            self.and_gates.data.shape,
            c.sigma, c.c1, c.c2, c.anneal_init,
            c.learning_rate, c.lr_decay,
            c.lambda1_schedule, c.lambda2_schedule,
            c.weight_l1, c.weight_regularization,
            c.prune_interval, c.prune_threshold, c.max_epochs,
            c.warm_start, c.seed_period,
        )

    def rebind_storage(
        self,
        weights: np.ndarray,
        masks: np.ndarray,
        mask_values: np.ndarray,
        and_gates: np.ndarray,
        or_gates: np.ndarray,
    ) -> None:
        """Rebind all parameter storage onto caller-owned arrays.

        The arrays are typically slice views into a :class:`GCLNStack`'s
        ``(models, ...)`` super-stack and must already hold this model's
        current values (the caller copies them in).  After rebinding,
        every existing code path — eager forward, extraction, pruning,
        gate projection — reads and writes the caller's memory, exactly
        as :meth:`_stack_units` does for per-unit row views.
        """
        if weights.shape != self.unit_weights.data.shape:
            raise TrainingError(
                f"rebind shape mismatch: {weights.shape} vs "
                f"{self.unit_weights.data.shape}"
            )
        self.unit_weights = Tensor(weights, requires_grad=True)
        self.unit_masks = masks
        self._unit_mask_tensor = Tensor(mask_values)
        self.and_gates = Tensor(and_gates, requires_grad=True)
        for i, unit in enumerate(self.units_flat):
            unit.bind_row(weights[i], masks[i], mask_values[i])
        self.or_gates_stacked = Tensor(or_gates, requires_grad=True)
        self.or_gates = [
            Tensor(self.or_gates_stacked.data[i], requires_grad=True)
            for i in range(len(self.clauses))
        ]

    # -- parameters ----------------------------------------------------------

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = [self.and_gates]
        params.extend(self.or_gates)
        for group in self.clauses:
            for unit in group:
                params.append(unit.weight)
        return params

    def parameters_batched(self) -> list[Tensor]:
        """The stacked parameters the vectorized trainers optimize.

        Elementwise they are exactly :meth:`parameters` (the per-unit
        tensors are row views of the stacked ones), so Adam and global
        gradient clipping behave identically on either set.
        """
        gates: list[Tensor] = [self.and_gates]
        if self.or_gates_stacked is not None:
            gates.append(self.or_gates_stacked)
        else:
            gates.extend(self.or_gates)
        return [*gates, self.unit_weights]

    def gate_parameters(self) -> list[Tensor]:
        return [self.and_gates, *self.or_gates]

    def project_gates(self) -> None:
        """Clip all gate parameters back into [0, 1] after an update."""
        np.clip(self.and_gates.data, 0.0, 1.0, out=self.and_gates.data)
        if self.or_gates_stacked is not None:
            data = self.or_gates_stacked.data
            np.clip(data, 0.0, 1.0, out=data)
        else:
            for g in self.or_gates:
                np.clip(g.data, 0.0, 1.0, out=g.data)

    def gates_saturated(self, tolerance: float = 0.05) -> bool:
        """True when every gate is within ``tolerance`` of 0 or 1."""
        def ok(arr: np.ndarray) -> bool:
            return bool(np.all((arr < tolerance) | (arr > 1.0 - tolerance)))

        return ok(self.and_gates.data) and all(ok(g.data) for g in self.or_gates)


def _random_mask(
    n_terms: int,
    dropout_rate: float,
    rng: np.random.Generator,
    protected: Sequence[int],
    max_kept: int = 0,
    term_weights: np.ndarray | None = None,
) -> np.ndarray:
    """Keep-mask for term dropout; guarantees at least two kept terms.

    Terms survive an (optionally weighted) Bernoulli draw with keep
    probability ``(1 - dropout_rate) * weight``; with ``max_kept`` > 0,
    at most that many non-protected survivors stay (sampled without
    replacement, again weighted).
    """
    keep_prob = np.full(n_terms, 1.0 - dropout_rate)
    if term_weights is not None:
        keep_prob = keep_prob * np.clip(term_weights, 0.0, 1.0)
    while True:
        mask = rng.random(n_terms) < keep_prob
        if max_kept > 0:
            kept = np.flatnonzero(mask)
            if len(kept) > max_kept:
                weights = (
                    term_weights[kept]
                    if term_weights is not None
                    else np.ones(len(kept))
                )
                weights = weights / weights.sum()
                chosen = rng.choice(
                    kept, size=max_kept, replace=False, p=weights
                )
                mask[:] = False
                mask[chosen] = True
        for idx in protected:
            mask[idx] = True
        if mask.sum() >= min(2, n_terms):
            return mask


def complexity_term_weights(
    degrees: Sequence[int], variable_counts: Sequence[int]
) -> np.ndarray:
    """Dropout keep-weights decaying with monomial degree.

    Weight ``2^-(degree - 1)`` for non-constant terms: plain variables
    get 1, quadratics (squares and two-variable products alike) 1/2,
    cubics 1/4.  The NLA invariants' supports are dominated by
    low-degree monomials, which is what makes this prior effective;
    ``variable_counts`` is accepted for future variants but unused.
    """
    del variable_counts
    weights = np.ones(len(degrees))
    for j, deg in enumerate(degrees):
        if deg == 0:
            continue
        weights[j] = 2.0 ** (-(deg - 1))
    return weights


class GCLNStack:
    """R independent G-CLN models stacked along a leading ``models`` axis.

    The cross-problem generalization of :meth:`GCLN._stack_units`: all
    models' parameters live in ``(models, units, terms)`` /
    ``(models, clauses[, literals])`` super-tensors, and each model's
    own tensors are rebound to slice views of them.  One stacked
    forward then trains every model in a handful of numpy calls —
    bitwise-identical per slice to the per-model batched forward,
    because every stacked op (batched matmul, leading-axis reductions,
    elementwise kernels) reduces to the same per-slice operations.

    Requires every model to be :meth:`GCLN.batched_capable` and to
    share one :meth:`GCLN.stack_signature`.
    """

    def __init__(self, models: Sequence[GCLN]):
        if not models:
            raise TrainingError("GCLNStack needs at least one model")
        signature = models[0].stack_signature()
        for model in models:
            if not model.batched_capable():
                raise TrainingError(
                    "all stacked models must be batched-capable"
                )
            if model.stack_signature() != signature:
                raise TrainingError(
                    "models with different stack signatures cannot share "
                    "a model stack; group by GCLN.stack_signature() first"
                )
        self.models = list(models)
        self.config = models[0].config
        self.kind = models[0].units_flat[0].kind
        self.n_clauses = len(models[0].clauses)
        self.literals = len(models[0].clauses[0])

        weights = np.stack([m.unit_weights.data for m in models])
        masks = np.stack([m.unit_masks for m in models])
        mask_values = masks.astype(np.float64)
        and_gates = np.stack([m.and_gates.data for m in models])
        or_gates = np.stack([m.or_gates_stacked.data for m in models])
        # The bool super-stack (models' unit_masks become row views of
        # it); the tape pool copies fresh masks into it on reuse.
        self.unit_masks = masks
        self.unit_weights = Tensor(weights, requires_grad=True)
        self._unit_mask_tensor = Tensor(mask_values)
        self.and_gates = Tensor(and_gates, requires_grad=True)
        self.or_gates = Tensor(or_gates, requires_grad=True)
        for i, model in enumerate(models):
            model.rebind_storage(
                weights[i],
                masks[i],
                self._unit_mask_tensor.data[i],
                and_gates[i],
                or_gates[i],
            )

    def __len__(self) -> int:
        return len(self.models)

    def stacked_effective_weights(self) -> Tensor:
        """Masked, optionally slice-normalized (models, units, terms).

        Slice m is exactly ``models[m].stacked_effective_weights()``.
        """
        w = self.unit_weights * self._unit_mask_tensor
        if self.config.weight_regularization:
            norm = ((w * w).sum(axis=2, keepdims=True) + 1e-12) ** 0.5
            w = w / norm
        return w

    def unit_activations(self, X: Tensor, sigma=None, c1=None) -> Tensor:
        """All models' unit truth values, shape (models, samples, units).

        ``X`` is the stacked (models, samples, terms) data tensor;
        ``sigma``/``c1`` may be floats or 0-d boxes shared across the
        stack (models only stack when their annealing schedules agree).
        """
        residuals = X @ self.stacked_effective_weights().swapaxes(1, 2)
        if self.kind is AtomicKind.EQ:
            return gaussian_equality(
                residuals, self.config.sigma if sigma is None else sigma
            )
        return pbqu_ge(
            residuals,
            self.config.c1 if c1 is None else c1,
            self.config.c2,
        )

    def forward_stacked(self, X: Tensor, sigma=None, c1=None) -> Tensor:
        """All models' outputs M_m(x), shape (models, samples)."""
        acts = self.unit_activations(X, sigma=sigma, c1=c1)
        n_models, n_samples = acts.shape[0], acts.shape[1]
        values = acts.reshape(
            n_models, n_samples, self.n_clauses, self.literals
        )
        or_g = self.or_gates.reshape(n_models, 1, self.n_clauses, self.literals)
        clause = gated_tconorm(values, or_g, axis=3)
        and_g = self.and_gates.reshape(n_models, 1, self.n_clauses)
        return gated_tnorm(clause, and_g, axis=2)


def structured_inequality_units(
    term_variable_sets: Sequence[frozenset[str]],
    term_degrees: Sequence[int],
    variables: Sequence[str],
    config: GCLNConfig,
    rng: np.random.Generator,
) -> list[list[AtomicUnit]]:
    """Build GE units over all small variable subsets (§5.2.2).

    One single-literal clause per subset of at most ``max_ineq_vars``
    variables; the unit's mask keeps the constant term plus every
    candidate monomial of degree <= ``ineq_degree`` whose variables all
    lie in the subset.

    Args:
        term_variable_sets: per term, the set of variables it mentions.
        term_degrees: per term, its total degree.
        variables: the loop's variable names.
        config: hyperparameters.
        rng: weight-init RNG.
    """
    n_terms = len(term_variable_sets)
    units: list[list[AtomicUnit]] = []
    subsets: list[frozenset[str]] = []
    for size in range(1, config.max_ineq_vars + 1):
        subsets.extend(frozenset(c) for c in combinations(variables, size))
    for subset in subsets:
        mask = np.zeros(n_terms, dtype=bool)
        for j in range(n_terms):
            if term_degrees[j] > config.ineq_degree:
                continue
            if term_variable_sets[j] <= subset:
                mask[j] = True
        # Need at least one non-constant term to express a bound.
        nonconstant = [
            j for j in range(n_terms) if mask[j] and term_variable_sets[j]
        ]
        if not nonconstant:
            continue
        for _ in range(max(1, config.ineq_restarts)):
            units.append([AtomicUnit(AtomicKind.GE, mask.copy(), rng, config)])
    return units
