"""G-CLN loss (§5.2.1).

    L(X; W, G) = Σ_x (1 - M(x))
               + λ1 Σ_{g in gated t-norms} (1 - g)
               + λ2 Σ_{g in gated t-conorms} g

The first term drives the model output to 1 on every sample; λ1 keeps
conjunction gates from collapsing to 0 (which would satisfy everything
vacuously); λ2 keeps disjunction gates from saturating at 1 (which
would make every clause trivially satisfiable by its loosest literal).
Both λ schedules adapt during training (see ``train.GateSchedule``).

Two implementations share the math:

* :func:`build_gcln_loss_batched` — the vectorized builder the training
  loops tape and replay.  λ values arrive as leaf tensors and σ/c1 as
  0-d numpy boxes, all updated in place by the schedule, so a recorded
  tape stays valid across epochs.
* :func:`gcln_loss` — the float-argument wrapper (tests, one-off eager
  evaluation); it dispatches to the batched builder when the model
  supports it and otherwise walks units eagerly.
"""

from __future__ import annotations

from repro.autodiff.tensor import Tensor
from repro.cln.model import GCLN, GCLNStack


def build_gcln_loss_stacked(
    stack: GCLNStack,
    X: Tensor,
    lam1: Tensor,
    lam2: Tensor,
    sigma,
    c1,
) -> Tensor:
    """Per-model loss vector through the models-stacked forward.

    The cross-problem counterpart of :func:`build_gcln_loss_batched`:
    one graph evaluates every model in the stack on its *own* data
    matrix (``X`` is the stacked ``(models, samples, terms)`` leaf) and
    returns the ``(models,)`` loss vector, whose entry m is built by
    the same op sequence — hence bitwise-equal — as the solo scalar
    loss of model m.  Callers root the tape at ``loss_vec.sum()``;
    since the total is a sum of per-model terms, each model's gradient
    slice is exactly its solo gradient.

    Args:
        stack: the model stack.
        X: stacked data leaf, one matrix per model, updated in place
            between recordings if reused.
        lam1: per-model λ1 vector leaf (active slots updated in place).
        lam2: per-model λ2 vector leaf.
        sigma: annealed σ (float or 0-d box), shared — models only
            stack when their annealing schedules agree.
        c1: annealed c1 (float or 0-d box), shared.
    """
    n_models = len(stack)
    output = stack.forward_stacked(X, sigma=sigma, c1=c1)
    data_term = (1.0 - output).sum(axis=1)
    and_term = (1.0 - stack.and_gates).sum(axis=1)
    or_term = stack.or_gates.reshape(n_models, -1).sum(axis=1)
    loss = data_term + lam1 * and_term + lam2 * or_term
    if stack.config.weight_l1 > 0.0:
        l1 = (
            stack.stacked_effective_weights()
            .abs()
            .reshape(n_models, -1)
            .sum(axis=1)
        )
        loss = loss + stack.config.weight_l1 * l1
    return loss


def build_gcln_loss_batched(
    model: GCLN,
    X: Tensor,
    lam1: Tensor,
    lam2: Tensor,
    sigma,
    c1,
) -> Tensor:
    """The full loss through the stacked forward (~15 graph nodes).

    Args:
        model: a :meth:`GCLN.batched_capable` model.
        X: normalized data tensor.
        lam1: λ1 as a (non-grad) leaf tensor, updated in place.
        lam2: λ2 leaf tensor.
        sigma: annealed σ (float or 0-d box).
        c1: annealed c1 (float or 0-d box).
    """
    output = model.forward_batched(X, sigma=sigma, c1=c1)
    data_term = (1.0 - output).sum()
    and_term = (1.0 - model.and_gates).sum()
    loss = data_term + lam1 * and_term + lam2 * model.or_gates_stacked.sum()
    if model.config.weight_l1 > 0.0:
        l1 = model.stacked_effective_weights().abs().sum()
        loss = loss + model.config.weight_l1 * l1
    return loss


def gcln_loss(
    model: GCLN,
    X: Tensor,
    lambda1: float,
    lambda2: float,
    relax_scale: float = 1.0,
) -> Tensor:
    """Compute the training loss on a full batch (eager, float knobs)."""
    if model.config.vectorized and model.batched_capable():
        return build_gcln_loss_batched(
            model,
            X,
            Tensor(lambda1),
            Tensor(lambda2),
            model.config.sigma * relax_scale,
            model.config.c1 * relax_scale,
        )
    output = model.forward(X, relax_scale)
    data_term = (1.0 - output).sum()
    and_term = (1.0 - model.and_gates).sum()
    or_term = None
    for gates in model.or_gates:
        or_term = gates.sum() if or_term is None else or_term + gates.sum()
    loss = data_term + lambda1 * and_term
    if or_term is not None:
        loss = loss + lambda2 * or_term
    if model.config.weight_l1 > 0.0:
        l1 = None
        for group in model.clauses:
            for unit in group:
                term = unit.effective_weight().abs().sum()
                l1 = term if l1 is None else l1 + term
        if l1 is not None:
            loss = loss + model.config.weight_l1 * l1
    return loss


class GateSchedule:
    """Adaptive λ schedule: value ← value * multiplier, clamped at bound.

    The paper sets λ1 = (1.0, ×0.999 per epoch, floor 0.1) and
    λ2 = (0.001, ×1.001 per epoch, ceiling 0.1).
    """

    def __init__(self, initial: float, multiplier: float, bound: float):
        self.value = initial
        self.multiplier = multiplier
        self.bound = bound

    def step(self) -> float:
        current = self.value
        nxt = self.value * self.multiplier
        if self.multiplier < 1.0:
            self.value = max(nxt, self.bound)
        else:
            self.value = min(nxt, self.bound)
        return current
