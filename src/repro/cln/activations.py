"""CLN activation functions: predicate relaxations (§2.3, §4.2).

Three families:

* ``gaussian_equality`` — the Gaussian relaxation of ``t = 0`` from the
  original CLN paper, ``exp(-t^2 / 2σ^2)``.
* ``pbqu_ge`` — the Piecewise Biased Quadratic Unit introduced by this
  paper for ``t >= 0``:

      S(t >= 0) = c1^2 / (t^2 + c1^2)   if t < 0   (sharp penalty)
                = c2^2 / (t^2 + c2^2)   if t >= 0  (slow decay)

  With small c1 and large c2 this approaches the discrete predicate
  while still *penalizing loose fits* — points far above the bound get
  truth value below 1, which is what drives the model toward tight
  bounds (Theorem 4.2).
* ``sigmoid_ge`` — the original CLN sigmoid relaxation of ``>=`` with
  shift ε and sharpness B, kept for comparison (Fig. 7a) and for the
  plain-CLN stability baseline.

Numpy twins (``*_numpy``) are provided for plotting benches and for
fast no-grad evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.functional import gaussian, pbqu, sigmoid
from repro.autodiff.tensor import Tensor


def gaussian_equality(t: Tensor, sigma=0.1) -> Tensor:
    """Relaxation of ``t == 0``; 1 exactly at t = 0, decaying in |t|.

    ``sigma`` may be a float or a 0-d numpy box annealed in place.
    """
    return gaussian(t, sigma)


def pbqu_ge(t: Tensor, c1=1.0, c2=50.0) -> Tensor:
    """PBQU relaxation of ``t >= 0`` (Eq. 3 of the paper).

    Args:
        t: residual values (already ``lhs - rhs``).
        c1: below-bound sharpness (small = strong violation penalty).
        c2: above-bound tolerance (large = slow decay above the bound).

    One fused, tape-replayable graph node; ``c1``/``c2`` may be floats
    or 0-d numpy boxes annealed in place.
    """
    return pbqu(t, c1, c2)


def pbqu_le(t: Tensor, c1=1.0, c2=50.0) -> Tensor:
    """PBQU relaxation of ``t <= 0`` (mirror of :func:`pbqu_ge`)."""
    return pbqu(-t, c1, c2)


def sigmoid_ge(t: Tensor, B: float = 5.0, eps: float = 0.5) -> Tensor:
    """Original CLN relaxation of ``t >= 0``: ``σ(B(t + ε))``."""
    return sigmoid((t + eps) * B)


def sigmoid_gt(t: Tensor, B: float = 5.0, eps: float = 0.5) -> Tensor:
    """Original CLN relaxation of ``t > 0``: ``σ(B(t - ε))``."""
    return sigmoid((t - eps) * B)


# -- numpy twins (no autodiff graph) ---------------------------------------


def gaussian_equality_numpy(t: np.ndarray, sigma: float = 0.1) -> np.ndarray:
    return np.exp(-(np.asarray(t, dtype=np.float64) ** 2) / (2.0 * sigma**2))


def pbqu_ge_numpy(t: np.ndarray, c1: float = 1.0, c2: float = 50.0) -> np.ndarray:
    t = np.asarray(t, dtype=np.float64)
    below = (c1 * c1) / (t * t + c1 * c1)
    above = (c2 * c2) / (t * t + c2 * c2)
    return np.where(t >= 0.0, above, below)


def sigmoid_ge_numpy(t: np.ndarray, B: float = 5.0, eps: float = 0.5) -> np.ndarray:
    t = np.asarray(t, dtype=np.float64)
    z = np.clip(B * (t + eps), -500, 500)
    return 1.0 / (1.0 + np.exp(-z))
