"""T-norms, t-conorms, and their gated variants (§2.2, §4.1).

All functions operate on :class:`~repro.autodiff.tensor.Tensor` values
holding continuous truth values in [0, 1].  The gated t-norm

    T_G(x1..xk; g1..gk) = prod_i (1 + g_i * (x_i - 1))

reduces to the product t-norm when all gates are 1 and ignores input i
when g_i = 0; the gated t-conorm is its De Morgan dual

    T'_G(x1..xk; g1..gk) = 1 - prod_i (1 - g_i * x_i).

Both are continuous and monotone in the inputs and gates, which is what
makes them trainable (Theorem 4.1 gives soundness when gates converge
to {0, 1}).
"""

from __future__ import annotations

from repro.autodiff.functional import (
    fused_gated_tconorm,
    fused_gated_tnorm,
    maximum,
    minimum,
)
from repro.autodiff.tensor import Tensor


def product_tnorm(values: Tensor, axis: int = -1) -> Tensor:
    """Product t-norm ``x ⊗ y = x*y`` reduced along ``axis``."""
    axis = axis if axis >= 0 else values.ndim + axis
    return values.prod(axis=axis)


def product_tconorm(values: Tensor, axis: int = -1) -> Tensor:
    """Product t-conorm ``x ⊕ y = 1 - (1-x)(1-y)`` along ``axis``."""
    axis = axis if axis >= 0 else values.ndim + axis
    return 1.0 - (1.0 - values).prod(axis=axis)


def godel_tnorm(x: Tensor, y: Tensor) -> Tensor:
    """Gödel t-norm ``min(x, y)`` (kept for the t-norm ablation)."""
    return minimum(x, y)


def godel_tconorm(x: Tensor, y: Tensor) -> Tensor:
    """Gödel t-conorm ``max(x, y)``."""
    return maximum(x, y)


def gated_tnorm(values: Tensor, gates: Tensor, axis: int = -1) -> Tensor:
    """Gated t-norm over ``values`` with broadcastable ``gates``.

    With the product t-norm this is ``prod(1 + g*(v - 1))`` along
    ``axis``; gate 1 passes the value through, gate 0 contributes the
    t-norm identity 1.  Implemented as one fused, tape-replayable
    graph node (see :func:`repro.autodiff.functional.fused_gated_tnorm`).
    """
    return fused_gated_tnorm(values, gates, axis=axis)


def gated_tconorm(values: Tensor, gates: Tensor, axis: int = -1) -> Tensor:
    """Gated t-conorm: ``1 - prod(1 - g*v)`` along ``axis``.

    Gate 1 passes the value through, gate 0 contributes the t-conorm
    identity 0.  One fused graph node.
    """
    return fused_gated_tconorm(values, gates, axis=axis)
