"""Formula extraction from a trained G-CLN (Algorithm 1, §4.1).

Walks the gated conjunction-of-disjunctions structure keeping branches
whose gates exceed 0.5; each surviving atomic unit's weights are scaled
so the largest is 1, rounded to rationals with bounded denominator
(trying max denominators 10, 15, 30 as in §6), and the resulting
integer-coefficient atom is validated *exactly* against the raw
(unnormalized, rational) training samples.  Invalid candidates are
discarded, exactly as the paper prescribes.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.poly.polynomial import Polynomial
from repro.sampling.termgen import TermBasis, extend_state
from repro.smt.formula import TRUE, And, Atom, Formula, Or
from repro.smt.simplify import simplify
from repro.utils.rational import round_coefficient_vector
from repro.cln.model import GCLN, AtomicKind, AtomicUnit

Validator = Callable[[Polynomial, str], bool]


def _extend_exact(
    states: Sequence[Mapping[str, object]], basis: TermBasis
) -> list[dict[str, Fraction]]:
    extended: list[dict[str, Fraction]] = []
    for state in states:
        ext = extend_state(state, basis.externals) if basis.externals else dict(state)
        extended.append({k: Fraction(v) for k, v in ext.items()})
    return extended


def make_exact_validator(
    states: Sequence[Mapping[str, object]],
    basis: TermBasis,
) -> Validator:
    """Build a validator checking atoms exactly on the raw samples."""
    extended = _extend_exact(states, basis)

    def validate(poly: Polynomial, op: str) -> bool:
        for assignment in extended:
            value = poly.evaluate(assignment)
            if op == "==" and value != 0:
                return False
            if op == ">=" and value < 0:
                return False
            if op == "<=" and value > 0:
                return False
        return True

    return validate


def make_touch_checker(
    states: Sequence[Mapping[str, object]],
    basis: TermBasis,
) -> Callable[[Polynomial], bool]:
    """Check the 'desired inequality' condition (Eq. 4 of the paper).

    A learned bound should hold with equality on at least one sample;
    bounds that never touch the data are loose fits (e.g. globally
    positive quadratics) and are discarded.
    """
    extended = _extend_exact(states, basis)

    def touches(poly: Polynomial) -> bool:
        return any(poly.evaluate(assignment) == 0 for assignment in extended)

    return touches


def _round_and_validate(
    weights: np.ndarray,
    mask_idx: Sequence[int],
    basis: TermBasis,
    validator: Validator,
    max_denominators: Sequence[int],
    kind: AtomicKind,
    touch: Callable[[Polynomial], bool] | None,
) -> Atom | None:
    """Round a weight vector to integer coefficients and validate.

    Following the paper's extraction, the vector is rescaled before
    rounding; besides the max-magnitude reference we rescale by *each*
    significant weight in turn, which rescues directions whose largest
    coordinate converged slightly off (e.g. 0.94 instead of 1).
    """
    top = float(np.abs(weights).max()) if len(weights) else 0.0
    if top == 0.0 or not np.isfinite(top):
        return None
    references = [float(np.abs(weights).max())]
    references.extend(
        float(abs(w)) for w in weights if 0.3 * top <= abs(w) < top
    )
    tried: set[tuple] = set()
    for reference in references:
        scaled = weights / reference
        for max_den in max_denominators:
            coeffs = round_coefficient_vector(list(scaled), max_den)
            if coeffs is None:
                continue
            key = tuple(coeffs)
            if key in tried:
                continue
            tried.add(key)
            poly = Polynomial(
                {basis.monomials[i]: c for i, c in zip(mask_idx, coeffs)}
            )
            if poly.is_zero() or poly.is_constant():
                continue
            if kind is AtomicKind.EQ:
                if validator(poly, "=="):
                    return Atom(poly.primitive(), "==")
            else:
                # PBQU learns w·x >= 0; the sign of the learned weights
                # already orients the bound.
                for oriented in (poly, -poly):
                    if validator(oriented, ">=") and (
                        touch is None or touch(oriented)
                    ):
                        return Atom(oriented.primitive(preserve_sign=True), ">=")
    return None


def unit_to_atom(
    unit: AtomicUnit,
    basis: TermBasis,
    validator: Validator,
    max_denominators: Sequence[int],
    data: np.ndarray | None = None,
    activation_threshold: float = 0.0,
    touch: Callable[[Polynomial], bool] | None = None,
) -> Atom | None:
    """BuildAtomicFormula: recover a validated atom from one unit.

    Args:
        unit: trained atomic unit.
        basis: term basis giving each weight's monomial.
        validator: exact data-fit check.
        max_denominators: denominators to try, in order.
        data: normalized data matrix; when given with a positive
            ``activation_threshold``, units whose mean activation is
            below the threshold are rejected (used to discard loose
            inequality bounds, §5.2.2).
        activation_threshold: minimum mean truth value.
        touch: tightness check for inequality atoms (Eq. 4).

    Returns:
        A validated :class:`Atom` or ``None``.
    """
    if data is not None and activation_threshold > 0.0:
        from repro.autodiff.tensor import Tensor, no_grad

        with no_grad():
            activation = unit.forward(Tensor(data)).data
        if float(activation.mean()) < activation_threshold:
            return None

    mask_idx = [int(i) for i in np.flatnonzero(unit.mask)]
    weights = unit.weight_numpy()[mask_idx]
    return _round_and_validate(
        weights, mask_idx, basis, validator, max_denominators, unit.kind, touch
    )


def refine_unit_atoms(
    unit: AtomicUnit,
    basis: TermBasis,
    exact_rows: list[list[Fraction]],
    validator: Validator,
    max_support: int = 8,
) -> list[Atom]:
    """Support-guided exact coefficient recovery for an equality unit.

    Training drives a unit's weight vector into the data's nullspace,
    but gradient descent often converges to a *mixture* of invariants
    whose real-valued coefficients do not round to small rationals.
    The learned magnitudes still identify which terms matter, so we
    take the top-k learned terms as a support and compute the exact
    rational nullspace of the data matrix restricted to that support:
    each nullspace vector is a clean equality holding on all samples.
    Directions far from the unit's learned weight subspace are
    rejected, keeping the recovery model-guided.

    This generalizes the paper's scale-and-round extraction; see
    DESIGN.md ("support-guided exact recovery").
    """
    from repro.poly.nullspace import rational_nullspace

    if unit.kind is not AtomicKind.EQ:
        return []
    mask_idx = [int(i) for i in np.flatnonzero(unit.mask)]
    weights = unit.weight_numpy()[mask_idx]
    if not len(weights):
        return []
    order = np.argsort(-np.abs(weights))
    top = float(np.abs(weights[order[0]]))
    if top == 0.0:
        return []
    atoms: list[Atom] = []
    seen: set[str] = set()

    def try_support(support: list[int]) -> None:
        rows = [[row[j] for j in support] for row in exact_rows]
        vectors = rational_nullspace(rows)
        if not vectors or len(vectors) > 4:
            return
        for vec in vectors:
            poly = Polynomial(
                {basis.monomials[j]: c for j, c in zip(support, vec)}
            )
            if poly.is_zero() or poly.is_constant():
                continue
            if not validator(poly, "=="):
                continue
            atom = Atom(poly.primitive(), "==")
            key = str(atom.poly)
            if key not in seen:
                seen.add(key)
                atoms.append(atom)

    for k in range(2, min(len(mask_idx), max_support) + 1):
        support_local = [int(i) for i in order[:k]]
        if abs(weights[support_local[-1]]) < 0.02 * top:
            break
        try_support([mask_idx[i] for i in support_local])
        if atoms:
            return atoms
    # Dead or collapsed units carry no magnitude information, but the
    # dropout mask itself is a small, biased support — exactly the
    # "dropout encourages simple invariants" effect of §5.1.3.
    if len(mask_idx) <= 12:
        try_support(list(mask_idx))
    return atoms


def extract_formula(
    model: GCLN,
    basis: TermBasis,
    states: Sequence[Mapping[str, object]],
    data: np.ndarray | None = None,
    gate_threshold: float = 0.5,
) -> Formula:
    """Algorithm 1: extract the CNF formula from a trained model."""
    validator = make_exact_validator(states, basis)
    touch = make_touch_checker(states, basis)
    exact_states = _extend_exact(states, basis)
    config = model.config
    clauses: list[Formula] = []
    for group, gates, and_gate in zip(
        model.clauses, model.or_gates, model.and_gates.data
    ):
        if and_gate <= gate_threshold:
            continue
        multi_literal = sum(1 for g in gates.data if g > gate_threshold) > 1
        literals: list[Formula] = []
        for unit, gate in zip(group, gates.data):
            if gate <= gate_threshold:
                continue
            atom = unit_to_atom(
                unit,
                basis,
                validator,
                config.max_denominators,
                data=data,
                activation_threshold=(
                    config.ineq_activation_threshold
                    if unit.kind is AtomicKind.GE
                    else 0.0
                ),
                touch=touch,
            )
            if atom is None and multi_literal:
                # A literal of a genuine disjunction need not fit every
                # sample individually — only the whole clause must.
                # Round permissively; clause-level validation follows.
                atom = unit_to_atom(
                    unit,
                    basis,
                    lambda _poly, _op: True,
                    config.max_denominators,
                )
            if atom is not None:
                literals.append(atom)
        if not literals:
            continue
        clause: Formula = Or(literals) if len(literals) > 1 else literals[0]
        if all(clause.evaluate(point) for point in exact_states):
            clauses.append(clause)
    if not clauses:
        return TRUE
    return simplify(And(clauses))


def extract_equalities(
    model: GCLN,
    basis: TermBasis,
    states: Sequence[Mapping[str, object]],
    refine: bool = True,
) -> list[Atom]:
    """All distinct validated equality atoms over every unit.

    Richer than Algorithm 1's gated walk: the pipeline unions these
    candidates and lets the specification check keep the sound subset,
    mirroring the paper's "check and discard" loop.  With ``refine``,
    units whose direct rounding fails go through support-guided exact
    recovery (:func:`refine_unit_atoms`).
    """
    validator = make_exact_validator(states, basis)
    exact_rows = None
    if refine:
        from repro.sampling.termgen import evaluate_terms_exact

        exact_rows = evaluate_terms_exact(states, basis)
    seen: set[str] = set()
    atoms: list[Atom] = []

    def add(atom: Atom) -> None:
        key = str(atom.poly)
        alt = str((-atom.poly).primitive())
        if key not in seen and alt not in seen:
            seen.add(key)
            atoms.append(atom)

    for group in model.clauses:
        for unit in group:
            if unit.kind is not AtomicKind.EQ:
                continue
            atom = unit_to_atom(
                unit, basis, validator, model.config.max_denominators
            )
            if atom is not None:
                add(atom)
            elif exact_rows is not None:
                for refined in refine_unit_atoms(
                    unit, basis, exact_rows, validator
                ):
                    add(refined)
    return atoms


def extract_inequalities(
    model: GCLN,
    basis: TermBasis,
    states: Sequence[Mapping[str, object]],
    data: np.ndarray,
) -> list[Atom]:
    """All distinct validated, tight inequality atoms over every unit."""
    validator = make_exact_validator(states, basis)
    touch = make_touch_checker(states, basis)
    seen: set[str] = set()
    atoms: list[Atom] = []
    for group in model.clauses:
        for unit in group:
            if unit.kind is not AtomicKind.GE:
                continue
            atom = unit_to_atom(
                unit,
                basis,
                validator,
                model.config.max_denominators,
                data=data,
                activation_threshold=model.config.ineq_activation_threshold,
                touch=touch,
            )
            if atom is None:
                continue
            key = str(atom.poly)
            if key in seen:
                continue
            seen.add(key)
            atoms.append(atom)
    return atoms
