"""Benchmark problem definitions.

* ``nla`` — the 27 nonlinear problems of Table 2 (NLA suite [22]),
  transcribed into the mini language with documented ground-truth
  invariants.
* ``code2inv`` — a generated suite of 124 linear-invariant problems
  standing in for the Code2Inv benchmark (§6.4; see DESIGN.md for the
  substitution rationale).
* ``stability`` — the six problems of the Table 4 stability study.

Every suite exposes a ``*_suite()`` accessor returning a flat
``list[Problem]`` so it can be fed directly to
:func:`repro.infer.runner.run_many`; :func:`suite_problems` dispatches
on a suite name (used by ``python -m repro run-all``).
"""

from repro.bench.nla import NLA_PROBLEMS, nla_problem, nla_suite
from repro.bench.code2inv import code2inv_problems, code2inv_suite
from repro.bench.stability import stability_problems, stability_suite
from repro.errors import ReproError
from repro.infer.problem import Problem

SUITES = ("nla", "code2inv", "stability")


def suite_problems(
    suite: str, names: list[str] | None = None
) -> list[Problem]:
    """Problems of one named suite, optionally filtered by name."""
    if suite == "nla":
        problems = nla_suite()
    elif suite == "code2inv":
        problems = code2inv_suite()
    elif suite == "stability":
        problems = stability_suite()
    else:
        raise ReproError(
            f"unknown suite {suite!r}; expected one of {', '.join(SUITES)}"
        )
    if names is not None:
        wanted = set(names)
        problems = [p for p in problems if p.name in wanted]
        missing = wanted - {p.name for p in problems}
        if missing:
            raise ReproError(
                f"unknown {suite} problem(s): {', '.join(sorted(missing))}"
            )
    return problems


__all__ = [
    "NLA_PROBLEMS",
    "nla_problem",
    "nla_suite",
    "code2inv_problems",
    "code2inv_suite",
    "stability_problems",
    "stability_suite",
    "suite_problems",
    "SUITES",
]
