"""Benchmark problem definitions.

* ``nla`` — the 27 nonlinear problems of Table 2 (NLA suite [22]),
  transcribed into the mini language with documented ground-truth
  invariants.
* ``code2inv`` — a generated suite of 124 linear-invariant problems
  standing in for the Code2Inv benchmark (§6.4; see DESIGN.md for the
  substitution rationale).
* ``stability`` — the six problems of the Table 4 stability study.
"""

from repro.bench.nla import NLA_PROBLEMS, nla_problem
from repro.bench.code2inv import code2inv_problems
from repro.bench.stability import stability_problems

__all__ = [
    "NLA_PROBLEMS",
    "nla_problem",
    "code2inv_problems",
    "stability_problems",
]
