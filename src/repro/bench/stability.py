"""The six stability-study problems (Table 4 of the paper).

Each problem provides a program, training inputs, and the target
invariant; the stability bench trains a single model (no retries) 20
times with randomized initialization and reports the convergence rate
for the plain CLN baseline vs. the G-CLN.
"""

from __future__ import annotations

from repro.infer.problem import Problem


def _conj_eq() -> Problem:
    """Conjunction of two linear equalities (the [30] Conj Eq example)."""
    source = """
program conj_eq;
input k;
assume (k >= 0);
i = 0; x = 0; y = 0;
while (i < k) { i = i + 1; x = x + 2; y = y + 3; }
assert (3 * x == 2 * y);
"""
    return Problem(
        name="conj_eq",
        source=source,
        train_inputs=[{"k": v} for v in range(0, 20)],
        max_degree=1,
        ground_truth={0: ["x == 2 * i", "y == 3 * i"]},
    )


def _disj_eq() -> Problem:
    """Disjunction (x - y = 0) || (x + y = 0) (the [30] Disj Eq example)."""
    source = """
program disj_eq;
input c, flag;
assume (flag >= 0);
assume (flag <= 1);
assume (c >= 1);
x = c; y = c;
if (flag == 1) { y = 0 - c; }
i = 0;
while (i < 8) { i = i + 1; x = 2 * x; y = 2 * y; }
assert ((x - y) * (x + y) == 0);
"""
    return Problem(
        name="disj_eq",
        source=source,
        train_inputs=[
            {"c": c, "flag": f} for c in range(1, 11) for f in (0, 1)
        ],
        max_degree=1,
        variables={0: ["x", "y"]},
        ground_truth={},
    )


def _code2inv_1() -> Problem:
    """Linear problem shaped like Code2Inv #1 (x/y counters to a bound)."""
    source = """
program code2inv_1;
input n;
assume (n >= 0);
x = 1; y = 0;
while (y < n) { x = x + y; y = y + 1; }
assert (2 * x == y * y - y + 2);
"""
    return Problem(
        name="code2inv_1",
        source=source,
        train_inputs=[{"n": v} for v in range(0, 24)],
        max_degree=2,
        ground_truth={0: ["2 * x == y * y - y + 2"]},
    )


def _code2inv_11() -> Problem:
    """Linear problem shaped like Code2Inv #11 (coupled counters)."""
    source = """
program code2inv_11;
input n;
assume (n >= 0);
i = 0; j = n; k = 0;
while (i < n) { i = i + 1; j = j - 1; k = k + 2; }
assert (i + j == n);
"""
    return Problem(
        name="code2inv_11",
        source=source,
        train_inputs=[{"n": v} for v in range(0, 24)],
        max_degree=1,
        ground_truth={0: ["i + j == n", "k == 2 * i"]},
    )


def stability_problems() -> dict[str, Problem]:
    """The Table 4 problems, keyed by the paper's row labels."""
    from repro.bench.nla import nla_problem

    return {
        "Conj Eq": _conj_eq(),
        "Disj Eq": _disj_eq(),
        "Code2Inv 1": _code2inv_1(),
        "Code2Inv 11": _code2inv_11(),
        "ps2": nla_problem("ps2"),
        "ps3": nla_problem("ps3"),
    }


def stability_suite() -> list["Problem"]:
    """The Table 4 problems as a flat list, for the batch runner."""
    return list(stability_problems().values())
