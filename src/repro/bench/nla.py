"""The 27 NLA benchmark problems (Table 2 of the paper).

Each problem is transcribed from the NLA suite [Nguyen et al. 2012]
into the mini language, with the documented polynomial invariants as
ground truth.  Input spaces are chosen so loops terminate in at most a
few dozen iterations (the paper samples a bounded input range too).

``nla_problem(name)`` builds a fresh :class:`~repro.infer.Problem`;
``NLA_PROBLEMS`` lists the names in Table 2 order with the paper's
degree / #vars metadata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError
from repro.infer.problem import Problem
from repro.sampling.termgen import ExternalTerm


@dataclass(frozen=True)
class NLAEntry:
    """Metadata for one Table 2 row."""

    name: str
    degree: int
    n_vars: int
    expected_solved: bool  # the paper's G-CLN column (knuth fails)


NLA_PROBLEMS: list[NLAEntry] = [
    NLAEntry("divbin", 2, 5, True),
    NLAEntry("cohendiv", 2, 6, True),
    NLAEntry("mannadiv", 2, 5, True),
    NLAEntry("hard", 2, 6, True),
    NLAEntry("sqrt1", 2, 4, True),
    NLAEntry("dijkstra", 2, 5, True),
    NLAEntry("cohencu", 3, 5, True),
    NLAEntry("egcd", 2, 8, True),
    NLAEntry("egcd2", 2, 11, True),
    NLAEntry("egcd3", 2, 13, True),
    NLAEntry("prodbin", 2, 5, True),
    NLAEntry("prod4br", 3, 6, True),
    NLAEntry("fermat1", 2, 5, True),
    NLAEntry("fermat2", 2, 5, True),
    NLAEntry("freire1", 2, 3, True),
    NLAEntry("freire2", 3, 4, True),
    NLAEntry("knuth", 3, 8, False),
    NLAEntry("lcm1", 2, 6, True),
    NLAEntry("lcm2", 2, 6, True),
    NLAEntry("geo1", 2, 5, True),
    NLAEntry("geo2", 2, 5, True),
    NLAEntry("geo3", 3, 6, True),
    NLAEntry("ps2", 2, 4, True),
    NLAEntry("ps3", 3, 4, True),
    NLAEntry("ps4", 4, 4, True),
    NLAEntry("ps5", 5, 4, True),
    NLAEntry("ps6", 6, 4, True),
]


def _grid(**ranges) -> list[dict[str, object]]:
    """Cartesian product of named ranges as input assignments."""
    names = list(ranges)
    out: list[dict[str, object]] = [{}]
    for name in names:
        out = [dict(d, **{name: v}) for d in out for v in ranges[name]]
    return out


def _isqrt_pairs(values: list[int]) -> list[dict[str, object]]:
    """(N, R) pairs with R = ceil(sqrt(N)) for the fermat programs."""
    pairs = []
    for n in values:
        r = math.isqrt(n)
        if r * r < n:
            r += 1
        pairs.append({"N": n, "R": r})
    return pairs


_SOURCES: dict[str, str] = {
    "divbin": """
program divbin;
input A, B;
assume (A > 0);
assume (B > 0);
q = 0; r = A; b = B;
while (r >= b) { b = 2 * b; }
while (b != B) {
  q = 2 * q; b = b / 2;
  if (r >= b) { q = q + 1; r = r - b; }
}
assert (A == q * B + r);
""",
    "cohendiv": """
program cohendiv;
input x, y;
assume (x > 0);
assume (y > 0);
q = 0; r = x; a = 0; b = 0;
while (r >= y) {
  a = 1; b = y;
  while (r >= 2 * b) { a = 2 * a; b = 2 * b; }
  r = r - b; q = q + a;
}
assert (x == q * y + r);
""",
    "mannadiv": """
program mannadiv;
input A, B;
assume (A >= 0);
assume (B >= 1);
y1 = 0; y2 = 0; y3 = A;
while (y3 != 0) {
  if (y2 + 1 == B) { y1 = y1 + 1; y2 = 0; y3 = y3 - 1; }
  else { y2 = y2 + 1; y3 = y3 - 1; }
}
assert (A == y1 * B + y2);
""",
    "hard": """
program hard;
input A, B;
assume (A >= 0);
assume (B >= 1);
r = A; d = B; p = 1; q = 0;
while (r >= d) { d = 2 * d; p = 2 * p; }
while (p != 1) {
  d = d / 2; p = p / 2;
  if (r >= d) { r = r - d; q = q + p; }
}
assert (A == q * B + r);
""",
    "sqrt1": """
program sqrt1;
input n;
assume (n >= 0);
a = 0; s = 1; t = 1;
while (s <= n) { a = a + 1; t = t + 2; s = s + t; }
assert (a * a <= n);
assert (n < (a + 1) * (a + 1));
""",
    "dijkstra": """
program dijkstra;
input n;
assume (n >= 0);
p = 0; q = 1; r = n; h = 0;
while (q <= n) { q = 4 * q; }
while (q != 1) {
  q = q / 4; h = p + q; p = p / 2;
  if (r >= h) { p = p + q; r = r - h; }
}
assert (p * p <= n);
assert (n < (p + 1) * (p + 1));
""",
    "cohencu": """
program cohencu;
input a;
assume (a >= 0);
n = 0; x = 0; y = 1; z = 6;
while (n != a) { n = n + 1; x = x + y; y = y + z; z = z + 6; }
assert (x == a * a * a);
""",
    "egcd": """
program egcd;
input x, y;
assume (x >= 1);
assume (y >= 1);
a = x; b = y; p = 1; q = 0; r = 0; s = 1;
while (a != b) {
  if (a > b) { a = a - b; p = p - q; r = r - s; }
  else { b = b - a; q = q - p; s = s - r; }
}
assert (a == gcd(x, y));
""",
    "egcd2": """
program egcd2;
input x, y;
assume (x >= 1);
assume (y >= 1);
a = x; b = y; p = 1; q = 0; r = 0; s = 1; c = 0; k = 0;
while (b != 0) {
  c = a; k = 0;
  while (c >= b) { c = c - b; k = k + 1; }
  a = b; b = c;
  temp = p; p = q; q = temp - q * k;
  temp = r; r = s; s = temp - s * k;
}
assert (a == gcd(x, y));
""",
    "egcd3": """
program egcd3;
input x, y;
assume (x >= 1);
assume (y >= 1);
a = x; b = y; p = 1; q = 0; r = 0; s = 1; c = 0; k = 0; d = 0; v = 0;
while (b != 0) {
  c = a; k = 0;
  while (c >= b) {
    d = 1; v = b;
    while (c >= 2 * v) { d = 2 * d; v = 2 * v; }
    c = c - v; k = k + d;
  }
  a = b; b = c;
  temp = p; p = q; q = temp - q * k;
  temp = r; r = s; s = temp - s * k;
}
assert (a == gcd(x, y));
""",
    "prodbin": """
program prodbin;
input a, b;
assume (a >= 0);
assume (b >= 0);
x = a; y = b; z = 0;
while (y != 0) {
  if (mod(y, 2) == 1) { z = z + x; y = y - 1; }
  x = 2 * x; y = y / 2;
}
assert (z == a * b);
""",
    "prod4br": """
program prod4br;
input x, y;
assume (x >= 0);
assume (y >= 0);
a = x; b = y; p = 1; q = 0;
while (a != 0 && b != 0) {
  if (mod(a, 2) == 0 && mod(b, 2) == 0) { a = a / 2; b = b / 2; p = 4 * p; }
  else { if (mod(a, 2) == 1 && mod(b, 2) == 0) { a = a - 1; q = q + b * p; }
  else { if (mod(a, 2) == 0 && mod(b, 2) == 1) { b = b - 1; q = q + a * p; }
  else { a = a - 1; b = b - 1; q = q + (a + b + 1) * p; } } }
}
assert (q + a * b * p == x * y);
""",
    "fermat1": """
program fermat1;
input N, R;
assume (N >= 1);
assume (R * R >= N);
assume ((R - 1) * (R - 1) < N);
assume (mod(N, 2) == 1);
u = 2 * R + 1; v = 1; r = R * R - N;
while (r != 0) {
  while (r > 0) { r = r - v; v = v + 2; }
  while (r < 0) { r = r + u; u = u + 2; }
}
assert (4 * N == u * u - v * v - 2 * u + 2 * v);
""",
    "fermat2": """
program fermat2;
input N, R;
assume (N >= 1);
assume (R * R >= N);
assume ((R - 1) * (R - 1) < N);
assume (mod(N, 2) == 1);
u = 2 * R + 1; v = 1; r = R * R - N;
while (r != 0) {
  if (r > 0) { r = r - v; v = v + 2; }
  else { r = r + u; u = u + 2; }
}
assert (4 * N == u * u - v * v - 2 * u + 2 * v);
""",
    "freire1": """
program freire1;
input a;
assume (a >= 0);
x = a / 2; r = 0;
while (x > r) { x = x - r; r = r + 1; }
""",
    "freire2": """
program freire2;
input a;
assume (a >= 1);
x = a; r = 1; s = 13 / 4;
while (x - s > 0) { x = x - s; s = s + 6 * r + 3; r = r + 1; }
""",
    "knuth": """
program knuth;
input n, a, s;
assume (n >= 9);
assume (mod(n, 2) == 1);
assume (s * s <= n);
assume ((s + 1) * (s + 1) > n);
assume (a >= 3);
assume (mod(a, 2) == 1);
d = a; r = mod(n, d); t = 0; k = mod(n, d - 2);
q = 4 * (div(n, d - 2) - div(n, d));
while (s >= d && r != 0) {
  if (2 * r - k + q < 0) {
    t = r; r = 2 * r - k + q + d + 2; k = t; q = q + 4; d = d + 2;
  } else { if (2 * r - k + q >= 0 && 2 * r - k + q < d + 2) {
    t = r; r = 2 * r - k + q; k = t; d = d + 2;
  } else { if (2 * r - k + q >= 0 && 2 * r - k + q >= d + 2 && 2 * r - k + q < 2 * d + 4) {
    t = r; r = 2 * r - k + q - d - 2; k = t; q = q - 4; d = d + 2;
  } else {
    t = r; r = 2 * r - k + q - 2 * d - 4; k = t; q = q - 8; d = d + 2;
  } } }
}
""",
    "lcm1": """
program lcm1;
input x, y;
assume (x >= 1);
assume (y >= 1);
a = x; b = y; u = b; v = 0;
while (a != b) {
  while (a > b) { a = a - b; v = v + u; }
  while (b > a) { b = b - a; u = u + v; }
}
assert (gcd(x, y) * (u + v) == x * y);
""",
    "lcm2": """
program lcm2;
input x, y;
assume (x >= 1);
assume (y >= 1);
a = x; b = y; u = b; v = a;
while (a != b) {
  if (a > b) { a = a - b; v = v + u; }
  else { b = b - a; u = u + v; }
}
assert (gcd(x, y) * (u + v) == 2 * x * y);
""",
    "geo1": """
program geo1;
input z, k;
assume (z >= 2);
assume (k >= 1);
x = 1; y = 1; c = 1;
while (c < k) { c = c + 1; x = x * z + 1; y = y * z; }
assert (x * z - x - y * z + 1 == 0);
""",
    "geo2": """
program geo2;
input z, k;
assume (z >= 2);
assume (k >= 1);
x = 1; y = 1; c = 1;
while (c < k) { c = c + 1; x = x + y; y = y * z; }
assert (x * z - x - y - z + 2 == 0);
""",
    "geo3": """
program geo3;
input z, k, b;
assume (z >= 2);
assume (k >= 1);
assume (b >= 1);
x = b; y = 1; c = 1;
while (c < k) { c = c + 1; x = x * z + b; y = y * z; }
assert (x * z - x + b - b * y * z == 0);
""",
    "ps2": """
program ps2;
input k;
assume (k >= 0);
x = 0; y = 0;
while (y < k) { y = y + 1; x = x + y; }
assert (2 * x == y * y + y);
""",
    "ps3": """
program ps3;
input k;
assume (k >= 0);
x = 0; y = 0;
while (y < k) { y = y + 1; x = x + y * y; }
assert (6 * x == 2 * y * y * y + 3 * y * y + y);
""",
    "ps4": """
program ps4;
input k;
assume (k >= 0);
x = 0; y = 0;
while (y < k) { y = y + 1; x = x + y * y * y; }
assert (4 * x == y * y * y * y + 2 * y * y * y + y * y);
""",
    "ps5": """
program ps5;
input k;
assume (k >= 0);
x = 0; y = 0;
while (y < k) { y = y + 1; x = x + y * y * y * y; }
assert (30 * x == 6 * y * y * y * y * y + 15 * y * y * y * y + 10 * y * y * y - y);
""",
    "ps6": """
program ps6;
input k;
assume (k >= 0);
x = 0; y = 0;
while (y < k) { y = y + 1; x = x + y * y * y * y * y; }
assert (12 * x == 2 * y * y * y * y * y * y + 6 * y * y * y * y * y + 5 * y * y * y * y - y * y);
""",
}


def _problem_spec(name: str) -> dict:
    """Per-problem inputs, ground truth, and learning options."""
    odd = [v for v in range(9, 60, 2)]
    specs: dict[str, dict] = {
        "divbin": dict(
            train_inputs=_grid(A=list(range(1, 25)), B=[1, 2, 3, 5, 7]),
            check_inputs=_grid(A=list(range(1, 60, 3)), B=[1, 2, 3, 4, 5, 6, 7]),
            ground_truth={
                0: ["q == 0", "r == A"],
                1: ["A == q * b + r"],
            },
        ),
        "cohendiv": dict(
            train_inputs=_grid(x=list(range(1, 25)), y=[1, 2, 3, 5, 7]),
            check_inputs=_grid(x=list(range(1, 60, 3)), y=[1, 2, 3, 4, 5, 7]),
            ground_truth={
                0: ["x == q * y + r"],
                1: ["b == y * a", "x == q * y + r"],
            },
        ),
        "mannadiv": dict(
            train_inputs=_grid(A=list(range(0, 25)), B=[1, 2, 3, 5, 7]),
            check_inputs=_grid(A=list(range(0, 60, 3)), B=[1, 2, 3, 4, 5, 7]),
            ground_truth={0: ["y1 * B + y2 + y3 == A"]},
        ),
        "hard": dict(
            train_inputs=_grid(A=list(range(0, 25)), B=[1, 2, 3, 5, 7]),
            check_inputs=_grid(A=list(range(0, 60, 3)), B=[1, 2, 3, 4, 5, 7]),
            ground_truth={
                0: ["d == B * p", "q == 0", "r == A"],
                1: ["d == B * p", "A == q * B + r"],
            },
        ),
        "sqrt1": dict(
            train_inputs=_grid(n=list(range(0, 32))),
            check_inputs=_grid(n=list(range(0, 120, 2))),
            learn_inequalities=True,
            ground_truth={
                0: ["t == 2 * a + 1", "s == (a + 1) * (a + 1)", "n >= a * a"]
            },
        ),
        "dijkstra": dict(
            train_inputs=_grid(n=list(range(0, 40))),
            check_inputs=_grid(n=list(range(0, 150, 3))),
            ground_truth={
                0: ["p == 0", "r == n"],
                1: ["p * p + q * r == n * q"],
            },
        ),
        "cohencu": dict(
            train_inputs=_grid(a=list(range(0, 25))),
            check_inputs=_grid(a=list(range(0, 60, 2))),
            max_degree=3,
            ground_truth={
                0: [
                    "x == n * n * n",
                    "y == 3 * n * n + 3 * n + 1",
                    "z == 6 * n + 6",
                ]
            },
        ),
        "egcd": dict(
            train_inputs=_grid(x=list(range(1, 13)), y=list(range(1, 13))),
            check_inputs=_grid(x=list(range(1, 25, 2)), y=list(range(1, 25, 2))),
            ground_truth={0: ["a == x * p + y * r", "b == x * q + y * s"]},
        ),
        "egcd2": dict(
            train_inputs=_grid(x=list(range(1, 13)), y=list(range(1, 13))),
            check_inputs=_grid(x=list(range(1, 25, 2)), y=list(range(1, 25, 2))),
            externals=[
                ExternalTerm("gcd", ("a", "b")),
                ExternalTerm("gcd", ("x", "y")),
            ],
            ground_truth={
                0: [
                    "a == x * p + y * r",
                    "b == x * q + y * s",
                ],
                1: ["a == c + b * k", "a == x * p + y * r"],
            },
        ),
        "egcd3": dict(
            train_inputs=_grid(x=list(range(1, 11)), y=list(range(1, 11))),
            check_inputs=_grid(x=list(range(1, 21, 2)), y=list(range(1, 21, 2))),
            externals=[
                ExternalTerm("gcd", ("a", "b")),
                ExternalTerm("gcd", ("x", "y")),
            ],
            ground_truth={
                0: ["a == x * p + y * r", "b == x * q + y * s"],
                1: ["a == c + b * k"],
                2: ["v == b * d", "a == c + b * k"],
            },
        ),
        "prodbin": dict(
            train_inputs=_grid(a=list(range(0, 12)), b=list(range(0, 12))),
            check_inputs=_grid(a=list(range(0, 30, 2)), b=list(range(0, 30, 2))),
            ground_truth={0: ["z + x * y == a * b"]},
        ),
        "prod4br": dict(
            train_inputs=_grid(x=list(range(0, 10)), y=list(range(0, 10))),
            check_inputs=_grid(x=list(range(0, 25, 2)), y=list(range(0, 25, 2))),
            max_degree=3,
            ground_truth={0: ["q + a * b * p == x * y"]},
        ),
        "fermat1": dict(
            train_inputs=_isqrt_pairs(odd[:20]),
            check_inputs=_isqrt_pairs(odd),
            ground_truth={
                0: ["4 * N + 4 * r == u * u - v * v - 2 * u + 2 * v"],
                1: ["4 * N + 4 * r == u * u - v * v - 2 * u + 2 * v"],
                2: ["4 * N + 4 * r == u * u - v * v - 2 * u + 2 * v"],
            },
        ),
        "fermat2": dict(
            train_inputs=_isqrt_pairs(odd[:20]),
            check_inputs=_isqrt_pairs(odd),
            ground_truth={
                0: ["4 * N + 4 * r == u * u - v * v - 2 * u + 2 * v"]
            },
        ),
        "freire1": dict(
            train_inputs=_grid(a=list(range(0, 40))),
            check_inputs=_grid(a=list(range(0, 100, 2))),
            ground_truth={0: ["2 * x + r * r - r == a"]},
        ),
        "freire2": dict(
            train_inputs=_grid(a=list(range(1, 40))),
            check_inputs=_grid(a=list(range(1, 100, 2))),
            max_degree=3,
            ground_truth={
                0: [
                    "4 * s == 12 * r * r + 1",
                    "4 * r * r * r - 6 * r * r + 3 * r + 4 * x == 4 * a + 1",
                ]
            },
        ),
        "knuth": dict(
            train_inputs=[
                {"n": n, "a": 3, "s": math.isqrt(n)} for n in odd[:20]
            ],
            check_inputs=[
                {"n": n, "a": 3, "s": math.isqrt(n)} for n in odd
            ],
            max_degree=3,
            ground_truth={
                0: [
                    "d * d * q - 4 * r * d + 4 * k * d - 2 * q * d + 8 * r == 8 * n"
                ]
            },
        ),
        "lcm1": dict(
            train_inputs=_grid(x=list(range(1, 13)), y=list(range(1, 13))),
            check_inputs=_grid(x=list(range(1, 25, 2)), y=list(range(1, 25, 2))),
            externals=[
                ExternalTerm("gcd", ("a", "b")),
                ExternalTerm("gcd", ("x", "y")),
            ],
            ground_truth={
                0: ["a * u + b * v == x * y", "gcd(a, b) == gcd(x, y)"],
                1: ["a * u + b * v == x * y", "gcd(a, b) == gcd(x, y)"],
                2: ["a * u + b * v == x * y", "gcd(a, b) == gcd(x, y)"],
            },
        ),
        "lcm2": dict(
            train_inputs=_grid(x=list(range(1, 13)), y=list(range(1, 13))),
            check_inputs=_grid(x=list(range(1, 25, 2)), y=list(range(1, 25, 2))),
            externals=[
                ExternalTerm("gcd", ("a", "b")),
                ExternalTerm("gcd", ("x", "y")),
            ],
            ground_truth={
                0: ["a * u + b * v == 2 * x * y", "gcd(a, b) == gcd(x, y)"]
            },
        ),
        "geo1": dict(
            train_inputs=_grid(z=[2, 3, 4, 5], k=list(range(1, 9))),
            check_inputs=_grid(z=[2, 3, 4, 5, 6], k=list(range(1, 11))),
            ground_truth={0: ["x * z - x - y * z + 1 == 0"]},
        ),
        "geo2": dict(
            train_inputs=_grid(z=[2, 3, 4, 5], k=list(range(1, 9))),
            check_inputs=_grid(z=[2, 3, 4, 5, 6], k=list(range(1, 11))),
            ground_truth={0: ["x * z - x - y - z + 2 == 0"]},
        ),
        "geo3": dict(
            train_inputs=_grid(z=[2, 3, 4], k=list(range(1, 7)), b=[1, 2, 3]),
            check_inputs=_grid(z=[2, 3, 4, 5], k=list(range(1, 9)), b=[1, 2, 3, 4]),
            max_degree=3,
            ground_truth={0: ["x * z - x + b - b * y * z == 0"]},
        ),
        "ps2": dict(
            train_inputs=_grid(k=list(range(0, 25))),
            check_inputs=_grid(k=list(range(0, 60, 2))),
            ground_truth={0: ["2 * x == y * y + y", "k >= y"]},
            learn_inequalities=True,
        ),
        "ps3": dict(
            train_inputs=_grid(k=list(range(0, 25))),
            check_inputs=_grid(k=list(range(0, 60, 2))),
            max_degree=3,
            ground_truth={0: ["6 * x == 2 * y * y * y + 3 * y * y + y"]},
        ),
        "ps4": dict(
            train_inputs=_grid(k=list(range(0, 25))),
            check_inputs=_grid(k=list(range(0, 60, 2))),
            max_degree=4,
            ground_truth={
                0: ["4 * x == y * y * y * y + 2 * y * y * y + y * y"]
            },
        ),
        "ps5": dict(
            train_inputs=_grid(k=list(range(0, 22))),
            check_inputs=_grid(k=list(range(0, 60, 2))),
            max_degree=5,
            fractional=True,
            fractional_vars=["x", "y"],
            variables={0: ["x", "y"]},
            ground_truth={
                0: [
                    "30 * x == 6*y*y*y*y*y + 15*y*y*y*y + 10*y*y*y - y"
                ]
            },
        ),
        "ps6": dict(
            train_inputs=_grid(k=list(range(0, 22))),
            check_inputs=_grid(k=list(range(0, 60, 2))),
            max_degree=6,
            fractional=True,
            fractional_vars=["x", "y"],
            variables={0: ["x", "y"]},
            ground_truth={
                0: [
                    "12 * x == 2*y*y*y*y*y*y + 6*y*y*y*y*y + 5*y*y*y*y - y*y"
                ]
            },
        ),
    }
    if name not in specs:
        raise ReproError(f"unknown NLA problem {name!r}")
    return specs[name]


def nla_problem(name: str) -> Problem:
    """Build the named NLA problem."""
    if name not in _SOURCES:
        raise ReproError(f"unknown NLA problem {name!r}")
    spec = _problem_spec(name)
    return Problem(name=name, source=_SOURCES[name], **spec)


def nla_suite(names: list[str] | None = None) -> list[Problem]:
    """NLA problems in Table 2 order, for the batch runner.

    Args:
        names: optional subset; order and unknown-name checking follow
            the registry, not the argument.
    """
    if names is not None:
        unknown = sorted(set(names) - set(_SOURCES))
        if unknown:
            raise ReproError(f"unknown NLA problem(s): {', '.join(unknown)}")
        wanted = set(names)
        return [nla_problem(e.name) for e in NLA_PROBLEMS if e.name in wanted]
    return [nla_problem(e.name) for e in NLA_PROBLEMS]
