"""Generated linear-invariant suite standing in for Code2Inv (§6.4).

The Code2Inv benchmark (133 C programs with SMT checks; 124 solvable)
is not redistributable here, so we generate 124 linear problems from
four structural templates modeled on it: paired counters, scaled
accumulators, three-variable couplings, and guarded bounds.  Every
instance exercises the same code path as the paper's linear experiment
(linear G-CLN learning, maxDeg = 1).  See DESIGN.md §2.
"""

from __future__ import annotations

from repro.infer.problem import Problem


def _counter_pair(index: int, a0: int, b0: int, s: int, t: int) -> Problem:
    """x starts at a0 stepping s; y starts at b0 stepping t.

    Invariant: ``t*x - s*y == t*a0 - s*b0``.
    """
    const = t * a0 - s * b0
    source = f"""
program c2i_pair_{index};
input N;
assume (N >= 0);
x = {a0}; y = {b0}; i = 0;
while (i < N) {{ i = i + 1; x = x + {s}; y = y + {t}; }}
assert ({t} * x - {s} * y == {const});
"""
    return Problem(
        name=f"c2i_pair_{index}",
        source=source,
        train_inputs=[{"N": v} for v in range(0, 20)],
        check_inputs=[{"N": v} for v in range(0, 40, 2)],
        max_degree=1,
        ground_truth={0: [f"{t} * x - {s} * y == {const}"]},
    )


def _accumulator(index: int, c: int, x0: int) -> Problem:
    """s accumulates c per step from x0*c.

    Invariant: ``s == c*i + c*x0``.
    """
    source = f"""
program c2i_acc_{index};
input N;
assume (N >= 0);
s = {c * x0}; i = 0;
while (i < N) {{ i = i + 1; s = s + {c}; }}
assert (s == {c} * i + {c * x0});
"""
    return Problem(
        name=f"c2i_acc_{index}",
        source=source,
        train_inputs=[{"N": v} for v in range(0, 20)],
        check_inputs=[{"N": v} for v in range(0, 40, 2)],
        max_degree=1,
        ground_truth={0: [f"s == {c} * i + {c * x0}"]},
    )


def _triple(index: int, p: int, q: int) -> Problem:
    """z tracks p*x + q*y.

    Invariant: ``z == p*x + q*y``.
    """
    source = f"""
program c2i_triple_{index};
input N;
assume (N >= 0);
x = 0; y = 0; z = 0; i = 0;
while (i < N) {{ i = i + 1; x = x + 1; y = y + 2; z = z + {p + 2 * q}; }}
assert (z == {p} * x + {q} * y);
"""
    return Problem(
        name=f"c2i_triple_{index}",
        source=source,
        train_inputs=[{"N": v} for v in range(0, 20)],
        check_inputs=[{"N": v} for v in range(0, 40, 2)],
        max_degree=1,
        ground_truth={0: [f"z == {p} * x + {q} * y"]},
    )


def _bound(index: int, step: int) -> Problem:
    """Guarded counter: loop-head bound ``x <= N + step - 1``.

    The ground truth keeps the equality part learnable at maxDeg 1 and
    a linear bound for the PBQU model.
    """
    source = f"""
program c2i_bound_{index};
input N;
assume (N >= 0);
x = 0; y = 0;
while (x < N) {{ x = x + {step}; y = y + {step}; }}
assert (x == y);
"""
    return Problem(
        name=f"c2i_bound_{index}",
        source=source,
        train_inputs=[{"N": v} for v in range(0, 24)],
        check_inputs=[{"N": v} for v in range(0, 48, 2)],
        max_degree=1,
        learn_inequalities=True,
        ground_truth={0: ["x == y", f"x <= N + {step - 1}"]},
    )


def code2inv_problems() -> list[Problem]:
    """All 124 generated linear problems (deterministic)."""
    problems: list[Problem] = []
    index = 0
    # 60 paired counters.
    for a0, b0, s, t in [
        (a0, b0, s, t)
        for a0 in (0, 1, 3)
        for b0 in (0, 2)
        for s in (1, 2, 3, 5, 7)
        for t in (1, 4)
    ]:
        problems.append(_counter_pair(index, a0, b0, s, t))
        index += 1
    # 30 accumulators.
    for c in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):
        for x0 in (0, 1, 2):
            problems.append(_accumulator(index, c, x0))
            index += 1
    # 20 triples.
    for p in (1, 2, 3, 4, 5):
        for q in (1, 2, 3, 4):
            problems.append(_triple(index, p, q))
            index += 1
    # 14 bounds.
    for step in range(1, 15):
        problems.append(_bound(index, step))
        index += 1
    assert len(problems) == 124, len(problems)
    return problems


def code2inv_suite(stride: int = 1) -> list[Problem]:
    """The linear suite for the batch runner.

    Args:
        stride: keep every ``stride``-th problem (``8`` gives the same
            16-instance subset the quick benchmark mode uses).
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    return code2inv_problems()[::stride]
