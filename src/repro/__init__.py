"""repro — Gated Continuous Logic Networks for nonlinear loop invariants.

A from-scratch reproduction of "Learning Nonlinear Loop Invariants with
Gated Continuous Logic Networks" (Yao, Ryan, Wong, Jana, Gu — PLDI
2020), including every substrate the paper depends on: a reverse-mode
autodiff engine, an exact polynomial engine with a hybrid invariant
checker (the Z3 substitute), a mini imperative language for the
benchmark programs, the G-CLN model itself, and the baseline systems
used in the paper's comparisons.

Quickstart (the public API is :mod:`repro.api`)::

    from repro import InvariantService, Problem
    problem = Problem(
        name="ps2",
        source='''
            program ps2;
            input k;
            assume (k >= 0);
            x = 0; y = 0;
            while (y < k) { y = y + 1; x = x + y; }
            assert (2 * x == y * y + y);
        ''',
        train_inputs=[{"k": v} for v in range(0, 25)],
        ground_truth={0: ["2 * x == y * y + y"]},
    )
    service = InvariantService()
    result = service.solve(problem)                      # G-CLN
    baseline = service.solve(problem, solver="numinv")   # same schema
    print(result.solved, result.invariant(0))
"""

from repro.errors import ReproError
from repro.infer import (
    InferenceConfig,
    InferenceEngine,
    InferenceResult,
    Problem,
    infer_invariants,
)
from repro.api import (
    InvariantService,
    SolveResult,
    Solver,
    available_solvers,
    get_solver,
    register_solver,
)
from repro.cln import GCLN, GCLNConfig, train_gcln, extract_formula
from repro.smt import Formula, Atom, And, Or, Not, format_formula
from repro.lang import parse_program, run_program

__version__ = "1.1.0"

__all__ = [
    "ReproError",
    "Problem",
    "InferenceConfig",
    "InferenceEngine",
    "InferenceResult",
    "infer_invariants",
    "InvariantService",
    "Solver",
    "SolveResult",
    "available_solvers",
    "get_solver",
    "register_solver",
    "GCLN",
    "GCLNConfig",
    "train_gcln",
    "extract_formula",
    "Formula",
    "Atom",
    "And",
    "Or",
    "Not",
    "format_formula",
    "parse_program",
    "run_program",
    "__version__",
]
