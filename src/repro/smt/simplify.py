"""Formula simplification: flattening, deduplication, absorption.

Extraction can produce nested conjunctions with duplicate or trivial
clauses; :func:`simplify` normalizes them so reported invariants read
like the paper's (e.g. ``(t = 2a + 1) && (a^2 <= n)``).
"""

from __future__ import annotations

from repro.smt.formula import (
    FALSE,
    TRUE,
    And,
    Atom,
    FalseFormula,
    Formula,
    Not,
    Or,
    TrueFormula,
)


def simplify(formula: Formula) -> Formula:
    """Normalize a formula.

    Applies, bottom-up: double-negation elimination, negation pushing
    into atoms, And/Or flattening, duplicate-child removal, unit and
    absorbing element rules (``x && true = x``, ``x || true = true``,
    ...), constant folding of ground atoms, and singleton unwrapping.
    """
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, Atom):
        if formula.poly.is_constant():
            return TRUE if formula.evaluate({}) else FALSE
        preserve = formula.op not in ("==", "!=")
        return Atom(formula.poly.primitive(preserve_sign=preserve), formula.op)
    if isinstance(formula, Not):
        inner = simplify(formula.child)
        if isinstance(inner, TrueFormula):
            return FALSE
        if isinstance(inner, FalseFormula):
            return TRUE
        if isinstance(inner, Not):
            return inner.child
        if isinstance(inner, Atom):
            return inner.negated()
        return Not(inner)
    if isinstance(formula, (And, Or)):
        is_and = isinstance(formula, And)
        unit: Formula = TRUE if is_and else FALSE
        absorbing: Formula = FALSE if is_and else TRUE
        flattened: list[Formula] = []
        seen: set[str] = set()
        for child in formula.children:
            child = simplify(child)
            if child == absorbing:
                return absorbing
            if child == unit:
                continue
            inner = child.children if type(child) is type(formula) else (child,)
            for grand in inner:
                key = str(grand)
                if key not in seen:
                    seen.add(key)
                    flattened.append(grand)
        if not flattened:
            return unit
        if len(flattened) == 1:
            return flattened[0]
        return And(flattened) if is_and else Or(flattened)
    raise TypeError(f"cannot simplify {formula!r}")
