"""SMT formula intermediate representation.

Learned invariants are quantifier-free formulas over polynomial atoms.
External-function terms such as ``gcd(a, b)`` are represented as
*extended variables* — reserved variable names like ``"gcd(a,b)"`` — so
the polynomial engine handles them uniformly; evaluation environments
must bind them (see ``repro.sampling.termgen.extend_state``).
"""

from repro.smt.formula import (
    And,
    Atom,
    FalseFormula,
    Formula,
    Not,
    Or,
    TrueFormula,
    FALSE,
    TRUE,
)
from repro.smt.simplify import simplify
from repro.smt.printer import format_formula
from repro.smt.convert import expr_to_formula

__all__ = [
    "And",
    "Atom",
    "FalseFormula",
    "Formula",
    "Not",
    "Or",
    "TrueFormula",
    "TRUE",
    "FALSE",
    "simplify",
    "format_formula",
    "expr_to_formula",
]
