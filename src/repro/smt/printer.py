"""Human-readable formula printing in the paper's style.

Atoms are printed with the constant moved to the right-hand side where
that reads better, e.g. ``Polynomial(a^2 - n) <= 0`` prints as
``a^2 - n <= 0`` and equality atoms print as ``p == 0`` with the
polynomial in graded-lex order.
"""

from __future__ import annotations

from repro.smt.formula import And, Atom, FalseFormula, Formula, Not, Or, TrueFormula


def format_formula(formula: Formula) -> str:
    """Render a formula compactly (no redundant outer parentheses)."""
    text = _fmt(formula)
    if text.startswith("(") and text.endswith(")") and _balanced(text[1:-1]):
        return text[1:-1]
    return text


def _fmt(formula: Formula) -> str:
    if isinstance(formula, TrueFormula):
        return "true"
    if isinstance(formula, FalseFormula):
        return "false"
    if isinstance(formula, Atom):
        return f"{formula.poly} {formula.op} 0"
    if isinstance(formula, Not):
        return f"!({_fmt(formula.child)})"
    if isinstance(formula, (And, Or)):
        joiner = " && " if isinstance(formula, And) else " || "
        if not formula.children:
            return "true" if isinstance(formula, And) else "false"
        rendered = []
        for child in formula.children:
            text = _fmt(child)
            if isinstance(child, (And, Or)) and child.children:
                text = f"({text})"
            elif isinstance(child, Atom):
                text = f"({text})"
            rendered.append(text)
        return joiner.join(rendered)
    raise TypeError(f"cannot format {formula!r}")


def _balanced(text: str) -> bool:
    depth = 0
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0
