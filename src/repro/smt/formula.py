"""Quantifier-free formulas over polynomial atoms.

An :class:`Atom` is ``p ⋈ 0`` for a polynomial ``p`` and a comparison
``⋈ ∈ {==, !=, <, <=, >, >=}``.  Compound formulas are built with
:class:`And`, :class:`Or`, :class:`Not` plus the constants ``TRUE`` and
``FALSE``.  Formulas evaluate exactly on rational assignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from repro.errors import FormulaError
from repro.poly.polynomial import Polynomial

COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")

_NEGATED = {
    "==": "!=",
    "!=": "==",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


class Formula:
    """Base class for formulas; use the concrete subclasses."""

    def evaluate(self, assignment: Mapping[str, object]) -> bool:
        raise NotImplementedError

    def atoms(self) -> list["Atom"]:
        """All atoms appearing in the formula (with multiplicity)."""
        raise NotImplementedError

    @property
    def variables(self) -> frozenset[str]:
        out: set[str] = set()
        for atom in self.atoms():
            out |= atom.poly.variables
        return frozenset(out)

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueFormula(Formula):
    def evaluate(self, assignment: Mapping[str, object]) -> bool:
        return True

    def atoms(self) -> list["Atom"]:
        return []

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    def evaluate(self, assignment: Mapping[str, object]) -> bool:
        return False

    def atoms(self) -> list["Atom"]:
        return []

    def __str__(self) -> str:
        return "false"


TRUE = TrueFormula()
FALSE = FalseFormula()


@dataclass(frozen=True)
class Atom(Formula):
    """The atomic constraint ``poly op 0``."""

    poly: Polynomial
    op: str

    def __post_init__(self) -> None:
        if self.op not in COMPARISONS:
            raise FormulaError(f"unknown comparison {self.op!r}")

    def evaluate(self, assignment: Mapping[str, object]) -> bool:
        value = self.poly.evaluate(assignment)
        return _compare(value, self.op)

    def evaluate_float(self, assignment: Mapping[str, float], tol: float = 1e-7) -> bool:
        """Approximate evaluation on float data (equality uses ``tol``)."""
        value = self.poly.evaluate_float(assignment)
        if self.op == "==":
            return abs(value) <= tol
        if self.op == "!=":
            return abs(value) > tol
        if self.op == "<":
            return value < tol
        if self.op == "<=":
            return value <= tol
        if self.op == ">":
            return value > -tol
        return value >= -tol

    def negated(self) -> "Atom":
        return Atom(self.poly, _NEGATED[self.op])

    def atoms(self) -> list["Atom"]:
        return [self]

    def __str__(self) -> str:
        return f"{self.poly} {self.op} 0"


def _compare(value: Fraction, op: str) -> bool:
    if op == "==":
        return value == 0
    if op == "!=":
        return value != 0
    if op == "<":
        return value < 0
    if op == "<=":
        return value <= 0
    if op == ">":
        return value > 0
    if op == ">=":
        return value >= 0
    raise FormulaError(f"unknown comparison {op!r}")


class _Nary(Formula):
    """Shared implementation for And/Or."""

    _name: str

    def __init__(self, children: Sequence[Formula]):
        for child in children:
            if not isinstance(child, Formula):
                raise FormulaError(f"expected Formula, got {child!r}")
        self._children = tuple(children)

    @property
    def children(self) -> tuple[Formula, ...]:
        return self._children

    def atoms(self) -> list[Atom]:
        out: list[Atom] = []
        for child in self._children:
            out.extend(child.atoms())
        return out

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._children == other._children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._children))

    def __str__(self) -> str:
        if not self._children:
            return "true" if isinstance(self, And) else "false"
        joiner = " && " if isinstance(self, And) else " || "
        return "(" + joiner.join(str(c) for c in self._children) + ")"


class And(_Nary):
    """Conjunction; the empty conjunction is ``true``."""

    def evaluate(self, assignment: Mapping[str, object]) -> bool:
        return all(c.evaluate(assignment) for c in self._children)


class Or(_Nary):
    """Disjunction; the empty disjunction is ``false``."""

    def evaluate(self, assignment: Mapping[str, object]) -> bool:
        return any(c.evaluate(assignment) for c in self._children)


@dataclass(frozen=True)
class Not(Formula):
    child: Formula

    def evaluate(self, assignment: Mapping[str, object]) -> bool:
        return not self.child.evaluate(assignment)

    def atoms(self) -> list[Atom]:
        return self.child.atoms()

    def __str__(self) -> str:
        return f"!({self.child})"
