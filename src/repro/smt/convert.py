"""Convert mini-language boolean expressions to SMT formulas.

Pre/post-conditions and loop guards written in the mini language become
:class:`~repro.smt.formula.Formula` values so the checker can manipulate
them uniformly with learned invariants.  External calls inside
arithmetic become extended variables (``gcd(a,b)`` the string), matching
the sampler's term naming.
"""

from __future__ import annotations

from repro.errors import FormulaError
from repro.lang.ast import Binary, BoolLit, Call, Expr, IntLit, Unary, Var
from repro.poly.polynomial import Polynomial
from repro.smt.formula import FALSE, TRUE, And, Atom, Formula, Not, Or


def external_term_name(func: str, args: tuple[str, ...]) -> str:
    """Canonical extended-variable name for an external-function term."""
    return f"{func}({','.join(args)})"


def expr_to_formula(expr: Expr) -> Formula:
    """Convert a boolean mini-language expression to a formula.

    Raises:
        FormulaError: if the expression is not boolean-typed or uses
            constructs outside the polynomial-plus-externals fragment
            (e.g. ``%`` with non-constant operands is rejected).
    """
    if isinstance(expr, BoolLit):
        return TRUE if expr.value else FALSE
    if isinstance(expr, Unary) and expr.op == "!":
        return Not(expr_to_formula(expr.operand))
    if isinstance(expr, Binary):
        if expr.op == "&&":
            return And((expr_to_formula(expr.left), expr_to_formula(expr.right)))
        if expr.op == "||":
            return Or((expr_to_formula(expr.left), expr_to_formula(expr.right)))
        if expr.op in ("==", "!=", "<", "<=", ">", ">="):
            left = arith_to_polynomial(expr.left)
            right = arith_to_polynomial(expr.right)
            return Atom(left - right, expr.op)
    raise FormulaError(f"not a boolean expression: {expr!r}")


def arith_to_polynomial(expr: Expr) -> Polynomial:
    """Convert an arithmetic expression to a polynomial over extended vars."""
    if isinstance(expr, IntLit):
        return Polynomial.constant(expr.value)
    if isinstance(expr, Var):
        return Polynomial.var(expr.name)
    if isinstance(expr, Unary) and expr.op == "-":
        return -arith_to_polynomial(expr.operand)
    if isinstance(expr, Call):
        arg_names = []
        for arg in expr.args:
            if not isinstance(arg, Var):
                raise FormulaError(
                    f"external call arguments must be variables: {expr!r}"
                )
            arg_names.append(arg.name)
        return Polynomial.var(external_term_name(expr.func, tuple(arg_names)))
    if isinstance(expr, Binary):
        if expr.op == "+":
            return arith_to_polynomial(expr.left) + arith_to_polynomial(expr.right)
        if expr.op == "-":
            return arith_to_polynomial(expr.left) - arith_to_polynomial(expr.right)
        if expr.op == "*":
            return arith_to_polynomial(expr.left) * arith_to_polynomial(expr.right)
        if expr.op == "/":
            divisor = arith_to_polynomial(expr.right)
            if not divisor.is_constant() or divisor.is_zero():
                raise FormulaError(f"division by non-constant: {expr!r}")
            return arith_to_polynomial(expr.left).scale(1 / divisor.constant_term())
    raise FormulaError(f"not an arithmetic expression: {expr!r}")
