"""Mini imperative language for the benchmark programs.

The NLA and Code2Inv-style benchmark loops are transcribed in a small
imperative language with exact rational semantics.  The subpackage
provides a lexer, recursive-descent parser, tree-walking interpreter
with execution-trace instrumentation (the paper's trace collection
phase), and static analyses used by the symbolic checker (per-path
polynomial update extraction).
"""

from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    Binary,
    Block,
    BoolLit,
    Call,
    Expr,
    If,
    IntLit,
    Program,
    Stmt,
    Unary,
    Var,
    While,
)
from repro.lang.lexer import Token, tokenize
from repro.lang.parser import parse_program, parse_expr
from repro.lang.interp import Interpreter, ExecutionTrace, LoopSnapshot, run_program
from repro.lang.pretty import pretty_program, pretty_expr
from repro.lang.analysis import (
    assigned_variables,
    collect_loops,
    expr_variables,
    extract_loop_paths,
    expr_to_polynomial,
    LoopPath,
)

__all__ = [
    "Assert",
    "Assign",
    "Assume",
    "Binary",
    "Block",
    "BoolLit",
    "Call",
    "Expr",
    "If",
    "IntLit",
    "Program",
    "Stmt",
    "Unary",
    "Var",
    "While",
    "Token",
    "tokenize",
    "parse_program",
    "parse_expr",
    "Interpreter",
    "ExecutionTrace",
    "LoopSnapshot",
    "run_program",
    "pretty_program",
    "pretty_expr",
    "assigned_variables",
    "collect_loops",
    "expr_variables",
    "extract_loop_paths",
    "expr_to_polynomial",
    "LoopPath",
]
