"""Lexer for the mini imperative language."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexError

KEYWORDS = frozenset(
    {"program", "input", "assume", "assert", "while", "if", "else", "true", "false"}
)

# Multi-character operators must be tried before their prefixes.
_OPERATORS = (
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "(",
    ")",
    "{",
    "}",
    ";",
    ",",
)


@dataclass(frozen=True)
class Token:
    """A lexical token.

    ``kind`` is one of ``"int"``, ``"ident"``, ``"keyword"``, ``"op"``,
    or ``"eof"``; ``text`` is the source text (for ints, the digits).
    """

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``, raising :class:`LexError` on bad input.

    Comments run from ``//`` to end of line.
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            start_col = col
            while i < n and source[i].isdigit():
                i += 1
                col += 1
            tokens.append(Token("int", source[start:i], line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_col = col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
                col += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, start_col))
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens
