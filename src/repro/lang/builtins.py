"""Builtin external functions callable from benchmark programs.

The paper (§5.3) supports invariants over external function calls such
as ``gcd`` and ``mod`` by sampling the functions during execution.  The
interpreter resolves calls through this registry; the sampler uses the
same registry to expand candidate terms like ``gcd(a, b)``.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Callable

from repro.errors import InterpError

Numeric = "int | Fraction"


def _require_int(value, func: str) -> int:
    if isinstance(value, Fraction):
        if value.denominator != 1:
            raise InterpError(f"{func} requires integer arguments, got {value}")
        return int(value)
    if isinstance(value, int):
        return value
    raise InterpError(f"{func} requires integer arguments, got {value!r}")


def builtin_gcd(a, b):
    """Greatest common divisor on integers (gcd(0, 0) = 0)."""
    return math.gcd(abs(_require_int(a, "gcd")), abs(_require_int(b, "gcd")))


def builtin_mod(a, b):
    """C-style remainder truncated toward zero, matching the NLA programs."""
    ia, ib = _require_int(a, "mod"), _require_int(b, "mod")
    if ib == 0:
        raise InterpError("mod by zero")
    return ia - ib * int(ia / ib)


def builtin_div(a, b):
    """Truncated integer division (C semantics)."""
    ia, ib = _require_int(a, "div"), _require_int(b, "div")
    if ib == 0:
        raise InterpError("div by zero")
    return int(ia / ib)


def builtin_abs(a):
    return -a if a < 0 else a


def builtin_min(a, b):
    return a if a <= b else b


def builtin_max(a, b):
    return a if a >= b else b


BUILTINS: dict[str, Callable] = {
    "gcd": builtin_gcd,
    "mod": builtin_mod,
    "div": builtin_div,
    "abs": builtin_abs,
    "min": builtin_min,
    "max": builtin_max,
}

# Builtins usable as candidate invariant terms (binary, integer-valued);
# the paper constrains external-function terms to binary functions.
TERM_BUILTINS: tuple[str, ...] = ("gcd", "mod")


def lookup_builtin(name: str) -> Callable:
    """Resolve a builtin by name, raising :class:`InterpError` if unknown."""
    func = BUILTINS.get(name)
    if func is None:
        raise InterpError(f"unknown function {name!r}")
    return func
