"""Static analyses over the mini language used by the symbolic checker.

The key export is :func:`extract_loop_paths`: for a loop whose body is
straight-line polynomial code (assignments and ``if``/``else``, no
nested loops, no external calls), it enumerates every path through the
body as a path condition plus a *symbolic update map* sending each
variable to the polynomial describing its value after one iteration.

Candidate equality invariants are then checked for inductiveness by
exact substitution of these update maps (see ``repro.checker.symbolic``).
Loops that fall outside this fragment return ``None`` and the checker
falls back to bounded checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PolyError
from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    Binary,
    Block,
    Call,
    Expr,
    If,
    IntLit,
    Program,
    Unary,
    Var,
    While,
    walk_statements,
)
from repro.poly.polynomial import Polynomial


class _NonPolynomial(Exception):
    """Internal: expression leaves the polynomial fragment."""


def expr_variables(expr: Expr) -> frozenset[str]:
    """All variable names appearing in ``expr``."""
    out: set[str] = set()

    def visit(e: Expr) -> None:
        if isinstance(e, Var):
            out.add(e.name)
        elif isinstance(e, Unary):
            visit(e.operand)
        elif isinstance(e, Binary):
            visit(e.left)
            visit(e.right)
        elif isinstance(e, Call):
            for a in e.args:
                visit(a)

    visit(expr)
    return frozenset(out)


def assigned_variables(block: Block) -> frozenset[str]:
    """Variables assigned anywhere in ``block`` (recursively)."""
    return frozenset(
        s.name for s in walk_statements(block) if isinstance(s, Assign)
    )


def program_variables(program: Program) -> list[str]:
    """All variables of a program: inputs plus every assigned name.

    Ordered deterministically: inputs in declaration order, then
    assigned variables in first-assignment order.
    """
    seen = list(program.inputs)
    seen_set = set(seen)
    for stmt in walk_statements(program.body):
        if isinstance(stmt, Assign) and stmt.name not in seen_set:
            seen.append(stmt.name)
            seen_set.add(stmt.name)
    return seen


def collect_loops(program: Program) -> list[While]:
    """All loops of the program in parse order (same as ``program.loops``)."""
    return [s for s in walk_statements(program.body) if isinstance(s, While)]


def expr_to_polynomial(
    expr: Expr, env: dict[str, Polynomial] | None = None
) -> Polynomial | None:
    """Convert an arithmetic expression to a polynomial, if possible.

    Args:
        expr: arithmetic expression (no booleans, comparisons, calls).
        env: optional substitution for variables already updated along
            the current path; unmapped variables stay symbolic.

    Returns:
        The polynomial, or ``None`` when the expression is outside the
        polynomial fragment (``%``, calls, boolean subterms, or division
        by a non-constant).
    """
    try:
        return _to_poly(expr, env or {})
    except _NonPolynomial:
        return None


def _to_poly(expr: Expr, env: dict[str, Polynomial]) -> Polynomial:
    if isinstance(expr, IntLit):
        return Polynomial.constant(expr.value)
    if isinstance(expr, Var):
        return env.get(expr.name, Polynomial.var(expr.name))
    if isinstance(expr, Unary):
        if expr.op == "-":
            return -_to_poly(expr.operand, env)
        raise _NonPolynomial()
    if isinstance(expr, Binary):
        if expr.op in ("+", "-", "*"):
            left = _to_poly(expr.left, env)
            right = _to_poly(expr.right, env)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            return left * right
        if expr.op == "/":
            left = _to_poly(expr.left, env)
            right = _to_poly(expr.right, env)
            if not right.is_constant() or right.is_zero():
                raise _NonPolynomial()
            return left.scale(1 / right.constant_term())
        raise _NonPolynomial()
    raise _NonPolynomial()


@dataclass
class LoopPath:
    """One path through a loop body.

    Attributes:
        conditions: branch conditions taken along the path, each as
            ``(expr, polarity)`` — the path is feasible when every
            expr evaluates to its polarity.
        updates: symbolic update map ``var -> polynomial over pre-state``
            for every variable assigned on the path.
    """

    conditions: list[tuple[Expr, bool]] = field(default_factory=list)
    updates: dict[str, Polynomial] = field(default_factory=dict)


def extract_loop_paths(loop: While) -> list[LoopPath] | None:
    """Enumerate symbolic paths through ``loop``'s body.

    Returns ``None`` when the body contains nested loops or any
    non-polynomial assignment, in which case symbolic inductiveness
    checking is unavailable for this loop.
    """
    paths = [LoopPath()]
    try:
        return _extend_paths(loop.body, paths)
    except _NonPolynomial:
        return None


def _extend_paths(block: Block, paths: list[LoopPath]) -> list[LoopPath]:
    for stmt in block.statements:
        if isinstance(stmt, Assign):
            for path in paths:
                value = _to_poly(stmt.value, path.updates)
                path.updates = dict(path.updates)
                path.updates[stmt.name] = value
        elif isinstance(stmt, If):
            new_paths: list[LoopPath] = []
            for path in paths:
                then_path = LoopPath(
                    conditions=path.conditions + [(stmt.cond, True)],
                    updates=dict(path.updates),
                )
                new_paths.extend(_extend_paths(stmt.then_body, [then_path]))
                else_path = LoopPath(
                    conditions=path.conditions + [(stmt.cond, False)],
                    updates=dict(path.updates),
                )
                if stmt.else_body is not None:
                    new_paths.extend(_extend_paths(stmt.else_body, [else_path]))
                else:
                    new_paths.append(else_path)
            paths = new_paths
        elif isinstance(stmt, Block):
            paths = _extend_paths(stmt, paths)
        elif isinstance(stmt, (Assume, Assert)):
            continue
        elif isinstance(stmt, While):
            raise _NonPolynomial()
        else:
            raise PolyError(f"unexpected statement {stmt!r}")
        if len(paths) > 64:
            # Path explosion guard; fall back to bounded checking.
            raise _NonPolynomial()
    return paths
