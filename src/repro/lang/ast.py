"""Abstract syntax tree for the mini imperative language.

The language is deliberately small: integer/rational scalars, arithmetic
and boolean expressions, assignment, ``if``/``else``, ``while`` loops
(each loop carries a stable ``loop_id`` assigned by the parser, used to
tag trace snapshots), ``assume`` (precondition) and ``assert``
(postcondition) annotations, and calls to a fixed set of builtin
external functions (``gcd``, ``mod``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


# --- expressions ---------------------------------------------------------


@dataclass(frozen=True)
class IntLit:
    """Integer literal (fractional literals are built by division)."""

    value: int


@dataclass(frozen=True)
class BoolLit:
    value: bool


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Unary:
    """Unary operation; ``op`` is one of ``-`` or ``!``."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class Binary:
    """Binary operation.

    Arithmetic ops: ``+ - * / %``; comparisons: ``== != < <= > >=``;
    boolean connectives: ``&& ||``.
    """

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Call:
    """Call to a builtin external function (§5.3 of the paper)."""

    func: str
    args: tuple["Expr", ...]


Expr = Union[IntLit, BoolLit, Var, Unary, Binary, Call]


# --- statements ----------------------------------------------------------


@dataclass
class Assign:
    name: str
    value: Expr


@dataclass
class If:
    cond: Expr
    then_body: "Block"
    else_body: "Block | None" = None


@dataclass
class While:
    """A loop; ``loop_id`` indexes loops in parse order (outermost first)."""

    cond: Expr
    body: "Block"
    loop_id: int = -1


@dataclass
class Assume:
    """Constrains inputs; executions violating it are discarded."""

    cond: Expr


@dataclass
class Assert:
    """Postcondition obligation checked after execution."""

    cond: Expr


@dataclass
class Block:
    statements: list["Stmt"] = field(default_factory=list)


Stmt = Union[Assign, If, While, Assume, Assert, Block]


# --- program -------------------------------------------------------------


@dataclass
class Program:
    """A parsed benchmark program.

    Attributes:
        name: program identifier from the ``program`` header.
        inputs: names of nondeterministic input variables, in declaration
            order; everything else is initialized by the program text.
        body: top-level statement block.
        loops: all ``While`` nodes in parse order (``loop_id`` indexes
            into this list).
    """

    name: str
    inputs: list[str]
    body: Block
    loops: list[While] = field(default_factory=list)

    @property
    def assumes(self) -> list[Assume]:
        return [s for s in _walk_stmts(self.body) if isinstance(s, Assume)]

    @property
    def asserts(self) -> list[Assert]:
        return [s for s in _walk_stmts(self.body) if isinstance(s, Assert)]


def _walk_stmts(block: Block):
    for stmt in block.statements:
        yield stmt
        if isinstance(stmt, If):
            yield from _walk_stmts(stmt.then_body)
            if stmt.else_body is not None:
                yield from _walk_stmts(stmt.else_body)
        elif isinstance(stmt, While):
            yield from _walk_stmts(stmt.body)
        elif isinstance(stmt, Block):
            yield from _walk_stmts(stmt)


def walk_statements(block: Block):
    """Yield every statement in ``block``, recursively (pre-order)."""
    yield from _walk_stmts(block)
