"""Tree-walking interpreter with trace instrumentation.

Programs execute over exact rationals (``int`` values stay ``int`` where
possible; division produces ``Fraction``).  Exact arithmetic is what
makes fractional sampling (§4.3 of the paper) sound: relaxed initial
values like ``y0 = -0.6`` are represented as ``Fraction(-3, 5)`` and the
loop semantics are otherwise unchanged.

Instrumentation records a snapshot of the full variable environment at
every loop-head evaluation — i.e. each time a ``while`` guard is tested,
including the final failing test — tagged with the loop id and iteration
number.  This matches the paper's trace collection (Fig. 4a logs inside
the loop every iteration and once after exit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.errors import FuelExhausted, InterpError
from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    Binary,
    Block,
    BoolLit,
    Call,
    Expr,
    If,
    IntLit,
    Program,
    Stmt,
    Unary,
    Var,
    While,
)
from repro.lang.builtins import lookup_builtin

Value = "int | Fraction | bool"


def _normalize(value):
    """Collapse integral Fractions back to int for cleaner traces."""
    if isinstance(value, Fraction) and value.denominator == 1:
        return int(value)
    return value


@dataclass(frozen=True)
class LoopSnapshot:
    """One logged program state at a loop head.

    Attributes:
        loop_id: which loop (parse order) the snapshot belongs to.
        iteration: 0 for the first guard test, incrementing per test.
        state: variable environment at the time of the test.
        guard_value: whether the guard held (False = exit snapshot).
    """

    loop_id: int
    iteration: int
    state: Mapping[str, object]
    guard_value: bool


@dataclass
class ExecutionTrace:
    """Everything recorded from one program execution."""

    inputs: dict[str, object]
    snapshots: list[LoopSnapshot] = field(default_factory=list)
    final_state: dict[str, object] = field(default_factory=dict)
    assume_violated: bool = False
    assertion_failures: list[str] = field(default_factory=list)

    def loop_states(self, loop_id: int, include_exit: bool = True) -> list[dict]:
        """States logged at the head of ``loop_id``."""
        return [
            dict(s.state)
            for s in self.snapshots
            if s.loop_id == loop_id and (include_exit or s.guard_value)
        ]


class _AssumeViolation(Exception):
    """Internal control flow: an ``assume`` failed, discard this run."""


class Interpreter:
    """Executes a :class:`Program` on given inputs, recording a trace."""

    def __init__(self, program: Program, fuel: int = 100_000):
        """
        Args:
            program: parsed program to run.
            fuel: maximum number of statement evaluations before
                :class:`FuelExhausted` is raised.
        """
        self._program = program
        self._fuel_limit = fuel

    def run(self, inputs: Mapping[str, object]) -> ExecutionTrace:
        """Execute the program on ``inputs``.

        Args:
            inputs: values for every declared ``input`` variable; ints,
                Fractions, or floats (floats are converted exactly).

        Returns:
            The recorded :class:`ExecutionTrace`.  When an ``assume``
            fails, the trace has ``assume_violated=True`` and no
            snapshots; assertion failures are recorded, not raised.
        """
        env: dict[str, object] = {}
        for name in self._program.inputs:
            if name not in inputs:
                raise InterpError(f"missing input {name!r}")
            env[name] = _coerce_input(inputs[name])
        extra = set(inputs) - set(self._program.inputs)
        if extra:
            # Permit seeding non-input variables: fractional sampling
            # overrides initializers by pre-binding them (see
            # sampling.fractional for how initializer statements are
            # rewritten instead); unknown names are still an error.
            raise InterpError(f"unknown inputs: {sorted(extra)}")

        trace = ExecutionTrace(inputs={k: _coerce_input(v) for k, v in inputs.items()})
        self._fuel = self._fuel_limit
        try:
            self._exec_block(self._program.body, env, trace)
        except _AssumeViolation:
            trace.assume_violated = True
            trace.snapshots.clear()
        trace.final_state = {k: _normalize(v) for k, v in env.items()}
        return trace

    def execute_block(self, block: Block, state: Mapping[str, object]) -> dict[str, object]:
        """Execute a statement block from an arbitrary state.

        Used by the bounded checker to take one loop-body step from a
        (possibly unreachable) state when testing inductiveness.

        Args:
            block: statements to run (e.g. ``loop.body``).
            state: starting environment (not mutated).

        Returns:
            The environment after execution.
        """
        env = {k: _normalize(_coerce_input(v)) for k, v in state.items()}
        trace = ExecutionTrace(inputs={})
        self._fuel = self._fuel_limit
        self._exec_block(block, env, trace)
        return {k: _normalize(v) for k, v in env.items()}

    # -- statement execution -------------------------------------------------

    def _spend_fuel(self) -> None:
        self._fuel -= 1
        if self._fuel <= 0:
            raise FuelExhausted(
                f"program {self._program.name!r} exceeded {self._fuel_limit} steps"
            )

    def _exec_block(self, block: Block, env: dict, trace: ExecutionTrace) -> None:
        for stmt in block.statements:
            self._exec_stmt(stmt, env, trace)

    def _exec_stmt(self, stmt: Stmt, env: dict, trace: ExecutionTrace) -> None:
        self._spend_fuel()
        if isinstance(stmt, Assign):
            env[stmt.name] = _normalize(self._eval(stmt.value, env))
        elif isinstance(stmt, If):
            if self._eval_bool(stmt.cond, env):
                self._exec_block(stmt.then_body, env, trace)
            elif stmt.else_body is not None:
                self._exec_block(stmt.else_body, env, trace)
        elif isinstance(stmt, While):
            iteration = 0
            while True:
                guard = self._eval_bool(stmt.cond, env)
                trace.snapshots.append(
                    LoopSnapshot(
                        loop_id=stmt.loop_id,
                        iteration=iteration,
                        state={k: _normalize(v) for k, v in env.items()},
                        guard_value=guard,
                    )
                )
                if not guard:
                    break
                self._exec_block(stmt.body, env, trace)
                iteration += 1
                self._spend_fuel()
        elif isinstance(stmt, Assume):
            if not self._eval_bool(stmt.cond, env):
                raise _AssumeViolation()
        elif isinstance(stmt, Assert):
            if not self._eval_bool(stmt.cond, env):
                trace.assertion_failures.append(
                    f"assertion failed in {self._program.name!r}"
                )
        elif isinstance(stmt, Block):
            self._exec_block(stmt, env, trace)
        else:
            raise InterpError(f"unknown statement {stmt!r}")

    # -- expression evaluation -------------------------------------------------

    def _eval_bool(self, expr: Expr, env: dict) -> bool:
        value = self._eval(expr, env)
        if not isinstance(value, bool):
            raise InterpError(f"expected boolean, got {value!r}")
        return value

    def _eval(self, expr: Expr, env: dict):
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, BoolLit):
            return expr.value
        if isinstance(expr, Var):
            if expr.name not in env:
                raise InterpError(f"undefined variable {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, Unary):
            operand = self._eval(expr.operand, env)
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                if not isinstance(operand, bool):
                    raise InterpError(f"'!' needs a boolean, got {operand!r}")
                return not operand
            raise InterpError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, Call):
            func = lookup_builtin(expr.func)
            args = [self._eval(a, env) for a in expr.args]
            return _normalize(func(*args))
        raise InterpError(f"unknown expression {expr!r}")

    def _eval_binary(self, expr: Binary, env: dict):
        op = expr.op
        if op == "&&":
            return self._eval_bool(expr.left, env) and self._eval_bool(expr.right, env)
        if op == "||":
            return self._eval_bool(expr.left, env) or self._eval_bool(expr.right, env)
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise InterpError("division by zero")
            return Fraction(left) / Fraction(right)
        if op == "%":
            return lookup_builtin("mod")(left, right)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise InterpError(f"unknown binary operator {op!r}")


def _coerce_input(value):
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, Fraction):
        return _normalize(value)
    if isinstance(value, float):
        return _normalize(Fraction(value).limit_denominator(10**6))
    raise InterpError(f"unsupported input value {value!r}")


def run_program(
    program: Program, inputs: Mapping[str, object], fuel: int = 100_000
) -> ExecutionTrace:
    """Convenience wrapper: run ``program`` once on ``inputs``."""
    return Interpreter(program, fuel=fuel).run(inputs)
