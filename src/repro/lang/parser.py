"""Recursive-descent parser for the mini imperative language.

Grammar (EBNF):

    program   := "program" IDENT ";" { "input" IDENT {"," IDENT} ";" } stmt*
    stmt      := assign | if | while | assume | assert | block
    assign    := IDENT "=" expr ";"
    if        := "if" "(" expr ")" block [ "else" block ]
    while     := "while" "(" expr ")" block
    assume    := "assume" "(" expr ")" ";"
    assert    := "assert" "(" expr ")" ";"
    block     := "{" stmt* "}"
    expr      := or
    or        := and { "||" and }
    and       := cmp { "&&" cmp }
    cmp       := sum [ ("=="|"!="|"<"|"<="|">"|">=") sum ]
    sum       := term { ("+"|"-") term }
    term      := unary { ("*"|"/"|"%") unary }
    unary     := ("-"|"!") unary | atom
    atom      := INT | "true" | "false" | IDENT [ "(" args ")" ] | "(" expr ")"
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    Binary,
    Block,
    BoolLit,
    Call,
    Expr,
    If,
    IntLit,
    Program,
    Stmt,
    Unary,
    Var,
    While,
)
from repro.lang.lexer import Token, tokenize

_COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        self._loops: list[While] = []

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        return token.kind == kind and (text is None or token.text == text)

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._peek()
        if not self._check(kind, text):
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text or token.kind!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _match(self, kind: str, text: str | None = None) -> bool:
        if self._check(kind, text):
            self._advance()
            return True
        return False

    # -- program -----------------------------------------------------------

    def parse_program(self) -> Program:
        self._expect("keyword", "program")
        name = self._expect("ident").text
        self._expect("op", ";")
        inputs: list[str] = []
        while self._match("keyword", "input"):
            inputs.append(self._expect("ident").text)
            while self._match("op", ","):
                inputs.append(self._expect("ident").text)
            self._expect("op", ";")
        body = Block()
        while not self._check("eof"):
            body.statements.append(self.parse_stmt())
        return Program(name=name, inputs=inputs, body=body, loops=self._loops)

    # -- statements ---------------------------------------------------------

    def parse_stmt(self) -> Stmt:
        if self._check("keyword", "while"):
            return self._parse_while()
        if self._check("keyword", "if"):
            return self._parse_if()
        if self._check("keyword", "assume"):
            self._advance()
            self._expect("op", "(")
            cond = self.parse_expr()
            self._expect("op", ")")
            self._expect("op", ";")
            return Assume(cond)
        if self._check("keyword", "assert"):
            self._advance()
            self._expect("op", "(")
            cond = self.parse_expr()
            self._expect("op", ")")
            self._expect("op", ";")
            return Assert(cond)
        if self._check("op", "{"):
            return self._parse_block()
        name_token = self._expect("ident")
        self._expect("op", "=")
        value = self.parse_expr()
        self._expect("op", ";")
        return Assign(name_token.text, value)

    def _parse_block(self) -> Block:
        self._expect("op", "{")
        block = Block()
        while not self._check("op", "}"):
            if self._check("eof"):
                token = self._peek()
                raise ParseError("unterminated block", token.line, token.column)
            block.statements.append(self.parse_stmt())
        self._expect("op", "}")
        return block

    def _parse_while(self) -> While:
        self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self.parse_expr()
        self._expect("op", ")")
        loop = While(cond=cond, body=Block(), loop_id=len(self._loops))
        # Register before parsing the body so outer loops get smaller ids.
        self._loops.append(loop)
        loop.body = self._parse_block()
        return loop

    def _parse_if(self) -> If:
        self._expect("keyword", "if")
        self._expect("op", "(")
        cond = self.parse_expr()
        self._expect("op", ")")
        then_body = self._parse_block()
        else_body = None
        if self._match("keyword", "else"):
            if self._check("keyword", "if"):
                else_body = Block([self._parse_if()])
            else:
                else_body = self._parse_block()
        return If(cond, then_body, else_body)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._check("op", "||"):
            self._advance()
            left = Binary("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_cmp()
        while self._check("op", "&&"):
            self._advance()
            left = Binary("&&", left, self._parse_cmp())
        return left

    def _parse_cmp(self) -> Expr:
        left = self._parse_sum()
        token = self._peek()
        if token.kind == "op" and token.text in _COMPARISONS:
            self._advance()
            return Binary(token.text, left, self._parse_sum())
        return left

    def _parse_sum(self) -> Expr:
        left = self._parse_term()
        while self._peek().kind == "op" and self._peek().text in ("+", "-"):
            op = self._advance().text
            left = Binary(op, left, self._parse_term())
        return left

    def _parse_term(self) -> Expr:
        left = self._parse_unary()
        while self._peek().kind == "op" and self._peek().text in ("*", "/", "%"):
            op = self._advance().text
            left = Binary(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.kind == "op" and token.text in ("-", "!"):
            self._advance()
            return Unary(token.text, self._parse_unary())
        return self._parse_atom()

    def _parse_atom(self) -> Expr:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return IntLit(int(token.text))
        if token.kind == "keyword" and token.text in ("true", "false"):
            self._advance()
            return BoolLit(token.text == "true")
        if token.kind == "ident":
            self._advance()
            if self._match("op", "("):
                args: list[Expr] = []
                if not self._check("op", ")"):
                    args.append(self.parse_expr())
                    while self._match("op", ","):
                        args.append(self.parse_expr())
                self._expect("op", ")")
                return Call(token.text, tuple(args))
            return Var(token.text)
        if self._match("op", "("):
            inner = self.parse_expr()
            self._expect("op", ")")
            return inner
        raise ParseError(
            f"unexpected token {token.text or token.kind!r}", token.line, token.column
        )


def parse_program(source: str) -> Program:
    """Parse a full program from source text."""
    return _Parser(tokenize(source)).parse_program()


def parse_expr(source: str) -> Expr:
    """Parse a single expression (for tests and ad-hoc formulas)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expr()
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise ParseError(
            f"trailing input after expression: {trailing.text!r}",
            trailing.line,
            trailing.column,
        )
    return expr
