"""Pretty-printer for the mini language (round-trips through the parser)."""

from __future__ import annotations

from repro.errors import LangError
from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    Binary,
    Block,
    BoolLit,
    Call,
    Expr,
    If,
    IntLit,
    Program,
    Stmt,
    Unary,
    Var,
    While,
)

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "%": 5,
}


def pretty_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Unary):
        inner = pretty_expr(expr.operand, 6)
        return f"{expr.op}{inner}"
    if isinstance(expr, Call):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, Binary):
        prec = _PRECEDENCE[expr.op]
        left = pretty_expr(expr.left, prec)
        # Right operand binds tighter to keep left-associativity explicit.
        right = pretty_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    raise LangError(f"cannot pretty-print {expr!r}")


def _pretty_stmt(stmt: Stmt, indent: int, out: list[str]) -> None:
    pad = "  " * indent
    if isinstance(stmt, Assign):
        out.append(f"{pad}{stmt.name} = {pretty_expr(stmt.value)};")
    elif isinstance(stmt, Assume):
        out.append(f"{pad}assume ({pretty_expr(stmt.cond)});")
    elif isinstance(stmt, Assert):
        out.append(f"{pad}assert ({pretty_expr(stmt.cond)});")
    elif isinstance(stmt, While):
        out.append(f"{pad}while ({pretty_expr(stmt.cond)}) {{")
        for inner in stmt.body.statements:
            _pretty_stmt(inner, indent + 1, out)
        out.append(f"{pad}}}")
    elif isinstance(stmt, If):
        out.append(f"{pad}if ({pretty_expr(stmt.cond)}) {{")
        for inner in stmt.then_body.statements:
            _pretty_stmt(inner, indent + 1, out)
        if stmt.else_body is not None:
            out.append(f"{pad}}} else {{")
            for inner in stmt.else_body.statements:
                _pretty_stmt(inner, indent + 1, out)
        out.append(f"{pad}}}")
    elif isinstance(stmt, Block):
        out.append(f"{pad}{{")
        for inner in stmt.statements:
            _pretty_stmt(inner, indent + 1, out)
        out.append(f"{pad}}}")
    else:
        raise LangError(f"cannot pretty-print {stmt!r}")


def pretty_program(program: Program) -> str:
    """Render a program as parseable source text."""
    lines = [f"program {program.name};"]
    if program.inputs:
        lines.append("input " + ", ".join(program.inputs) + ";")
    for stmt in program.body.statements:
        _pretty_stmt(stmt, 0, lines)
    return "\n".join(lines) + "\n"
