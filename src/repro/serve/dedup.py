"""In-flight request collapsing keyed by canonical fingerprint.

N concurrent identical solve requests (same problem, solver, and
config → same :func:`~repro.utils.fingerprint.problem_fingerprint`)
must trigger exactly **one** solve: the first request starts the work
as the *leader*; every overlapping request becomes a *follower* and
awaits the same task.  The outcome — success or exception — fans out
to every waiter.

This is distinct from the result memo: dedup collapses requests that
overlap *in time*; the memo replays requests that repeat *after*
completion.  Together they guarantee at most one solve per fingerprint
is ever running, and at most one per memo window ever runs at all.

The shared work runs as its own task and every waiter awaits it
through :func:`asyncio.shield`, so no client disconnect — leader or
follower — can cancel the solve under the others.  All state lives on
the event loop thread, so no lock is needed.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable


class InflightDeduper:
    """Collapses concurrent identical requests onto one running solve."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Task] = {}
        self.led = 0
        self.joined = 0

    def __len__(self) -> int:
        return len(self._inflight)

    async def run(
        self,
        key: str,
        work: Callable[[], Awaitable[object]],
    ) -> tuple[object, bool]:
        """Run ``work`` once per in-flight ``key``.

        Returns ``(outcome, joined)``: ``joined`` is False for the
        leader whose call actually started ``work`` and True for
        followers that shared its outcome.  The work's exception
        propagates to every waiter; the key is cleared on completion,
        so a failed fingerprint can be retried by the next request.
        """
        task = self._inflight.get(key)
        if task is None:
            joined = False
            self.led += 1
            task = asyncio.get_running_loop().create_task(work())
            self._inflight[key] = task
            task.add_done_callback(lambda t: self._finish(key, t))
        else:
            joined = True
            self.joined += 1
        return await asyncio.shield(task), joined

    def _finish(self, key: str, task: asyncio.Task) -> None:
        self._inflight.pop(key, None)
        if not task.cancelled():
            # Retrieve once so a task whose every waiter disconnected
            # does not log "exception was never retrieved".
            task.exception()

    def stats(self) -> dict:
        return {"inflight": len(self._inflight), "led": self.led, "joined": self.joined}
