"""The asyncio HTTP server and the ``python -m repro serve`` entry.

A deliberately minimal HTTP/1.1 implementation on
:func:`asyncio.start_server` — stdlib only, one connection per
request (``Connection: close``), JSON in and out.  That is all four
endpoints need, and it keeps the server importable everywhere the
repo runs (no aiohttp, no new runtime dependencies).

Request path for ``POST /v1/solve``::

    parse (protocol) → admit (admission) → memo? → dedup → executor
          400 on bad input   429/503 over quota   replay   collapse

The memo and result stores hold *response payloads* (plain dicts), so
replays are byte-for-byte what the original request saw, re-flagged
with ``"memo"``/``"dedup"`` to say how this particular request was
served.  With ``?stream=1`` the same path runs under a Server-Sent
Events response: lifecycle events stream live (in-process executor)
while the solve runs, then a terminal ``result`` event carries the
full response payload.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

from repro.api.memo import ResultMemo
from repro.api.service import InvariantService
from repro.infer.runner import STATUS_OK
from repro.serve.admission import AdmissionController
from repro.serve.dedup import InflightDeduper
from repro.serve.executor import (
    DEFAULT_SOLVE_THREADS,
    InProcessExecutor,
    QueueExecutor,
)
from repro.serve.protocol import (
    ProtocolError,
    SolveRequest,
    error_response,
    parse_solve_request,
    replayed,
    solve_response,
    solvers_response,
)
from repro.serve.stream import SSE_HEADERS, EventStream, sse_frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.infer.runner import ProblemRecord

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8977
DEFAULT_MEMO_ENTRIES = 256
MAX_BODY_BYTES = 2 * 1024 * 1024
MAX_HEADERS = 100

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Maps straight to an error response."""

    def __init__(self, status: int, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class InvariantServer:
    """One service + one executor behind four HTTP endpoints.

    Args:
        service: the shared :class:`InvariantService` (its bus feeds
            SSE clients; its cache is shared by in-process solves).
        executor: an :class:`InProcessExecutor` or :class:`QueueExecutor`.
        admission: quota policy; defaults to a permissive controller.
        memo_entries: bound for the finished-response memo and the
            ``/v1/results`` store; 0 disables replay entirely.
        stream_max_pending: per-SSE-client pending-event bound
            (overflow drops oldest; see :mod:`repro.serve.stream`).
    """

    def __init__(
        self,
        service: InvariantService,
        executor,
        *,
        admission: AdmissionController | None = None,
        memo_entries: int = DEFAULT_MEMO_ENTRIES,
        stream_max_pending: int | None = None,
    ):
        self.service = service
        self.executor = executor
        self.admission = admission or AdmissionController()
        self.dedup = InflightDeduper()
        self.memo: ResultMemo[dict] = ResultMemo(max_entries=memo_entries)
        self.results: ResultMemo[dict] = ResultMemo(max_entries=max(memo_entries, 1))
        self.stream_max_pending = stream_max_pending
        self.requests = 0
        self.streams_active = 0
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self, host: str = DEFAULT_HOST, port: int = 0) -> None:
        """Bind and start accepting (``port=0`` picks a free port)."""
        self._server = await asyncio.start_server(self._handle, host, port)

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.executor.close()

    # -- connection handling ----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                parsed = await self._read_request(reader)
                if parsed is None:
                    return
                method, path, query, headers, body = parsed
                self.requests += 1
                client = headers.get("x-client-id") or self._peer(writer)
                await self._route(
                    method, path, query, headers, body, client, writer
                )
            except _HttpError as exc:
                self._write_json(
                    writer,
                    exc.status,
                    error_response(str(exc)),
                    retry_after=exc.retry_after,
                )
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
            ):
                pass  # client went away; nothing to answer
            except Exception as exc:  # noqa: BLE001 — last-resort 500
                try:
                    self._write_json(
                        writer,
                        500,
                        error_response(f"{type(exc).__name__}: {exc}"),
                    )
                except (ConnectionResetError, BrokenPipeError):
                    pass
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    def _peer(writer: asyncio.StreamWriter) -> str:
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if isinstance(peer, (tuple, list)) and peer else "?"

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, f"malformed request line: {parts[:2]}")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= MAX_HEADERS:
                raise _HttpError(400, "too many headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError as exc:
            raise _HttpError(400, "bad Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(
                413, f"body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        return method, split.path.rstrip("/") or "/", query, headers, body

    # -- routing ----------------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        headers: dict[str, str],
        body: bytes,
        client: str,
        writer: asyncio.StreamWriter,
    ) -> None:
        if path == "/v1/solve":
            if method != "POST":
                raise _HttpError(405, "POST /v1/solve")
            stream = query.get("stream", "0") not in ("", "0", "false")
            await self._solve(body, client, stream, writer)
            return
        if path == "/v1/solvers":
            if method != "GET":
                raise _HttpError(405, "GET /v1/solvers")
            self._write_json(writer, 200, solvers_response())
            return
        if path == "/v1/stats":
            if method != "GET":
                raise _HttpError(405, "GET /v1/stats")
            self._write_json(writer, 200, self.stats())
            return
        if path.startswith("/v1/results/"):
            if method != "GET":
                raise _HttpError(405, "GET /v1/results/<id>")
            result_id = path[len("/v1/results/"):]
            stored = self.results.get(result_id)
            if stored is None:
                raise _HttpError(404, f"no result {result_id!r}")
            self._write_json(writer, 200, stored)
            return
        raise _HttpError(404, f"no route {method} {path}")

    # -- the solve path ----------------------------------------------------------

    def _fingerprint(self, request: SolveRequest) -> str:
        from repro.utils.fingerprint import problem_fingerprint

        config = request.config
        if config is None:
            if isinstance(self.executor, QueueExecutor):
                config = self.executor.config
            else:
                config = self.service.config_for(request.solver)
        return problem_fingerprint(request.problem, request.solver, config)

    async def _solve_shared(self, request: SolveRequest, fingerprint: str) -> dict:
        """The deduplicated, memoizing solve; returns the base response.

        Memoization happens *inside* the shared work so the result is
        stored even when every waiting client has disconnected.
        """

        async def work() -> dict:
            record: "ProblemRecord" = await self.executor.solve(
                request, fingerprint
            )
            response = solve_response(fingerprint, record, request.solver)
            if record.status == STATUS_OK:
                self.memo.put(fingerprint, response)
            self.results.put(response["id"], response)
            return response

        response, joined = await self.dedup.run(fingerprint, work)
        return replayed(response, dedup=joined)

    async def _solve(
        self,
        body: bytes,
        client: str,
        stream: bool,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = parse_solve_request(body)
        except ProtocolError as exc:
            raise _HttpError(400, str(exc)) from exc
        status, retry_after = self.admission.admit(client)
        if status:
            reason = (
                "client over request rate"
                if status == 429
                else "server at max in-flight solves"
            )
            raise _HttpError(status, reason, retry_after=retry_after)
        try:
            fingerprint = self._fingerprint(request)
            stored = self.memo.get(fingerprint)
            if stream:
                await self._solve_stream(request, fingerprint, stored, writer)
            elif stored is not None:
                self._write_json(writer, 200, replayed(stored, memo=True))
            else:
                try:
                    response = await self._solve_shared(request, fingerprint)
                except ProtocolError as exc:
                    raise _HttpError(400, str(exc)) from exc
                self._write_json(writer, 200, response)
        finally:
            self.admission.release()

    async def _solve_stream(
        self,
        request: SolveRequest,
        fingerprint: str,
        stored: dict | None,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._write_head(writer, 200, SSE_HEADERS)
        self.streams_active += 1
        stream = EventStream(
            asyncio.get_running_loop(),
            **(
                {"max_pending": self.stream_max_pending}
                if self.stream_max_pending is not None
                else {}
            ),
        )
        saw_solved = False

        def forward(event) -> None:
            nonlocal saw_solved
            if (
                event.problem == request.problem.name
                and event.solver == request.solver
            ):
                if event.kind == "problem_solved":
                    saw_solved = True
                stream.publish(event)

        unsubscribe = self.service.bus.subscribe(forward)
        try:
            writer.write(
                sse_frame(
                    "status",
                    {
                        "event": "status",
                        "state": "memo" if stored is not None else "started",
                        "mode": self.executor.mode,
                        "problem": request.problem.name,
                        "solver": request.solver,
                    },
                )
            )
            await writer.drain()
            if stored is not None:
                response = replayed(stored, memo=True)
            else:
                solve = asyncio.ensure_future(
                    self._solve_shared(request, fingerprint)
                )
                try:
                    while not solve.done():
                        frames = await stream.drain(timeout=0.1)
                        for frame in frames:
                            writer.write(frame)
                        if frames:
                            await writer.drain()
                    response = solve.result()
                except ProtocolError as exc:
                    writer.write(
                        sse_frame(
                            "error", {"event": "error", "error": str(exc)}
                        )
                    )
                    await writer.drain()
                    return
                except (ConnectionResetError, BrokenPipeError):
                    # Client gone: the shared solve continues for any
                    # followers; nothing more to write here.
                    raise
                # One loop tick so events emitted just before completion
                # (scheduled with call_soon_threadsafe) land, then flush.
                await asyncio.sleep(0)
                for frame in stream.drain_now():
                    writer.write(frame)
            if not saw_solved:
                # Queue-backed (or memo-replayed) solves have no live
                # bus feed; synthesize the terminal lifecycle event so
                # every stream ends with problem_solved → result.
                writer.write(
                    sse_frame(
                        "problem_solved",
                        {
                            "event": "problem_solved",
                            "problem": response["problem"],
                            "solver": response["solver"],
                            "solved": response["solved"],
                            "runtime_seconds": response["runtime_seconds"],
                            "attempts": (
                                response["result"]["attempts"]
                                if response.get("result")
                                else 0
                            ),
                        },
                    )
                )
            writer.write(sse_frame("result", response))
            await writer.drain()
        finally:
            self.streams_active -= 1
            unsubscribe()

    # -- stats ------------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "requests": self.requests,
            "streams_active": self.streams_active,
            "executor": self.executor.describe(),
            "admission": self.admission.stats(),
            "dedup": self.dedup.stats(),
            "memo": self.memo.stats(),
            "results_stored": len(self.results),
            "cache": self.service.cache_stats,
            "subscriber_errors": self.service.bus.subscriber_errors,
        }

    # -- response writing --------------------------------------------------------

    @staticmethod
    def _write_head(
        writer: asyncio.StreamWriter,
        status: int,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}", "Connection: close"]
        lines.extend(f"{name}: {value}" for name, value in headers)
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))

    @classmethod
    def _write_json(
        cls,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        retry_after: float | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
        headers = [
            ("Content-Type", "application/json; charset=utf-8"),
            ("Content-Length", str(len(body))),
        ]
        if retry_after is not None:
            headers.append(("Retry-After", str(max(1, round(retry_after)))))
        cls._write_head(writer, status, tuple(headers))
        writer.write(body)


# -- CLI entry -------------------------------------------------------------------


def build_server(args) -> tuple[InvariantServer, InvariantService]:
    """Construct the service + executor + server from parsed CLI args."""
    from repro.infer.config import InferenceConfig

    config = InferenceConfig(max_epochs=args.epochs, backend=args.backend)
    service = InvariantService(config, cache_dir=args.cache_dir)
    if args.queue_dir:
        executor = QueueExecutor(
            args.queue_dir,
            solver=args.solver,
            config=config,
            timeout_seconds=args.timeout,
            wait_seconds=args.queue_wait,
        )
    else:
        executor = InProcessExecutor(service, threads=args.solve_threads)
    admission = AdmissionController(
        rate=args.rate, burst=args.burst, max_inflight=args.max_inflight
    )
    server = InvariantServer(
        service,
        executor,
        admission=admission,
        memo_entries=args.memo,
    )
    return server, service


async def _amain(args) -> int:
    server, _service = build_server(args)
    await server.start(args.host, args.port)
    mode = server.executor.describe()
    print(
        f"serving on http://{args.host}:{server.port} "
        f"(mode={mode['mode']}, solver={args.solver}); Ctrl-C to stop",
        flush=True,
    )
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, ValueError):  # pragma: no cover
            pass
    serve_task = asyncio.ensure_future(server.serve_forever())
    await stop.wait()
    serve_task.cancel()
    await server.close()
    print("server stopped", flush=True)
    return 0


def serve_main(args) -> int:
    """The ``python -m repro serve`` command body."""
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    """Standalone entry (``python -m repro.serve.app``)."""
    from repro.cli import build_parser

    args = build_parser().parse_args(["serve", *(argv or [])])
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
