"""Network front end: an asyncio HTTP/JSON service over the API.

``python -m repro serve`` exposes one long-lived
:class:`~repro.api.service.InvariantService` over HTTP — pure stdlib
(``asyncio`` + ``json``), no new runtime dependencies:

* ``POST /v1/solve`` — solve one problem (inline definition or a suite
  reference); ``?stream=1`` upgrades the response to Server-Sent
  Events and streams the live lifecycle feed (attempts, stage
  timings, candidate checks) before the final result.
* ``GET /v1/solvers`` — the registered solver table.
* ``GET /v1/results/<id>`` — re-fetch a finished result by id.
* ``GET /v1/stats`` — admission/dedup/memo/cache counters.

Three request-collapsing layers sit in front of the solver, all keyed
by the canonical :func:`~repro.utils.fingerprint.problem_fingerprint`
(the same key the trace-cache disk spill and the distributed queue
use):

1. **admission** (:mod:`repro.serve.admission`) — per-client token
   buckets and a global in-flight cap; over-limit requests get
   ``429``/``503`` with ``Retry-After`` instead of queueing unbounded.
2. **dedup** (:mod:`repro.serve.dedup`) — N concurrent identical
   requests trigger exactly one solve; followers await the leader's
   future.
3. **memo** (:class:`~repro.api.memo.ResultMemo`) — finished results
   replay instantly (``"memo": true`` in the response).

Solving is pluggable (:mod:`repro.serve.executor`): the default runs
in-process on a thread pool sharing the service trace cache;
``--queue-dir`` enqueues onto the :mod:`repro.dist` work queue and
tails the journal, so any fleet of ``python -m repro worker``
processes does the solving.
"""

from repro.serve.app import InvariantServer, main, serve_main
from repro.serve.protocol import ProtocolError, parse_solve_request

__all__ = [
    "InvariantServer",
    "ProtocolError",
    "main",
    "parse_solve_request",
    "serve_main",
]
