"""Server-Sent Events: bridging the sync EventBus into asyncio clients.

Solvers emit lifecycle events synchronously on the solving thread; SSE
clients live on the asyncio loop.  An :class:`EventStream` is the
bridge for one client: the bus callback (solver thread) hands each
event to the loop with ``call_soon_threadsafe``; the client coroutine
awaits :meth:`drain` and writes frames.

Backpressure is the whole design problem: a slow or stalled client
must never block the solver or grow memory without bound.  Each stream
holds a *bounded* pending deque; when it overflows, the **oldest**
pending event is dropped (the newest events are the ones a live
dashboard wants) and the loss is made visible — the next drain yields
a synthetic ``dropped`` event carrying the count, so clients can tell
"quiet solver" from "I was too slow".

Frame format (`text/event-stream`)::

    event: stage_timed
    data: {"event": "stage_timed", "problem": "ps2", ...}

Every frame's ``data`` is one JSON object; the ``event`` field names
the kind (the same ``Event.kind`` tags :meth:`Event.to_dict` embeds).
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.events import Event

# Enough for the chattiest solver (hundreds of candidate checks) while
# bounding a stalled client to a few hundred small dicts.
DEFAULT_MAX_PENDING = 512

SSE_HEADERS = (
    ("Content-Type", "text/event-stream; charset=utf-8"),
    ("Cache-Control", "no-store"),
)


def sse_frame(kind: str, payload: dict) -> bytes:
    """One SSE frame: ``event:`` the kind, ``data:`` the JSON payload."""
    data = json.dumps(payload, sort_keys=True, default=repr)
    return f"event: {kind}\ndata: {data}\n\n".encode("utf-8")


def event_frame(event: "Event") -> bytes:
    """The SSE frame for one lifecycle event."""
    payload = event.to_dict()
    return sse_frame(payload["event"], payload)


class EventStream:
    """One SSE client's bounded, thread-fed event queue.

    Args:
        loop: the serving event loop (frames are consumed there).
        max_pending: pending-event bound; overflow drops the oldest
            and surfaces a ``dropped`` event on the next drain.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        *,
        max_pending: int = DEFAULT_MAX_PENDING,
    ):
        self._loop = loop
        self._pending: deque[dict] = deque()
        self._max_pending = max(1, max_pending)
        self._wakeup = asyncio.Event()
        self._closed = False
        self.dropped_total = 0
        self._dropped_unreported = 0

    # -- producer side (any thread) --------------------------------------------

    def publish(self, event: "Event") -> None:
        """Bus callback: hand one event to the loop (thread-safe)."""
        try:
            self._loop.call_soon_threadsafe(self._push, event.to_dict())
        except RuntimeError:
            pass  # loop already closed; the client is gone anyway

    def close(self) -> None:
        """No more events; pending ones still drain (thread-safe)."""
        try:
            self._loop.call_soon_threadsafe(self._close)
        except RuntimeError:
            pass

    # -- loop-side internals ----------------------------------------------------

    def _push(self, payload: dict) -> None:
        if self._closed:
            return
        if len(self._pending) >= self._max_pending:
            self._pending.popleft()
            self.dropped_total += 1
            self._dropped_unreported += 1
        self._pending.append(payload)
        self._wakeup.set()

    def _close(self) -> None:
        self._closed = True
        self._wakeup.set()

    # -- consumer side (the loop) -----------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed and not self._pending

    def drain_now(self) -> Iterator[bytes]:
        """Frames for everything currently pending (no waiting).

        A ``dropped`` event is emitted first when events were lost
        since the previous drain, so the loss is reported in-order.
        """
        if self._dropped_unreported:
            count, self._dropped_unreported = self._dropped_unreported, 0
            yield sse_frame(
                "dropped", {"event": "dropped", "count": count}
            )
        while self._pending:
            payload = self._pending.popleft()
            yield sse_frame(payload["event"], payload)

    async def drain(self, timeout: float | None = None) -> list[bytes]:
        """Wait for activity, then return all pending frames.

        Returns ``[]`` on timeout or once the stream is closed and
        empty — callers distinguish the two via :attr:`closed`.
        """
        if not self._pending and not self._closed:
            self._wakeup.clear()
            try:
                await asyncio.wait_for(self._wakeup.wait(), timeout)
            except asyncio.TimeoutError:
                return []
        return list(self.drain_now())
