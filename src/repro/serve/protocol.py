"""Wire schemas for the HTTP front end.

Requests and responses are plain JSON riding on the existing
:mod:`repro.dist.wire` round-trips, so anything the distributed queue
can express, the HTTP API can too (and vice versa: a queue worker can
solve an HTTP-submitted problem unmodified).

``POST /v1/solve`` accepts either encoding of a problem:

* suite reference — ``{"suite": "nla", "problem": "ps2"}``: resolved
  through the benchmark registry, identical to ``python -m repro run``;
* inline — ``{"problem": {...}}`` with the full
  :func:`~repro.dist.wire.problem_to_dict` payload.

Optional fields: ``"solver"`` (registry name, default ``gcln``) and
``"config"`` (:func:`~repro.dist.wire.config_to_dict` payload,
default: the server's config).

The solve response schema (shared by the plain JSON reply, the memo
replay, and the terminal SSE ``result`` event)::

    {
      "id": "<16-hex result id>",         # fingerprint prefix
      "fingerprint": "<40-hex>",          # full canonical fingerprint
      "problem": "ps2", "solver": "gcln",
      "status": "ok" | "timeout" | "error",
      "solved": true, "runtime_seconds": 1.2,
      "error": null | "...",
      "memo": false,                      # replayed from the memo?
      "dedup": false,                     # joined another request's solve?
      "result": { SolveResult.to_dict() } | null
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.api.solver import (
    SolverCapabilityError,
    UnknownSolverError,
    get_solver,
    require_solver_supports,
    solver_entries,
)
from repro.dist.wire import config_from_dict, problem_from_dict
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.infer.config import InferenceConfig
    from repro.infer.problem import Problem
    from repro.infer.runner import ProblemRecord

# Result ids are a fingerprint prefix: long enough to never collide in
# a bounded result store, short enough to paste into a URL.
RESULT_ID_HEX = 16


class ProtocolError(ReproError):
    """A malformed request; maps to HTTP 400 with this message."""


@dataclass
class SolveRequest:
    """A parsed, validated ``POST /v1/solve`` body."""

    problem: "Problem"
    solver: str = "gcln"
    config: "InferenceConfig | None" = None


def result_id(fingerprint: str) -> str:
    """The public result id for a canonical fingerprint."""
    return fingerprint[:RESULT_ID_HEX]


def parse_solve_request(body: bytes) -> SolveRequest:
    """Parse and validate a solve request body.

    Raises:
        ProtocolError: on malformed JSON, an unknown problem/solver, a
            body that is neither encoding, or a trace-only problem sent
            to a solver without trace-only support.
    """
    try:
        data = json.loads(body or b"null")
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError(
            "request body must be a JSON object with either "
            '{"suite": ..., "problem": ...} or {"problem": {...}}'
        )

    solver = data.get("solver", "gcln")
    if not isinstance(solver, str):
        raise ProtocolError(f"solver must be a string, got {solver!r}")
    try:
        get_solver(solver)
    except UnknownSolverError as exc:
        raise ProtocolError(str(exc)) from exc

    config = None
    if data.get("config") is not None:
        if not isinstance(data["config"], dict):
            raise ProtocolError("config must be a JSON object")
        try:
            config = config_from_dict(data["config"])
        except (TypeError, ValueError, KeyError) as exc:
            raise ProtocolError(f"bad config: {exc}") from exc

    suite = data.get("suite")
    spec = data.get("problem")
    if suite is not None:
        if not isinstance(spec, str):
            raise ProtocolError(
                'a suite reference needs a problem name: '
                '{"suite": "nla", "problem": "ps2"}'
            )
        from repro.bench import SUITES, suite_problems

        if suite not in SUITES:
            raise ProtocolError(
                f"unknown suite {suite!r}; available: {', '.join(SUITES)}"
            )
        matches = suite_problems(suite, [spec])
        if not matches:
            raise ProtocolError(f"no problem {spec!r} in suite {suite!r}")
        return SolveRequest(problem=matches[0], solver=solver, config=config)

    if isinstance(spec, dict):
        try:
            problem = problem_from_dict(spec)
        except (ReproError, TypeError, ValueError, KeyError) as exc:
            raise ProtocolError(f"bad inline problem: {exc}") from exc
        try:
            require_solver_supports(solver, problem)
        except SolverCapabilityError as exc:
            raise ProtocolError(str(exc)) from exc
        return SolveRequest(problem=problem, solver=solver, config=config)

    raise ProtocolError(
        'request must name a problem: {"suite": ..., "problem": "name"} '
        'or {"problem": {...inline definition...}}'
    )


def solve_response(
    fingerprint: str,
    record: "ProblemRecord",
    solver: str,
    *,
    memo: bool = False,
    dedup: bool = False,
) -> dict:
    """Build the canonical solve-response payload from a record."""
    return {
        "id": result_id(fingerprint),
        "fingerprint": fingerprint,
        "problem": record.name,
        "solver": solver,
        "status": record.status,
        "solved": record.solved,
        "runtime_seconds": record.runtime_seconds,
        "error": record.error,
        "memo": memo,
        "dedup": dedup,
        "result": record.result.to_dict() if record.result is not None else None,
    }


def replayed(response: dict, *, memo: bool = False, dedup: bool = False) -> dict:
    """A copy of a stored response re-flagged for how it was served."""
    copy = dict(response)
    copy["memo"] = memo
    copy["dedup"] = dedup
    return copy


def solvers_response() -> dict:
    """Payload for ``GET /v1/solvers``."""
    return {
        "solvers": [
            {
                "name": entry.name,
                "description": entry.description,
                "capabilities": entry.capabilities.to_dict(),
            }
            for entry in solver_entries()
        ]
    }


def error_response(message: str, **extra: object) -> dict:
    """Uniform error body: ``{"error": message, ...}``."""
    return {"error": message, **extra}
