"""Admission control: per-client token buckets + a global in-flight cap.

Solving is expensive (seconds of training per problem), so the server
refuses work it cannot absorb *before* the solve starts, with the
standard HTTP vocabulary:

* ``429 Too Many Requests`` — one client exceeded its request rate
  (token bucket: ``burst`` requests instantly, refilling at ``rate``
  per second).  ``Retry-After`` says when the next token lands.
* ``503 Service Unavailable`` — the whole server is at its in-flight
  solve cap; ``Retry-After`` is a coarse back-off hint.

Dedup runs *after* admission on purpose: a client hammering the same
problem still spends its own tokens even though the solves collapse —
quotas meter requests, not unique work.

Everything is computed lazily from monotonic timestamps (no refill
task to leak) and guarded by one lock, so executor threads and the
event loop can consult it concurrently.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable

# Idle client buckets are pruned once they are full again (holding a
# full bucket is indistinguishable from holding no bucket), bounding
# state to the set of *recently active* clients.
PRUNE_EVERY = 256


class TokenBucket:
    """One client's quota: ``burst`` capacity, ``rate`` tokens/second."""

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now

    def try_take(self, now: float) -> float:
        """Take one token; returns 0.0 on success, else seconds to wait."""
        self.refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate if self.rate > 0 else math.inf


class AdmissionController:
    """Decides, per request, whether the server takes the work.

    Args:
        rate: sustained per-client request rate (tokens/second);
            ``<= 0`` disables rate limiting.
        burst: bucket capacity — requests a quiet client may issue
            back-to-back before the sustained rate kicks in.
        max_inflight: global cap on concurrently admitted solves;
            ``<= 0`` disables the cap.
        clock: injectable monotonic clock (tests).
    """

    def __init__(
        self,
        *,
        rate: float = 5.0,
        burst: int = 10,
        max_inflight: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = rate
        self.burst = float(max(1, burst))
        self.max_inflight = max_inflight
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight = 0
        self._admissions = 0
        self.rejected_rate = 0
        self.rejected_capacity = 0

    # -- decisions -------------------------------------------------------------

    def admit(self, client: str) -> tuple[int, float]:
        """Try to admit one request from ``client``.

        Returns ``(status, retry_after)``: status 0 = admitted (the
        caller MUST pair it with :meth:`release`), 429 = client over
        rate, 503 = server at capacity.  ``retry_after`` is the
        suggested back-off in seconds for rejections, 0.0 otherwise.
        """
        now = self._clock()
        with self._lock:
            if self.rate > 0:
                bucket = self._buckets.get(client)
                if bucket is None:
                    bucket = TokenBucket(self.rate, self.burst, now)
                    self._buckets[client] = bucket
                wait = bucket.try_take(now)
                if wait > 0:
                    self.rejected_rate += 1
                    return 429, wait
            if 0 < self.max_inflight <= self._inflight:
                self.rejected_capacity += 1
                # No queue position to compute a precise wait from;
                # suggest a coarse constant back-off.
                return 503, 1.0
            self._inflight += 1
            self._admissions += 1
            if self._admissions % PRUNE_EVERY == 0:
                self._prune(now)
            return 0, 0.0

    def release(self) -> None:
        """Mark one admitted request finished (success or failure)."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)

    def _prune(self, now: float) -> None:
        for client, bucket in list(self._buckets.items()):
            bucket.refill(now)
            if bucket.tokens >= bucket.burst:
                del self._buckets[client]

    # -- introspection ---------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def stats(self) -> dict:
        with self._lock:
            return {
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "rate": self.rate,
                "burst": self.burst,
                "clients_tracked": len(self._buckets),
                "admitted": self._admissions,
                "rejected_rate": self.rejected_rate,
                "rejected_capacity": self.rejected_capacity,
            }
