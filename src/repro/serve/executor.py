"""Pluggable solving backends for the HTTP front end.

The server turns an admitted, deduplicated request into a
:class:`~repro.infer.runner.ProblemRecord` through one of two
executors, both exposing the same async surface
(``await executor.solve(request, fingerprint)``):

* :class:`InProcessExecutor` — the default: solves on a bounded thread
  pool inside the server process through the shared
  :class:`~repro.api.service.InvariantService`, so every request hits
  the same trace cache and emits the live event feed SSE clients
  stream.
* :class:`QueueExecutor` — ``--queue-dir`` mode: enqueues the problem
  onto the PR 5 :mod:`repro.dist` work queue (item id = fingerprint,
  so identical requests and server restarts re-use journaled results
  for free) and tails the journal until a worker acks it.  The server
  process never solves; any fleet of ``python -m repro worker``
  processes sharing the directory does.

Executor failures are *data*, not exceptions: a solve that raises
comes back as a ``status="error"`` record, because an HTTP 200 with a
structured error beats a 500 for a batch client correlating results.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

from repro.api.solver import get_solver
from repro.dist.queue import WorkQueue
from repro.dist.wire import config_to_dict, problem_to_dict
from repro.infer.runner import (
    STATUS_ERROR,
    STATUS_OK,
    ProblemRecord,
)
from repro.serve.protocol import ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.service import InvariantService
    from repro.infer.config import InferenceConfig
    from repro.serve.protocol import SolveRequest

DEFAULT_SOLVE_THREADS = 2
DEFAULT_POLL_SECONDS = 0.2


class InProcessExecutor:
    """Solve on a thread pool inside the server process."""

    mode = "in-process"

    def __init__(
        self,
        service: "InvariantService",
        *,
        threads: int = DEFAULT_SOLVE_THREADS,
    ):
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.service = service
        self.threads = threads
        self._pool = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-solve"
        )

    async def solve(
        self, request: "SolveRequest", fingerprint: str
    ) -> ProblemRecord:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, self._solve_sync, request
        )

    def _solve_sync(self, request: "SolveRequest") -> ProblemRecord:
        start = time.perf_counter()
        try:
            if request.config is None:
                result = self.service.solve(
                    request.problem, solver=request.solver
                )
            else:
                # Per-request config: drive the solver directly with the
                # service's shared cache and bus, leaving the service's
                # own per-solver configuration untouched (configure()
                # would race with concurrent requests).
                result = get_solver(request.solver).solve(
                    request.problem,
                    config=request.config,
                    cache=self.service.cache,
                    events=self.service.bus.emit,
                )
                self.service.bus.emit(
                    _solved_event(request.problem.name, request.solver, result)
                )
        except Exception as exc:  # noqa: BLE001 — surface as a record, not a 500
            return ProblemRecord(
                name=request.problem.name,
                status=STATUS_ERROR,
                runtime_seconds=time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}",
            )
        return ProblemRecord(
            name=request.problem.name,
            status=STATUS_OK,
            runtime_seconds=result.runtime_seconds,
            result=result,
        )

    def describe(self) -> dict:
        return {"mode": self.mode, "threads": self.threads}

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


def _solved_event(problem: str, solver: str, result) -> "object":
    from repro.api.events import ProblemSolved

    return ProblemSolved(
        problem=problem,
        solver=solver,
        solved=result.solved,
        runtime_seconds=result.runtime_seconds,
        attempts=result.attempts,
    )


class QueueExecutor:
    """Enqueue onto a :mod:`repro.dist` work queue; tail the journal.

    The queue's ``meta.json`` is authoritative for *how* items are
    solved (the PR 5 worker contract), so one queue serves one
    (solver, config) pair — requests that ask for anything else are
    rejected up front with a :class:`ProtocolError` rather than
    silently solved under different settings.

    Item ids are the full canonical fingerprint, which buys idempotence
    everywhere: re-submitting an already-queued problem is a no-op
    (enqueue skips known ids), and an already-journaled fingerprint is
    answered straight from the journal without touching the queue.
    """

    mode = "queue"

    def __init__(
        self,
        queue_dir: str,
        *,
        solver: str = "gcln",
        config: "InferenceConfig | None" = None,
        timeout_seconds: float | None = None,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
        wait_seconds: float | None = None,
    ):
        from repro.dist.coordinator import build_meta

        self.solver = solver
        self.config = config
        self.poll_seconds = poll_seconds
        # How long to wait for a worker before giving up on a request
        # (None = wait forever; the client can always disconnect).
        self.wait_seconds = wait_seconds
        self.queue = WorkQueue.create(
            queue_dir,
            meta=build_meta(
                solver=solver,
                config=config,
                timeout_seconds=timeout_seconds,
                suite=None,
            ),
        )
        self._config_blob = (
            config_to_dict(config) if config is not None else None
        )
        # Journal tail state: records already parsed, and how many
        # journal entries they came from (the journal is append-only,
        # so re-parsing from the cursor is enough).
        self._records: dict[str, ProblemRecord] = {}
        self._cursor = 0

    async def solve(
        self, request: "SolveRequest", fingerprint: str
    ) -> ProblemRecord:
        if request.solver != self.solver:
            raise ProtocolError(
                f"this server solves with {self.solver!r} (queue-backed); "
                f"got solver {request.solver!r}"
            )
        if (
            request.config is not None
            and config_to_dict(request.config) != self._config_blob
        ):
            raise ProtocolError(
                "queue-backed serving uses the queue's config for every "
                "request; omit \"config\" or match the server's"
            )
        record = self._tail(fingerprint)
        if record is not None:
            return record
        item = {
            "id": fingerprint,
            "index": None,
            "name": request.problem.name,
            "fingerprint": fingerprint,
            "problem": {"kind": "inline", **problem_to_dict(request.problem)},
        }
        self.queue.enqueue([item])
        deadline = (
            None
            if self.wait_seconds is None
            else time.monotonic() + self.wait_seconds
        )
        while True:
            record = self._tail(fingerprint)
            if record is not None:
                return record
            if deadline is not None and time.monotonic() > deadline:
                return ProblemRecord(
                    name=request.problem.name,
                    status=STATUS_ERROR,
                    runtime_seconds=0.0,
                    error=(
                        f"no worker finished the item within "
                        f"{self.wait_seconds:g}s (is a 'python -m repro "
                        f"worker' fleet draining {self.queue.root}?)"
                    ),
                )
            await asyncio.sleep(self.poll_seconds)

    def _tail(self, fingerprint: str) -> ProblemRecord | None:
        """Advance over new journal entries; return the wanted record."""
        if fingerprint not in self._records:
            entries = self.queue.journal_entries()
            for entry in entries[self._cursor:]:
                payload = entry.get("payload") or {}
                data = payload.get("record")
                entry_id = entry.get("id")
                if data is not None and entry_id not in self._records:
                    self._records[entry_id] = ProblemRecord.from_dict(data)
            self._cursor = len(entries)
        return self._records.get(fingerprint)

    def describe(self) -> dict:
        counts = self.queue.counts()
        return {
            "mode": self.mode,
            "queue_dir": str(self.queue.root),
            "solver": self.solver,
            **counts,
            # Per-worker heartbeats (pid, host, items done, last-ack
            # age, live/stale/exited), so GET /v1/stats shows fleet
            # health next to the queue depth it explains.
            "workers": self.queue.worker_health(),
        }

    def close(self) -> None:
        pass
