"""End-to-end loop invariant inference (Fig. 3 of the paper).

``infer_invariants(problem)`` runs the full workflow: trace collection,
term expansion and filtering, G-CLN training, formula extraction,
soundness filtering / specification checking, and retry with adjusted
dropout and widened sampling on failure.

The runtime is staged, with one module per stage boundary:

* :mod:`repro.infer.problem` / :mod:`repro.infer.config` — problem
  definitions and pipeline knobs (Table 3 ablation switches).
* :mod:`repro.infer.schedule` — the typed retry plan: an
  :class:`~repro.infer.schedule.AttemptScheduler` expands the config
  into ordered :class:`~repro.infer.schedule.AttemptPlan` entries
  (dropout / seed / fractional interval, paper §6) and owns early
  stopping.
* :mod:`repro.infer.stages` — pure, memoized data stages
  (``collect_states`` / ``build_matrix``) over a
  :class:`~repro.sampling.cache.TraceCache`, so repeated attempts
  never recollect traces or re-evaluate term matrices for an
  unchanged (inputs, interval) pair.
* :mod:`repro.infer.pipeline` — the per-attempt orchestration:
  training, extraction, soundness filtering, solved test.
* :mod:`repro.infer.runner` — the batch subsystem:
  :func:`~repro.infer.runner.run_many` fans many problems out over a
  process pool with per-problem timeouts and structured records,
  dispatching through the :mod:`repro.api` solver registry.

This package is the *runtime*; the public surface is :mod:`repro.api`
(the ``Solver`` protocol, registry, and ``InvariantService``), which
wraps the engine as the ``"gcln"`` solver.  ``infer_invariants`` is
kept as a deprecated shim that delegates to the service.
"""

from repro.infer.problem import Problem, parse_ground_truth
from repro.infer.config import InferenceConfig
from repro.infer.record import record_observations, record_problem
from repro.infer.schedule import AttemptPlan, AttemptScheduler, build_schedule
from repro.infer.pipeline import (
    InferenceEngine,
    InferenceResult,
    TrainRequest,
    infer_invariants,
)
from repro.infer.runner import ProblemRecord, run_many, summarize

__all__ = [
    "Problem",
    "parse_ground_truth",
    "InferenceConfig",
    "record_observations",
    "record_problem",
    "AttemptPlan",
    "AttemptScheduler",
    "build_schedule",
    "InferenceEngine",
    "InferenceResult",
    "TrainRequest",
    "infer_invariants",
    "ProblemRecord",
    "run_many",
    "summarize",
]
