"""End-to-end loop invariant inference (Fig. 3 of the paper).

``infer_invariants(problem)`` runs the full workflow: trace collection,
term expansion and filtering, G-CLN training, formula extraction,
soundness filtering / specification checking, and retry with adjusted
dropout and widened sampling on failure.
"""

from repro.infer.problem import Problem, parse_ground_truth
from repro.infer.config import InferenceConfig
from repro.infer.pipeline import InferenceEngine, InferenceResult, infer_invariants

__all__ = [
    "Problem",
    "parse_ground_truth",
    "InferenceConfig",
    "InferenceEngine",
    "InferenceResult",
    "infer_invariants",
]
