"""Attempt scheduling for the CEGIS retry loop (paper §6).

The paper retries each problem with an adjusted dropout rate, a fresh
seed, and — for fractional problems — a finer sampling interval.  This
module turns that policy into data: :func:`build_schedule` expands an
:class:`~repro.infer.config.InferenceConfig` into an ordered tuple of
typed :class:`AttemptPlan` entries, and :class:`AttemptScheduler`
owns iteration and the early-stop decision that used to be inlined in
``InferenceEngine.run()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.infer.config import InferenceConfig


@dataclass(frozen=True)
class AttemptPlan:
    """One attempt's knobs: which dropout / seed / interval to use.

    Attributes:
        index: 0-based attempt number.
        dropout: term-dropout rate for this attempt.
        seed: base RNG seed (the engine derives per-loop seeds from it).
        fractional_interval: fractional-sampling interval, or ``None``
            when the problem does not use fractional sampling.
    """

    index: int
    dropout: float
    seed: int
    fractional_interval: float | None


def build_schedule(
    config: InferenceConfig, fractional: bool
) -> tuple[AttemptPlan, ...]:
    """Expand the config's retry policy into ordered attempt plans.

    One plan per dropout-schedule entry; seeds cycle when shorter than
    the dropout schedule; the fractional interval follows the config's
    interval schedule and stays at its finest value once exhausted
    (§5.4: 0.5, then 0.25, ...).

    Attempts are independent by construction (fresh seed + dropout per
    plan).  With ``config.warm_start`` the pipeline additionally carries
    the previous attempt's post-training gate states into the next
    plan's model — the schedule itself is unchanged; only the model
    initialization warms up.
    """
    intervals: tuple[float | None, ...] = (
        tuple(config.fractional_intervals) if fractional else (None,)
    )
    if not intervals:
        intervals = (None,)
    plans = []
    for index, dropout in enumerate(config.dropout_schedule):
        plans.append(
            AttemptPlan(
                index=index,
                dropout=dropout,
                seed=config.seeds[index % len(config.seeds)],
                fractional_interval=intervals[min(index, len(intervals) - 1)],
            )
        )
    return tuple(plans)


class AttemptScheduler:
    """Yields attempt plans until the budget is exhausted or solved.

    Usage::

        scheduler = AttemptScheduler(config, fractional=problem.fractional)
        for plan in scheduler:
            ...  # one attempt
            if solved:
                scheduler.stop()
        result.attempts = scheduler.attempts_made
    """

    def __init__(self, config: InferenceConfig, fractional: bool = False):
        self.plans = build_schedule(config, fractional)
        self.attempts_made = 0
        self._stopped = False

    def stop(self) -> None:
        """Early-stop: no further plans are yielded."""
        self._stopped = True

    @property
    def stopped(self) -> bool:
        return self._stopped

    def __iter__(self) -> Iterator[AttemptPlan]:
        for plan in self.plans:
            if self._stopped:
                return
            self.attempts_made += 1
            yield plan

    def iter_batches(self, max_size: int = 1) -> Iterator[tuple[AttemptPlan, ...]]:
        """Yield plans grouped for batched multi-restart training.

        The first attempt always runs alone — most solvable problems
        succeed immediately, and batching retries with it would train
        extra restarts for nothing.  Subsequent consecutive plans with
        the same fractional interval (hence the same data matrices)
        group up to ``max_size``; a change of interval starts a new
        batch because the training data differs.

        ``attempts_made`` counts every plan yielded, so batched and
        sequential iteration report the same attempt totals when the
        whole schedule runs.
        """
        if max_size < 1:
            max_size = 1
        i = 0
        while i < len(self.plans) and not self._stopped:
            plan = self.plans[i]
            batch = [plan]
            i += 1
            if plan.index > 0:
                while (
                    i < len(self.plans)
                    and len(batch) < max_size
                    and self.plans[i].fractional_interval
                    == plan.fractional_interval
                ):
                    batch.append(self.plans[i])
                    i += 1
            self.attempts_made += len(batch)
            yield tuple(batch)
