"""Record a program-backed problem's observations for trace-first solving.

The seed-equivalence contract of the ObservationSource layer: recording
what the interpreter *would* feed training and checking, then solving
from the recording alone, must produce identical invariants.  That
requires state-for-state fidelity on both sides:

* **train** — the raw loop-head snapshot sequences of
  :func:`~repro.sampling.tracegen.collect_traces` over the training
  inputs, in execution order, *before* dedup/cap (the
  :class:`~repro.sampling.source.RecordedTraceSource` applies
  ``loop_dataset``'s dedup/cap itself at assembly time);
* **check** — the loop-head states of the checker's traces: the
  error-tolerant :meth:`~repro.checker.bounded.BoundedChecker.
  run_traces` over the checking inputs with the checker's fuel budget,
  exactly what :class:`~repro.checker.vc.InvariantChecker` reads its
  reachability states from.

``python -m repro record`` writes these recordings as JSON; CI's trace
smoke re-solves ps2 from its recording and asserts invariant equality.
"""

from __future__ import annotations

from repro.checker.bounded import BoundedChecker
from repro.infer.problem import Problem
from repro.sampling.source import LoopTrace, Observation, TraceData
from repro.sampling.tracegen import collect_traces

# Fuel budgets mirrored from the paths being recorded:
# TraceCache.traces / collect_traces default (training side) and
# InvariantChecker's interpreter budget (checking side).
_TRAIN_FUEL = 100_000
_CHECK_FUEL = 500_000


def _loop_observations(traces, loop_index: int) -> list[Observation]:
    """Raw snapshot sequence for one loop: no dedup, exit states kept."""
    return [
        Observation(state=dict(s.state), guard=bool(s.guard_value))
        for trace in traces
        for s in trace.snapshots
        if s.loop_id == loop_index
    ]


def record_observations(problem: Problem) -> TraceData:
    """Record the train/check observation sequences of a program-backed
    problem, one :class:`LoopTrace` per loop.

    Raises:
        InferenceError: for trace-only problems (nothing to record).
    """
    program = problem.program
    train_traces = collect_traces(
        program, problem.train_inputs, fuel=_TRAIN_FUEL
    )
    check_traces = BoundedChecker(
        program, externals=problem.externals, fuel=_CHECK_FUEL
    ).run_traces(problem.effective_check_inputs)
    data: TraceData = {}
    for loop_index in range(len(program.loops)):
        data[loop_index] = LoopTrace(
            train=_loop_observations(train_traces, loop_index),
            check=_loop_observations(check_traces, loop_index),
        )
    return data


def record_problem(problem: Problem) -> Problem:
    """A trace-only clone of a program-backed problem.

    The clone embeds the recorded observations plus everything the
    pipeline needs that it would otherwise read off the program: the
    per-loop term variables and the problem's term/checking knobs.
    Fractional sampling is dropped (it relaxes program initializers, so
    it cannot run without one).
    """
    n_loops = len(problem.program.loops)
    return Problem(
        name=problem.name,
        source=None,
        max_degree=problem.max_degree,
        variables={
            i: list(problem.loop_variables(i)) for i in range(n_loops)
        },
        externals=list(problem.externals),
        learn_inequalities=problem.learn_inequalities,
        fractional=False,
        ground_truth={
            k: list(v) for k, v in problem.ground_truth.items()
        },
        max_states=problem.max_states,
        traces=record_observations(problem),
    )
