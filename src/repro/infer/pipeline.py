"""The end-to-end inference engine (Fig. 3 workflow + CEGIS retries).

Per attempt: collect traces → build candidate terms → train the G-CLN
equality model (and the PBQU inequality model when enabled) → extract
validated atoms → filter to the sound subset with the checker → stop
when the ground-truth invariant is implied (or, with no ground truth,
when the checker validates the conjunction).  Failed attempts retry
with the next dropout rate / seed and, for fractional problems, finer
sampling intervals.
"""

from __future__ import annotations

import time
from fractions import Fraction
from dataclasses import dataclass, field

import numpy as np

from repro.checker.vc import InvariantChecker
from repro.checker.result import CheckOutcome
from repro.cln.bounds import BoundBank, enumerate_bound_masks, extract_bound_atoms, train_bound_bank
from repro.cln.extract import extract_equalities, make_exact_validator
from repro.poly.polynomial import Polynomial
from repro.cln.model import GCLN, complexity_term_weights
from repro.cln.train import train_gcln
from repro.errors import InferenceError, TrainingError
from repro.lang.ast import Assert
from repro.poly.reduce import inter_reduce, is_implied_equality, reduce_modulo
from repro.sampling.filters import dedup_columns, growth_rate_filter
from repro.sampling.fractional import (
    FRACTIONAL_SUFFIX,
    fractional_inputs,
    relax_initializers,
)
from repro.sampling.normalize import normalize_rows
from repro.sampling.termgen import TermBasis, build_term_basis, evaluate_terms
from repro.sampling.tracegen import collect_traces, loop_dataset
from repro.smt.formula import TRUE, And, Atom, Formula
from repro.smt.simplify import simplify
from repro.infer.config import InferenceConfig
from repro.infer.problem import Problem


@dataclass
class LoopResult:
    """Inference outcome for one loop."""

    loop_index: int
    invariant: Formula
    sound_atoms: list[Atom] = field(default_factory=list)
    candidate_atoms: list[Atom] = field(default_factory=list)
    ground_truth_implied: bool = False


@dataclass
class InferenceResult:
    """Outcome of :func:`infer_invariants`."""

    problem_name: str
    solved: bool
    loops: list[LoopResult] = field(default_factory=list)
    runtime_seconds: float = 0.0
    attempts: int = 0
    notes: list[str] = field(default_factory=list)

    def invariant(self, loop_index: int = 0) -> Formula:
        for loop in self.loops:
            if loop.loop_index == loop_index:
                return loop.invariant
        return TRUE


class InferenceEngine:
    """Runs the full inference workflow for one problem."""

    def __init__(self, problem: Problem, config: InferenceConfig | None = None):
        self.problem = problem
        self.config = config if config is not None else InferenceConfig()
        self._checker = InvariantChecker(
            problem.program,
            problem.effective_check_inputs,
            externals=problem.externals,
            rng=np.random.default_rng(10_007),
        )

    # -- data collection -------------------------------------------------------

    def _collect_states(self, fractional_interval: float | None) -> dict[int, list[dict]]:
        """Training states per loop, optionally with fractional sampling."""
        problem = self.problem
        program = problem.program
        traces = collect_traces(program, problem.train_inputs)
        states: dict[int, list[dict]] = {}
        for loop_index in range(len(program.loops)):
            states[loop_index] = loop_dataset(
                traces, loop_index, max_states=problem.max_states
            )

        self._fractional_vars: list[str] = []
        use_fractional = (
            problem.fractional
            and self.config.fractional_sampling
            and fractional_interval is not None
        )
        if use_fractional:
            relaxed, relaxed_vars = relax_initializers(
                program, problem.fractional_vars
            )
            if relaxed_vars:
                # The paper's relaxation (§4.3): initial values become
                # symbolic inputs V_I carried as extra state variables
                # (the ``*__frac`` offsets); the model learns the
                # *relaxed* invariant over V ∪ V_I and the pipeline
                # substitutes the exact initial offsets (zero) back in
                # (Eq. 7).  Fractional states therefore keep their
                # offset variables.
                self._fractional_vars = [
                    v + FRACTIONAL_SUFFIX for v in relaxed_vars
                ]
                base = problem.train_inputs[: max(1, len(problem.train_inputs) // 4)]
                frac_in = fractional_inputs(
                    base, relaxed_vars, interval=fractional_interval, limit=200
                )
                frac_traces = collect_traces(relaxed, frac_in)
                for loop_index in range(len(program.loops)):
                    extra = loop_dataset(
                        frac_traces, loop_index, max_states=problem.max_states
                    )
                    zero = {name: 0 for name in self._fractional_vars}
                    merged = [dict(s, **zero) for s in states[loop_index]]
                    merged.extend(dict(s) for s in extra)
                    seen: set[tuple] = set()
                    unique: list[dict] = []
                    for s in merged:
                        key = tuple(sorted((k, str(v)) for k, v in s.items()))
                        if key not in seen:
                            seen.add(key)
                            unique.append(s)
                    states[loop_index] = unique[: 2 * problem.max_states]
        return states

    def _build_matrix(
        self, states: list[dict], loop_index: int
    ) -> tuple[TermBasis, np.ndarray, np.ndarray, list[Atom]]:
        """Term basis, raw/training matrices, and degenerate-column atoms.

        Duplicate columns (``r`` identical to ``A`` throughout) and
        constant columns (``q`` always 0) are *themselves* equality
        candidates; they are emitted directly because dropping the
        duplicate column — necessary for conditioning — would otherwise
        hide the invariant from the model.
        """
        problem = self.problem
        variables = list(problem.loop_variables(loop_index))
        frac_vars = [
            v
            for v in getattr(self, "_fractional_vars", [])
            if states and v in states[0]
        ]
        variables.extend(v for v in frac_vars if v not in variables)
        basis = build_term_basis(
            variables, problem.max_degree, externals=problem.externals
        )
        usable_states = states
        if problem.externals:
            usable_states = [
                s
                for s in states
                if all(
                    not hasattr(s.get(a), "denominator")
                    or getattr(s.get(a), "denominator", 1) == 1
                    for ext in problem.externals
                    for a in ext.args
                )
            ]
        raw = evaluate_terms(usable_states, basis)

        degenerate: list[Atom] = []
        validator = make_exact_validator(usable_states, basis)
        kept_unique = dedup_columns(raw)
        dup_of: dict[int, int] = {}
        for j in range(raw.shape[1]):
            if j in kept_unique:
                continue
            for i in kept_unique:
                if np.array_equal(raw[:, i], raw[:, j]):
                    dup_of[j] = i
                    break
        for j, i in dup_of.items():
            poly = Polynomial(
                {basis.monomials[i]: 1, basis.monomials[j]: -1}
            )
            if not poly.is_zero() and validator(poly, "=="):
                degenerate.append(Atom(poly.primitive(), "=="))
        for j in kept_unique:
            column = raw[:, j]
            if basis.monomials[j].is_constant():
                continue
            if np.all(column == column[0]) and float(column[0]).is_integer():
                poly = Polynomial(
                    {
                        basis.monomials[j]: 1,
                        basis.monomials[0]: -int(column[0]),
                    }
                )
                if validator(poly, "=="):
                    degenerate.append(Atom(poly.primitive(), "=="))

        degrees = [m.degree for m in basis.monomials]
        keep = growth_rate_filter(raw, degrees, ratio_cap=self.config.growth_ratio_cap)
        keep = [j for j in keep if j in set(kept_unique)]
        basis = basis.restrict(keep)
        raw = raw[:, keep]
        if self.config.data_normalization:
            data = normalize_rows(raw)
        else:
            data = raw.copy()
        return basis, raw, data, degenerate

    def _instantiate_fractional(
        self, atoms: list[Atom], states: list[dict]
    ) -> list[Atom]:
        """Substitute zero offsets into relaxed-invariant atoms (Eq. 7).

        Atoms learned over the relaxed program may mention the
        ``*__frac`` initial-value variables; instantiating them at the
        original initial values (offset 0) yields candidate invariants
        of the original program, which are re-validated on the
        zero-offset samples.
        """
        frac_vars = getattr(self, "_fractional_vars", [])
        if not frac_vars:
            return atoms
        zero_map = {v: Polynomial.zero() for v in frac_vars}
        base_states = [
            {k: v for k, v in s.items() if not k.endswith(FRACTIONAL_SUFFIX)}
            for s in states
            if all(s.get(v, 0) == 0 for v in frac_vars)
        ]
        out: list[Atom] = []
        for atom in atoms:
            poly = atom.poly.substitute(zero_map)
            if poly.is_zero() or poly.is_constant():
                continue
            if any(v.endswith(FRACTIONAL_SUFFIX) for v in poly.variables):
                continue
            candidate = Atom(poly.primitive(), atom.op)
            if all(
                candidate.evaluate({k: Fraction(v) for k, v in s.items()})
                for s in base_states
            ):
                out.append(candidate)
        return out

    # -- main loop -------------------------------------------------------------

    def run(self) -> InferenceResult:
        problem = self.problem
        config = self.config
        program = problem.program
        start = time.perf_counter()
        result = InferenceResult(problem_name=problem.name, solved=False)

        n_loops = len(program.loops)
        if n_loops == 0:
            raise InferenceError(f"problem {problem.name!r} has no loops")

        accumulated: dict[int, dict[str, Atom]] = {i: {} for i in range(n_loops)}
        fractional_schedule: list[float | None] = list(config.fractional_intervals)
        if not problem.fractional:
            fractional_schedule = [None]

        attempts = 0
        solved = False
        for attempt_index, dropout in enumerate(config.dropout_schedule):
            attempts += 1
            seed = config.seeds[attempt_index % len(config.seeds)]
            interval = fractional_schedule[
                min(attempt_index, len(fractional_schedule) - 1)
            ]
            try:
                states = self._collect_states(interval)
            except InferenceError:
                raise
            gcln_config = config.gcln_for_attempt(dropout)

            for loop_index in range(n_loops):
                loop_states = states[loop_index]
                if len(loop_states) < 3:
                    continue
                basis, _raw, data, degenerate = self._build_matrix(
                    loop_states, loop_index
                )
                for atom in self._instantiate_fractional(degenerate, loop_states):
                    accumulated[loop_index].setdefault(str(atom), atom)
                rng = np.random.default_rng(seed * 1000 + loop_index)
                weights = complexity_term_weights(
                    [m.degree for m in basis.monomials],
                    [len(m.variables) for m in basis.monomials],
                )
                try:
                    model = GCLN(
                        len(basis),
                        gcln_config,
                        rng,
                        protected_terms=[0],
                        term_weights=weights,
                    )
                    train_gcln(model, data)
                    eq_atoms = extract_equalities(model, basis, loop_states)
                except TrainingError as exc:
                    result.notes.append(f"loop {loop_index}: training failed: {exc}")
                    eq_atoms = []
                for atom in self._instantiate_fractional(eq_atoms, loop_states):
                    accumulated[loop_index].setdefault(str(atom), atom)

                if problem.learn_inequalities:
                    term_vars = [m.variables for m in basis.monomials]
                    term_degs = [m.degree for m in basis.monomials]
                    try:
                        masks = enumerate_bound_masks(
                            term_vars, term_degs, gcln_config
                        )
                        bank = BoundBank(masks, gcln_config, rng)
                        train_bound_bank(bank, data)
                        ge_atoms = extract_bound_atoms(
                            bank, basis, loop_states, data
                        )
                    except TrainingError as exc:
                        result.notes.append(
                            f"loop {loop_index}: inequality training failed: {exc}"
                        )
                        ge_atoms = []
                    for atom in ge_atoms:
                        accumulated[loop_index].setdefault(str(atom), atom)

            # Soundness filtering + solved test.
            loop_results = []
            all_implied = True
            for loop_index in range(n_loops):
                candidates = list(accumulated[loop_index].values())
                filtered = self._checker.filter_sound_atoms(loop_index, candidates)
                # Drop rejected atoms permanently.
                sound_keys = {str(a) for a in filtered.sound}
                accumulated[loop_index] = {
                    k: v
                    for k, v in accumulated[loop_index].items()
                    if k in sound_keys
                }
                reduced = _reduce_redundant(filtered.sound)
                invariant = simplify(And(reduced)) if reduced else TRUE
                implied = _ground_truth_implied(
                    problem.ground_truth_atoms(loop_index), filtered.sound
                )
                loop_results.append(
                    LoopResult(
                        loop_index=loop_index,
                        invariant=invariant,
                        sound_atoms=filtered.sound,
                        candidate_atoms=candidates,
                        ground_truth_implied=implied,
                    )
                )
                if problem.ground_truth.get(loop_index) and not implied:
                    all_implied = False
            result.loops = loop_results
            if all_implied and any(problem.ground_truth.values()):
                solved = True
                break
            if not any(problem.ground_truth.values()):
                # No ground truth: stop when the checker validates the
                # conjunction (and something was learned).
                posts = [s.cond for s in program.asserts]
                report = self._checker.check_invariant(
                    n_loops - 1, result.loops[-1].invariant, posts
                )
                if (
                    report.outcome is CheckOutcome.VALID
                    and result.loops[-1].sound_atoms
                ):
                    solved = True
                    break

        result.solved = solved
        result.attempts = attempts
        result.runtime_seconds = time.perf_counter() - start
        return result


def _reduce_redundant(atoms: list[Atom]) -> list[Atom]:
    """Drop equality atoms implied by simpler ones (graded-lex reduction)."""
    equalities = [a for a in atoms if a.op == "=="]
    others = [a for a in atoms if a.op != "=="]
    ordered = sorted(
        equalities, key=lambda a: (a.poly.degree, len(a.poly.terms))
    )
    kept: list[Atom] = []
    for atom in ordered:
        basis = inter_reduce([k.poly for k in kept]) if kept else []
        if basis and reduce_modulo(atom.poly, basis).is_zero():
            continue
        kept.append(atom)
    return kept + others


def _ground_truth_implied(truth: list[Atom], sound: list[Atom]) -> bool:
    """Is every ground-truth atom implied by the sound learned atoms?

    Equalities use graded-lex reduction modulo the learned equality
    polynomials; inequalities require a syntactically matching learned
    atom (same primitive polynomial and compatible operator).
    """
    if not truth:
        return True
    eq_basis = [a.poly for a in sound if a.op == "=="]
    for atom in truth:
        if atom.op == "==":
            if not is_implied_equality(atom.poly, eq_basis):
                return False
        else:
            target = str(atom.poly)
            matched = False
            for candidate in sound:
                if candidate.op == atom.op and str(candidate.poly) == target:
                    matched = True
                    break
                if candidate.op == "==" and (
                    str(candidate.poly.primitive()) == str(atom.poly.primitive())
                ):
                    matched = True
                    break
            if not matched:
                return False
    return True


def infer_invariants(
    problem: Problem, config: InferenceConfig | None = None
) -> InferenceResult:
    """Convenience wrapper: run the engine once for ``problem``."""
    return InferenceEngine(problem, config).run()
