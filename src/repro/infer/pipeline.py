"""The end-to-end inference engine (Fig. 3 workflow + CEGIS retries).

Per attempt: collect traces → build candidate terms → train the G-CLN
equality model (and the PBQU inequality model when enabled) → extract
validated atoms → filter to the sound subset with the checker → stop
when the ground-truth invariant is implied (or, with no ground truth,
when the checker validates the conjunction).  Failed attempts retry
with the next dropout rate / seed and, for fractional problems, finer
sampling intervals.

The engine is a thin orchestrator: the retry policy lives in
:mod:`repro.infer.schedule`, the (memoized) data stages in
:mod:`repro.infer.stages`, and trace/matrix reuse in
:mod:`repro.sampling.cache`.  Attempts after the first perform no
redundant trace collection for an unchanged (inputs, interval) pair.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro.api.events import (
    STAGES,
    AttemptStarted,
    Event,
    EventSink,
    StageTimed,
    emit_check_events,
    timed_stage,
)
from repro.autodiff.backend import resolve_backend_name
from repro.autodiff.tape import TapePool
from repro.checker.result import CheckOutcome
from repro.checker.trace import make_checker
from repro.cln.bounds import BoundBank, enumerate_bound_masks, extract_bound_atoms, train_bound_bank
from repro.cln.extract import extract_equalities
from repro.cln.model import GCLN, complexity_term_weights
from repro.cln.train import RestartOutcome, train_gcln, train_gcln_restarts
from repro.errors import InferenceError, TrainingError
from repro.poly.reduce import inter_reduce, is_implied_equality, reduce_modulo
from repro.sampling.cache import TraceCache
from repro.smt.formula import TRUE, And, Atom, Formula
from repro.smt.printer import format_formula
from repro.smt.simplify import simplify
from repro.infer.config import InferenceConfig
from repro.infer.problem import Problem
from repro.infer.schedule import AttemptScheduler
from repro.infer.stages import (
    build_matrix,
    collect_states,
    derive_loop_rng,
    instantiate_fractional,
)


@dataclass
class TrainRequest:
    """One pending G-CLN training call, yielded by ``run_stepwise``.

    The engine suspends at each training step so a driver can decide
    *how* to run it: :meth:`InferenceEngine.run` executes requests
    immediately via :func:`execute_train_request`, while the
    cross-problem batcher (:mod:`repro.infer.batcher`) collects
    same-shape requests from several engines and trains them in one
    stacked call.  The driver responds with one
    :class:`~repro.cln.train.RestartOutcome` per model, in order.
    """

    problem: str
    loop_index: int
    models: list[GCLN]
    data: np.ndarray
    # The issuing engine's tape pool (cross-attempt tape/plan reuse).
    # Drivers that train a request inline pass it through; merged
    # cross-engine chunks train without it (their stacked graphs span
    # several engines' pools).
    pool: TapePool | None = None

    @property
    def batchable(self) -> bool:
        """Can these models join a cross-problem stacked batch?"""
        return all(
            m.batched_capable() and m.config.vectorized for m in self.models
        )


def execute_train_request(request: TrainRequest) -> list[RestartOutcome]:
    """Run one training request inline (no cross-problem batching)."""
    models = request.models
    if len(models) > 1 and request.batchable:
        return train_gcln_restarts(models, request.data, pool=request.pool)
    outcomes: list[RestartOutcome] = []
    for model in models:
        try:
            result = train_gcln(model, request.data, pool=request.pool)
            outcomes.append(RestartOutcome(result=result))
        except TrainingError as exc:
            outcomes.append(RestartOutcome(result=None, error=str(exc)))
    return outcomes


@dataclass
class LoopResult:
    """Inference outcome for one loop.

    ``rejected_atoms`` records every checker rejection across *all*
    attempts as ``(atom string, reason)`` pairs — rejected atoms are
    dropped from the candidate pool permanently, so the final attempt's
    ``candidate_atoms`` alone would under-report them.
    """

    loop_index: int
    invariant: Formula
    sound_atoms: list[Atom] = field(default_factory=list)
    candidate_atoms: list[Atom] = field(default_factory=list)
    rejected_atoms: list[tuple[str, str]] = field(default_factory=list)
    ground_truth_implied: bool = False

    def to_dict(self) -> dict:
        """JSON-serializable view (formulas/atoms as strings)."""
        return {
            "loop_index": self.loop_index,
            "invariant": format_formula(self.invariant),
            "sound_atoms": [str(a) for a in self.sound_atoms],
            "candidate_atoms": [str(a) for a in self.candidate_atoms],
            "rejected_atoms": [list(pair) for pair in self.rejected_atoms],
            "ground_truth_implied": self.ground_truth_implied,
        }


@dataclass
class InferenceResult:
    """Outcome of :func:`infer_invariants`."""

    problem_name: str
    solved: bool
    loops: list[LoopResult] = field(default_factory=list)
    runtime_seconds: float = 0.0
    attempts: int = 0
    notes: list[str] = field(default_factory=list)
    cache_stats: dict[str, int] = field(default_factory=dict)
    # Wall-clock seconds per pipeline stage, keyed by
    # repro.api.events.STAGES, summed over attempts.
    stage_timings: dict[str, float] = field(default_factory=dict)
    # Resolved tape-replay backend name the training loops used
    # ("numpy"/"fused"/"numba"; see repro.autodiff.backend).
    backend: str = ""
    # Total G-CLN training epochs across every attempt/loop/model
    # (deterministic for a given config; the warm-start CI smoke
    # compares it between warm and cold runs).
    train_epochs: int = 0
    # Checker mode the run used: "symbolic+bounded" (program-backed)
    # or the degraded "bounded-holdout" (trace-only problems; see
    # repro.checker.result).
    checking: str = ""

    def invariant(self, loop_index: int = 0) -> Formula:
        for loop in self.loops:
            if loop.loop_index == loop_index:
                return loop.invariant
        return TRUE

    def to_dict(self) -> dict:
        """JSON-serializable record of the run."""
        return {
            "problem": self.problem_name,
            "solved": self.solved,
            "attempts": self.attempts,
            "runtime_seconds": self.runtime_seconds,
            "notes": list(self.notes),
            "cache_stats": dict(self.cache_stats),
            "backend": self.backend,
            "train_epochs": self.train_epochs,
            "checking": self.checking,
            "stage_timings": {
                s: float(self.stage_timings.get(s, 0.0)) for s in STAGES
            },
            "loops": [loop.to_dict() for loop in self.loops],
        }


class InferenceEngine:
    """Runs the full inference workflow for one problem.

    Args:
        problem: the benchmark problem.
        config: pipeline knobs; defaults to the paper's full method.
        cache: trace/matrix memo shared across attempts; pass an
            existing instance to also share it across engines (e.g.
            repeated runs of one problem, or with the checker).
        events: optional sink for lifecycle events (AttemptStarted,
            StageTimed, CandidateChecked); the
            :class:`~repro.api.service.InvariantService` passes its
            event bus here.
    """

    SOLVER_NAME = "gcln"

    def __init__(
        self,
        problem: Problem,
        config: InferenceConfig | None = None,
        cache: TraceCache | None = None,
        events: EventSink | None = None,
    ):
        self.problem = problem
        self.config = config if config is not None else InferenceConfig()
        self.cache = cache if cache is not None else TraceCache()
        self._events = events
        # Cross-attempt tape/plan reuse: retries with the same data
        # shape and model structure replay the first attempt's recorded
        # tape instead of re-recording and re-compiling (bitwise
        # transparent; see repro.cln.train).
        self.tape_pool = TapePool(self.config.tape_pool_size)
        # Program-backed problems get the full hybrid checker;
        # trace-only problems degrade to held-out recorded states.
        self._checker = make_checker(
            problem,
            cache=self.cache,
            memoize=self.config.checker_memoization,
        )

    # -- main loop -------------------------------------------------------------

    def _emit(self, event: Event) -> None:
        if self._events is not None:
            self._events(event)

    def run(self) -> InferenceResult:
        """Run the full workflow, executing training steps inline."""
        gen = self.run_stepwise()
        try:
            request = next(gen)
            while True:
                request = gen.send(execute_train_request(request))
        except StopIteration as stop:
            return stop.value

    def run_stepwise(
        self,
    ) -> Generator[TrainRequest, list[RestartOutcome], InferenceResult]:
        """The workflow as a generator that suspends at training calls.

        Yields a :class:`TrainRequest` for every G-CLN training step
        and expects the driver to ``send`` back one outcome per model;
        everything else (trace collection, bound fitting, extraction,
        checking, scheduling) runs inside the generator.  The return
        value is the same :class:`InferenceResult` ``run()`` produces.
        Under the cross-problem batcher the "train" stage timing spans
        the suspension, so it includes the shared stacked call (which
        also trains other problems' models): per-problem train timings
        overlap and may sum to more than wall-clock.
        """
        problem = self.problem
        config = self.config
        start = time.perf_counter()
        result = InferenceResult(
            problem_name=problem.name,
            solved=False,
            backend=resolve_backend_name(config.backend),
            checking=self._checker.checking,
        )
        totals = {stage: 0.0 for stage in STAGES}

        n_loops = problem.n_loops
        if n_loops == 0:
            raise InferenceError(f"problem {problem.name!r} has no loops")

        accumulated: dict[int, dict[str, Atom]] = {i: {} for i in range(n_loops)}
        # Checker rejections accumulated over every attempt (atom -> reason);
        # the per-attempt candidate pool drops them permanently.
        rejections: dict[int, dict[str, str]] = {i: {} for i in range(n_loops)}
        # Warm start: per loop, the post-training gate state of the best
        # (lowest final loss) model of the previous attempt batch.
        # Stored as copies — model storage may live in the tape pool and
        # be clobbered by the next training call.
        carried_gates: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}
        scheduler = AttemptScheduler(config, fractional=problem.fractional)

        def accumulate(loop_index: int, atoms) -> None:
            """Dedupe candidates across attempts before they reach the
            checker: an atom already rejected (or already accumulated)
            never re-enters the pool."""
            pool = accumulated[loop_index]
            rejected = rejections[loop_index]
            for atom in atoms:
                key = str(atom)
                if key not in rejected:
                    pool.setdefault(key, atom)

        solved = False
        for batch in scheduler.iter_batches(config.attempt_batch_size):
            attempt = batch[-1].index + 1
            for plan in batch:
                self._emit(
                    AttemptStarted(
                        problem=problem.name,
                        solver=self.SOLVER_NAME,
                        attempt=plan.index + 1,
                        dropout=plan.dropout,
                        fractional_interval=plan.fractional_interval,
                    )
                )
            timings = {stage: 0.0 for stage in STAGES}
            with timed_stage(timings, "collect"):
                # One call per plan for cache-stat parity with the
                # sequential schedule; all plans in a batch share the
                # fractional interval, so these are hits after the first.
                for plan in batch:
                    dataset = collect_states(
                        problem, config, plan.fractional_interval, self.cache
                    )

            for loop_index in range(n_loops):
                loop_states = dataset.states[loop_index]
                if len(loop_states) < 3:
                    continue
                with timed_stage(timings, "collect"):
                    for plan in batch:
                        bundle = build_matrix(
                            problem, config, dataset, loop_index, self.cache
                        )
                basis, data = bundle.basis, bundle.data
                accumulate(
                    loop_index,
                    instantiate_fractional(
                        bundle.degenerate, loop_states, dataset.fractional_vars
                    ),
                )
                weights = complexity_term_weights(
                    [m.degree for m in basis.monomials],
                    [len(m.variables) for m in basis.monomials],
                )

                # Build one model per scheduled attempt in the batch.
                entries: list[tuple] = []  # (plan, rng, model | None)
                for plan in batch:
                    rng = derive_loop_rng(plan.seed, loop_index)
                    gcln_config = config.gcln_for_attempt(plan.dropout)
                    try:
                        model = GCLN(
                            len(basis),
                            gcln_config,
                            rng,
                            protected_terms=[0],
                            term_weights=weights,
                        )
                        if gcln_config.warm_start:
                            _carry_gates_into(
                                model, carried_gates.get(loop_index)
                            )
                    except TrainingError as exc:
                        result.notes.append(
                            f"loop {loop_index}: training failed: {exc}"
                        )
                        model = None
                    entries.append((plan, rng, model))

                models = [m for _, _, m in entries if m is not None]
                outcomes: dict[int, RestartOutcome] = {}
                if models:
                    with timed_stage(timings, "train"):
                        batch_outcomes = yield TrainRequest(
                            problem=problem.name,
                            loop_index=loop_index,
                            models=models,
                            data=data,
                            pool=self.tape_pool,
                        )
                    best_loss = np.inf
                    for model, outcome in zip(models, batch_outcomes):
                        outcomes[id(model)] = outcome
                        if outcome.error is not None or outcome.result is None:
                            continue
                        result.train_epochs += outcome.result.epochs
                        # Capture gate copies NOW: the pooled storage a
                        # model may be rebound onto is reused (and
                        # overwritten) by the next training call.
                        if (
                            (config.warm_start or config.gcln.warm_start)
                            and outcome.result.final_loss < best_loss
                        ):
                            best_loss = outcome.result.final_loss
                            carried_gates[loop_index] = (
                                model.and_gates.data.copy(),
                                None
                                if model.or_gates_stacked is None
                                else model.or_gates_stacked.data.copy(),
                            )

                for plan, rng, model in entries:
                    eq_atoms: list[Atom] = []
                    outcome = outcomes.get(id(model)) if model is not None else None
                    if model is not None and outcome.error is not None:
                        result.notes.append(
                            f"loop {loop_index}: training failed: {outcome.error}"
                        )
                    elif model is not None:
                        with timed_stage(timings, "extract"):
                            eq_atoms = extract_equalities(
                                model, basis, loop_states
                            )
                    with timed_stage(timings, "extract"):
                        accumulate(
                            loop_index,
                            instantiate_fractional(
                                eq_atoms, loop_states, dataset.fractional_vars
                            ),
                        )

                    if problem.learn_inequalities:
                        gcln_config = config.gcln_for_attempt(plan.dropout)
                        term_vars = [m.variables for m in basis.monomials]
                        term_degs = [m.degree for m in basis.monomials]
                        ge_atoms: list[Atom] = []
                        try:
                            with timed_stage(timings, "train"):
                                masks = enumerate_bound_masks(
                                    term_vars, term_degs, gcln_config
                                )
                                bank = BoundBank(masks, gcln_config, rng)
                                train_bound_bank(bank, data)
                            with timed_stage(timings, "extract"):
                                ge_atoms = extract_bound_atoms(
                                    bank, basis, loop_states, data
                                )
                        except TrainingError as exc:
                            result.notes.append(
                                f"loop {loop_index}: inequality training failed: {exc}"
                            )
                            ge_atoms = []
                        accumulate(loop_index, ge_atoms)

            # Soundness filtering + solved test.
            loop_results = []
            all_implied = True
            for loop_index in range(n_loops):
                candidates = list(accumulated[loop_index].values())
                with timed_stage(timings, "check"):
                    filtered = self._checker.filter_sound_atoms(
                        loop_index, candidates
                    )
                if self._events is not None:
                    emit_check_events(
                        self._events,
                        problem.name,
                        self.SOLVER_NAME,
                        loop_index,
                        filtered.sound,
                        filtered.rejected,
                    )
                for atom, reason in filtered.rejected:
                    rejections[loop_index].setdefault(str(atom), reason)
                # Drop rejected atoms permanently.
                sound_keys = {str(a) for a in filtered.sound}
                accumulated[loop_index] = {
                    k: v
                    for k, v in accumulated[loop_index].items()
                    if k in sound_keys
                }
                reduced = _reduce_redundant(filtered.sound)
                invariant = simplify(And(reduced)) if reduced else TRUE
                implied = _ground_truth_implied(
                    problem.ground_truth_atoms(loop_index), filtered.sound
                )
                loop_results.append(
                    LoopResult(
                        loop_index=loop_index,
                        invariant=invariant,
                        sound_atoms=filtered.sound,
                        candidate_atoms=candidates,
                        rejected_atoms=sorted(rejections[loop_index].items()),
                        ground_truth_implied=implied,
                    )
                )
                if problem.ground_truth.get(loop_index) and not implied:
                    all_implied = False
            result.loops = loop_results
            if all_implied and any(problem.ground_truth.values()):
                solved = True
            elif not any(problem.ground_truth.values()):
                # No ground truth: stop when the checker validates the
                # conjunction (and something was learned).  Trace-only
                # problems have no asserts to check against.
                posts = (
                    [s.cond for s in problem.program.asserts]
                    if problem.program_backed
                    else []
                )
                with timed_stage(timings, "check"):
                    report = self._checker.check_invariant(
                        n_loops - 1, result.loops[-1].invariant, posts
                    )
                if (
                    report.outcome is CheckOutcome.VALID
                    and result.loops[-1].sound_atoms
                ):
                    solved = True
            for stage in STAGES:
                totals[stage] += timings[stage]
                self._emit(
                    StageTimed(
                        problem=problem.name,
                        solver=self.SOLVER_NAME,
                        stage=stage,
                        seconds=timings[stage],
                        attempt=attempt,
                    )
                )
            if solved:
                scheduler.stop()

        result.solved = solved
        result.attempts = scheduler.attempts_made
        result.runtime_seconds = time.perf_counter() - start
        result.cache_stats = self.cache.stats.to_dict()
        result.stage_timings = totals
        return result


def _carry_gates_into(
    model: GCLN, carried: tuple[np.ndarray, np.ndarray | None] | None
) -> None:
    """Warm start a fresh attempt's gates from the previous attempt.

    Copies the carried AND/OR gate values in when their shapes match
    the new model (dropout re-rolls masks, but gate shapes only depend
    on clause structure, so a changed basis or clause count safely
    skips the carry).  Weights keep their fresh random initialization —
    the retry explores a new support while the gate state resumes from
    where the best previous member ended.
    """
    if carried is None:
        return
    and_gates, or_gates = carried
    if model.and_gates.data.shape == and_gates.shape:
        model.and_gates.data[...] = and_gates
    if (
        or_gates is not None
        and model.or_gates_stacked is not None
        and model.or_gates_stacked.data.shape == or_gates.shape
    ):
        model.or_gates_stacked.data[...] = or_gates


def _reduce_redundant(atoms: list[Atom]) -> list[Atom]:
    """Drop equality atoms implied by simpler ones (graded-lex reduction)."""
    equalities = [a for a in atoms if a.op == "=="]
    others = [a for a in atoms if a.op != "=="]
    ordered = sorted(
        equalities, key=lambda a: (a.poly.degree, len(a.poly.terms))
    )
    kept: list[Atom] = []
    for atom in ordered:
        basis = inter_reduce([k.poly for k in kept]) if kept else []
        if basis and reduce_modulo(atom.poly, basis).is_zero():
            continue
        kept.append(atom)
    return kept + others


def _ground_truth_implied(truth: list[Atom], sound: list[Atom]) -> bool:
    """Is every ground-truth atom implied by the sound learned atoms?

    Equalities use graded-lex reduction modulo the learned equality
    polynomials; inequalities require a syntactically matching learned
    atom (same primitive polynomial and compatible operator).
    """
    if not truth:
        return True
    eq_basis = [a.poly for a in sound if a.op == "=="]
    for atom in truth:
        if atom.op == "==":
            if not is_implied_equality(atom.poly, eq_basis):
                return False
        else:
            target = str(atom.poly)
            matched = False
            for candidate in sound:
                if candidate.op == atom.op and str(candidate.poly) == target:
                    matched = True
                    break
                if candidate.op == "==" and (
                    str(candidate.poly.primitive()) == str(atom.poly.primitive())
                ):
                    matched = True
                    break
            if not matched:
                return False
    return True


def infer_invariants(
    problem: Problem,
    config: InferenceConfig | None = None,
    cache: TraceCache | None = None,
) -> InferenceResult:
    """Run the G-CLN solver once for ``problem``.

    .. deprecated::
        Use :class:`repro.api.InvariantService` (or
        ``repro.api.get_solver("gcln")``) instead; this wrapper now
        delegates to the service and returns the underlying
        :class:`InferenceResult` for backward compatibility.
    """
    warnings.warn(
        "infer_invariants() is deprecated; use "
        "repro.api.InvariantService().solve(problem) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.adapters import GCLNSolver
    from repro.api.service import InvariantService
    from repro.api.solver import solver_entries

    entries = {e.name: e for e in solver_entries()}
    if entries.get("gcln") is None or entries["gcln"].factory is not GCLNSolver:
        # The "gcln" registration was replaced with a strategy that may
        # not carry a native InferenceResult; legacy callers need the
        # real engine output, so run it directly (once).
        return InferenceEngine(problem, config, cache=cache).run()
    service = InvariantService(config=config, cache=cache)
    result = service.solve(problem, solver="gcln")
    assert isinstance(result.raw, InferenceResult)  # stock adapter sets raw
    return result.raw
