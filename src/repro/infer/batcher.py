"""Cross-problem training batches: suite-scale epoch amortization.

The ROADMAP "Cross-problem training batches" follow-on to the
vectorized training core: instead of entering the Python training loop
once per problem, :func:`run_cross_batched` drives every problem's
:meth:`~repro.infer.pipeline.InferenceEngine.run_stepwise` generator
concurrently, collects the :class:`~repro.infer.pipeline.TrainRequest`
each engine suspends on, buckets same-shape requests *from different
problems* together, and trains each bucket in a single models-stacked
call (:func:`~repro.cln.train.train_gcln_restarts` with per-model data
matrices).  Training outcomes are fed back into each problem's own
scheduler/checker loop, so every problem learns exactly the invariants
it would learn solved alone — the stacked trainer is bitwise-equal per
model — while the suite shares one taped graph per round.

Scheduling is round-based: each round takes at most one pending
request per live problem, groups by ``(data shape, stack signature)``,
chunks groups to at most ``cross_batch`` models per training call, and
advances every engine whose request was served.  Problems finish (and
report progress) as their generators return; errors and soft timeouts
retire a problem without disturbing the rest of the round.

Timeouts are *soft* here: a shared training call cannot be interrupted
on behalf of one problem, so the per-problem budget is checked between
rounds and on completion.  Each problem's clock starts when its engine
first runs (not at suite construction), but because rounds interleave
problems, elapsed time still includes other problems' share of the
shared rounds — per-problem ``runtime_seconds`` overlap, may sum to
more than the batch's wall-clock, and a tight budget retires more of a
large suite than the per-problem enforcement of ``jobs`` mode would.
Records carry ``status="timeout"`` with the wall-clock elapsed.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Callable, Generator, Sequence

from repro.cln.train import RestartOutcome, train_gcln_restarts
from repro.infer.config import InferenceConfig
from repro.infer.pipeline import (
    InferenceEngine,
    InferenceResult,
    TrainRequest,
    execute_train_request,
)
from repro.infer.problem import Problem
from repro.infer.runner import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    ProblemRecord,
)
from repro.sampling.cache import TraceCache

# One bucket per (matrix shape, model-stack signature): only models
# that agree on both can share a stacked training call.
GroupKey = tuple


@dataclass
class _ActiveProblem:
    """One problem's engine generator plus its batch bookkeeping."""

    index: int
    problem: Problem
    gen: Generator[TrainRequest, list[RestartOutcome], InferenceResult]
    start: float
    pending: TrainRequest | None = None
    record: ProblemRecord | None = None

    @property
    def live(self) -> bool:
        return self.record is None and self.pending is not None


def run_cross_batched(
    problems: Sequence[Problem],
    config: InferenceConfig | None = None,
    *,
    cross_batch: int = 4,
    timeout_seconds: float | None = None,
    progress: Callable[[ProblemRecord], None] | None = None,
    cache: TraceCache | None = None,
    cache_dir: str | None = None,
    events=None,
) -> list[ProblemRecord]:
    """Solve a suite with cross-problem training batches (one process).

    Args:
        problems: the suite to solve.
        config: shared inference config (``None`` = paper defaults).
        cross_batch: maximum models stacked into one training call; a
            single problem's attempt batch is never split, so one
            oversized request still trains whole.
        timeout_seconds: soft per-problem wall-clock budget, checked
            between training rounds (see module docstring).
        progress: called with each record as its problem finishes
            (completion order).
        cache: shared :class:`TraceCache`; by default one cache sized
            to the suite is created, so identical sub-programs across
            problems share traces.
        cache_dir: disk spill directory for the default cache (ignored
            when ``cache`` is injected).
        events: optional event sink passed to every engine (the
            service passes its bus).

    Returns:
        One record per problem, in input order.
    """
    if cross_batch < 1:
        raise ValueError(f"cross_batch must be >= 1, got {cross_batch}")
    shared_cache = (
        cache
        if cache is not None
        else TraceCache(
            max_entries=max(256, 8 * len(problems)), cache_dir=cache_dir
        )
    )
    active: list[_ActiveProblem] = []
    for index, problem in enumerate(problems):
        engine = InferenceEngine(
            problem, config, cache=shared_cache, events=events
        )
        active.append(
            _ActiveProblem(
                index=index,
                problem=problem,
                gen=engine.run_stepwise(),
                start=0.0,  # assigned when the engine first runs
            )
        )

    def finish(entry: _ActiveProblem, record: ProblemRecord) -> None:
        entry.record = record
        entry.pending = None
        if progress is not None:
            progress(record)

    def advance(entry: _ActiveProblem, outcomes: list[RestartOutcome] | None) -> None:
        """Resume one engine until its next request or completion."""
        if entry.record is not None:
            return
        entry.pending = None
        try:
            if outcomes is None:
                entry.pending = next(entry.gen)
            else:
                entry.pending = entry.gen.send(outcomes)
        except StopIteration as stop:
            from repro.api.adapters import solve_result_from_inference

            finish(
                entry,
                ProblemRecord(
                    name=entry.problem.name,
                    status=STATUS_OK,
                    runtime_seconds=time.perf_counter() - entry.start,
                    result=solve_result_from_inference(stop.value),
                ),
            )
        except Exception as exc:  # noqa: BLE001 — one problem must not kill the suite
            finish(
                entry,
                ProblemRecord(
                    name=entry.problem.name,
                    status=STATUS_ERROR,
                    runtime_seconds=time.perf_counter() - entry.start,
                    error=(
                        f"{type(exc).__name__}: {exc}\n"
                        f"{traceback.format_exc(limit=5)}"
                    ),
                ),
            )

    def train_and_advance(entry: _ActiveProblem) -> None:
        """Run one entry's training request inline, safely.

        The request executes in this frame, not inside the engine
        generator, so ``advance``'s catch cannot see its failures; a
        training crash (degenerate matrix, allocation failure, ...)
        must become *this* problem's error record — parity with the
        per-problem catch of ``_run_one`` — not abort the whole suite.
        """
        try:
            outcomes = execute_train_request(entry.pending)
        except Exception as exc:  # noqa: BLE001 — one problem must not kill the suite
            entry.gen.close()
            finish(
                entry,
                ProblemRecord(
                    name=entry.problem.name,
                    status=STATUS_ERROR,
                    runtime_seconds=time.perf_counter() - entry.start,
                    error=(
                        f"{type(exc).__name__}: {exc}\n"
                        f"{traceback.format_exc(limit=5)}"
                    ),
                ),
            )
            return
        advance(entry, outcomes)

    def check_timeout(entry: _ActiveProblem) -> None:
        if timeout_seconds is None or entry.record is not None:
            return
        elapsed = time.perf_counter() - entry.start
        if elapsed > timeout_seconds:
            entry.gen.close()
            finish(
                entry,
                ProblemRecord(
                    name=entry.problem.name,
                    status=STATUS_TIMEOUT,
                    runtime_seconds=elapsed,
                    error=(
                        f"timed out after {timeout_seconds:.0f}s "
                        "(soft enforcement between cross-batch rounds)"
                    ),
                ),
            )

    for entry in active:
        # The budget clock starts when this problem's engine first
        # runs, not when the suite was constructed — otherwise later
        # problems in a long suite would be charged for all earlier
        # priming work.
        entry.start = time.perf_counter()
        advance(entry, None)
        check_timeout(entry)

    while True:
        live = [entry for entry in active if entry.live]
        if not live:
            break
        singles: list[_ActiveProblem] = []
        groups: dict[GroupKey, list[_ActiveProblem]] = {}
        for entry in live:
            request = entry.pending
            signatures = {m.stack_signature() for m in request.models}
            if request.batchable and len(signatures) == 1:
                key = (request.data.shape, next(iter(signatures)))
                groups.setdefault(key, []).append(entry)
            else:
                singles.append(entry)
        for entry in singles:
            train_and_advance(entry)
        for members in groups.values():
            chunk: list[_ActiveProblem] = []
            total = 0
            for entry in members:
                size = len(entry.pending.models)
                if chunk and total + size > cross_batch:
                    _train_chunk(chunk, advance, train_and_advance)
                    chunk, total = [], 0
                chunk.append(entry)
                total += size
            if chunk:
                _train_chunk(chunk, advance, train_and_advance)
        for entry in active:
            check_timeout(entry)

    return [entry.record for entry in sorted(active, key=lambda e: e.index)]


def _train_chunk(
    members: list[_ActiveProblem],
    advance: Callable[[_ActiveProblem, list[RestartOutcome] | None], None],
    train_one: Callable[[_ActiveProblem], None],
) -> None:
    """Train one same-shape chunk and resume its engines.

    A one-member chunk runs through ``train_one``, the exact inline
    path — so ``cross_batch=1`` (or a lone problem) is
    indistinguishable from sequential solving.  Larger chunks stack
    every member's models into one :func:`train_gcln_restarts` call
    with per-model data matrices; outcomes are sliced back per member.

    Merged chunks train without a tape pool (each engine's pool is keyed
    to its own request shapes, and a merged stack mixes problems) — only
    the one-member inline path benefits from cross-attempt tape reuse.
    """
    if len(members) == 1:
        train_one(members[0])
        return
    models = []
    matrices = []
    sizes = []
    for entry in members:
        request = entry.pending
        models.extend(request.models)
        matrices.extend([request.data] * len(request.models))
        sizes.append(len(request.models))
    try:
        flat = train_gcln_restarts(models, matrices)
    except Exception:  # noqa: BLE001 — a shared call must not sink the chunk
        # Defensive: a chunk that cannot train together (a model turned
        # out not stackable, or one member's data breaks the stacked
        # call) falls back to the per-member inline path, where an
        # individual failure becomes that problem's error record.
        for entry in members:
            train_one(entry)
        return
    offset = 0
    for entry, size in zip(members, sizes):
        advance(entry, flat[offset : offset + size])
        offset += size
