"""Problem definitions: a program plus everything inference needs."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import InferenceError
from repro.lang.ast import Program
from repro.lang.parser import parse_expr, parse_program
from repro.sampling.source import (
    InterpreterSource,
    LoopTrace,
    ObservationSource,
    RecordedTraceSource,
)
from repro.sampling.termgen import ExternalTerm
from repro.smt.convert import expr_to_formula
from repro.smt.formula import Atom


@dataclass
class Problem:
    """One invariant-inference benchmark problem.

    A problem is *program-backed* (``source`` set: states come from the
    interpreter) or *trace-only* (``traces`` set: states come from a
    recording; see :mod:`repro.sampling.source`).  At least one of the
    two must be provided; when both are, the program wins and the
    recording is carried as auxiliary data.

    Attributes:
        name: problem identifier (matches the paper's Table 2 rows).
        source: program text in the mini language, or ``None`` for a
            trace-only problem.
        train_inputs: input assignments used for trace collection
            (program-backed only).
        check_inputs: wider input assignments used by the checker; when
            empty, the training inputs are reused.
        max_degree: maximum monomial degree for candidate terms
            (the paper's ``maxDeg``, per-problem as in Table 2).
        variables: term variables per loop id; defaults to every program
            variable for every loop (program-backed), or the sorted
            keys of the first recorded state (trace-only).
        externals: external-function terms available to the invariant
            (e.g. ``gcd(a, b)``, §5.3).
        learn_inequalities: enable the PBQU inequality model.
        fractional: enable fractional sampling (§4.3); used by ps5/ps6.
            Requires a program (ignored for trace-only problems).
        fractional_vars: which variables to relax (default: all constant
            initializers).
        ground_truth: per loop id, the documented invariant atoms as
            expression strings (e.g. ``"t == 2*a + 1"``); used to score
            "solved" in the benchmark tables.
        max_states: cap on training states per loop.
        traces: recorded per-loop observation sequences for trace-only
            solving (:class:`~repro.sampling.source.LoopTrace` per
            loop id).
    """

    name: str
    source: str | None = None
    train_inputs: list[dict[str, object]] = field(default_factory=list)
    check_inputs: list[dict[str, object]] = field(default_factory=list)
    max_degree: int = 2
    variables: dict[int, list[str]] | None = None
    externals: list[ExternalTerm] = field(default_factory=list)
    learn_inequalities: bool = False
    fractional: bool = False
    fractional_vars: list[str] | None = None
    ground_truth: dict[int, list[str]] = field(default_factory=dict)
    max_states: int = 100
    traces: dict[int, LoopTrace] | None = None

    def __post_init__(self) -> None:
        if self.source is None and self.traces is None:
            raise InferenceError(
                f"problem {self.name!r} needs a program source or recorded "
                "traces (both are None)"
            )

    @property
    def program_backed(self) -> bool:
        """Does this problem carry an executable program?"""
        return self.source is not None

    @cached_property
    def program(self) -> Program:
        if self.source is None:
            raise InferenceError(
                f"problem {self.name!r} is trace-only (no program source); "
                "this operation needs an executable program — solve it "
                "through its recorded traces instead"
            )
        return parse_program(self.source)

    def observations(self) -> ObservationSource:
        """The observation source this problem's states come from."""
        if self.source is not None:
            return InterpreterSource(self.program, self.train_inputs)
        assert self.traces is not None  # __post_init__ guarantees one
        return RecordedTraceSource(self.traces)

    @property
    def n_loops(self) -> int:
        """Loop count, from the program or the recorded payload."""
        if self.source is not None:
            return len(self.program.loops)
        return self.observations().n_loops

    def capabilities(self) -> dict:
        """What this problem supports, for registry/CLI introspection.

        Keys: ``kind`` (``"program"``/``"trace"``), ``program_backed``,
        ``trace_only``, ``fractional`` (effective — requires a
        program), and ``checking`` (the checker mode solves will run
        under; see :mod:`repro.checker.result`).
        """
        from repro.checker.result import CHECKING_FULL, CHECKING_RECORDED

        program_backed = self.source is not None
        return {
            "kind": "program" if program_backed else "trace",
            "program_backed": program_backed,
            "trace_only": not program_backed,
            "fractional": bool(self.fractional and program_backed),
            "checking": CHECKING_FULL if program_backed else CHECKING_RECORDED,
        }

    @property
    def effective_check_inputs(self) -> list[dict[str, object]]:
        return self.check_inputs if self.check_inputs else self.train_inputs

    def loop_variables(self, loop_index: int) -> list[str]:
        """Term variables for one loop."""
        if self.variables and loop_index in self.variables:
            return list(self.variables[loop_index])
        if self.source is None:
            names = self.observations().variables(loop_index)
            if names is None:
                raise InferenceError(
                    f"problem {self.name!r}: no recorded states for loop "
                    f"{loop_index} and no explicit variables to derive the "
                    "term basis from"
                )
            return names
        from repro.lang.analysis import program_variables

        return program_variables(self.program)

    def ground_truth_atoms(self, loop_index: int) -> list[Atom]:
        """Parsed ground-truth atoms for one loop."""
        sources = self.ground_truth.get(loop_index, [])
        return [parse_ground_truth(s) for s in sources]


def parse_ground_truth(source: str) -> Atom:
    """Parse an atom like ``"t == 2*a + 1"`` or ``"n >= a*a"``."""
    formula = expr_to_formula(parse_expr(source))
    if not isinstance(formula, Atom):
        raise InferenceError(f"ground truth must be a single atom: {source!r}")
    preserve = formula.op not in ("==", "!=")
    return Atom(formula.poly.primitive(preserve_sign=preserve), formula.op)
