"""Problem definitions: a program plus everything inference needs."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import InferenceError
from repro.lang.ast import Program
from repro.lang.parser import parse_expr, parse_program
from repro.sampling.termgen import ExternalTerm
from repro.smt.convert import expr_to_formula
from repro.smt.formula import Atom


@dataclass
class Problem:
    """One invariant-inference benchmark problem.

    Attributes:
        name: problem identifier (matches the paper's Table 2 rows).
        source: program text in the mini language.
        train_inputs: input assignments used for trace collection.
        check_inputs: wider input assignments used by the checker; when
            empty, the training inputs are reused.
        max_degree: maximum monomial degree for candidate terms
            (the paper's ``maxDeg``, per-problem as in Table 2).
        variables: term variables per loop id; defaults to every program
            variable for every loop.
        externals: external-function terms available to the invariant
            (e.g. ``gcd(a, b)``, §5.3).
        learn_inequalities: enable the PBQU inequality model.
        fractional: enable fractional sampling (§4.3); used by ps5/ps6.
        fractional_vars: which variables to relax (default: all constant
            initializers).
        ground_truth: per loop id, the documented invariant atoms as
            expression strings (e.g. ``"t == 2*a + 1"``); used to score
            "solved" in the benchmark tables.
        max_states: cap on training states per loop.
    """

    name: str
    source: str
    train_inputs: list[dict[str, object]]
    check_inputs: list[dict[str, object]] = field(default_factory=list)
    max_degree: int = 2
    variables: dict[int, list[str]] | None = None
    externals: list[ExternalTerm] = field(default_factory=list)
    learn_inequalities: bool = False
    fractional: bool = False
    fractional_vars: list[str] | None = None
    ground_truth: dict[int, list[str]] = field(default_factory=dict)
    max_states: int = 100

    @cached_property
    def program(self) -> Program:
        return parse_program(self.source)

    @property
    def effective_check_inputs(self) -> list[dict[str, object]]:
        return self.check_inputs if self.check_inputs else self.train_inputs

    def loop_variables(self, loop_index: int) -> list[str]:
        """Term variables for one loop."""
        if self.variables and loop_index in self.variables:
            return list(self.variables[loop_index])
        from repro.lang.analysis import program_variables

        return program_variables(self.program)

    def ground_truth_atoms(self, loop_index: int) -> list[Atom]:
        """Parsed ground-truth atoms for one loop."""
        sources = self.ground_truth.get(loop_index, [])
        return [parse_ground_truth(s) for s in sources]


def parse_ground_truth(source: str) -> Atom:
    """Parse an atom like ``"t == 2*a + 1"`` or ``"n >= a*a"``."""
    formula = expr_to_formula(parse_expr(source))
    if not isinstance(formula, Atom):
        raise InferenceError(f"ground truth must be a single atom: {source!r}")
    preserve = formula.op not in ("==", "!=")
    return Atom(formula.poly.primitive(preserve_sign=preserve), formula.op)
