"""Pure data stages of the inference pipeline, memoized via TraceCache.

These are the attempt-independent stages of the Fig. 3 workflow:
collecting loop-head training states (with optional fractional
sampling, §4.3) and building the candidate-term matrices.  Both are
pure functions of (problem, config, fractional interval) and memoize
their results in a :class:`~repro.sampling.cache.TraceCache`, so the
retry schedule pays for them once per distinct interval instead of
once per attempt.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

import numpy as np

from repro.cln.extract import make_exact_validator
from repro.infer.config import InferenceConfig
from repro.infer.problem import Problem
from repro.poly.polynomial import Polynomial
from repro.sampling.cache import TraceCache
from repro.sampling.filters import duplicate_column_map, growth_rate_filter
from repro.sampling.fractional import (
    FRACTIONAL_SUFFIX,
    fractional_inputs,
    relax_initializers,
)
from repro.sampling.normalize import normalize_rows
from repro.sampling.termgen import TermBasis, build_term_basis, evaluate_terms
from repro.sampling.tracegen import loop_dataset
from repro.smt.formula import Atom


@dataclass(frozen=True)
class StateDataset:
    """Training states for every loop at one fractional interval.

    Attributes:
        states: per-loop-index lists of variable environments.
        fractional_vars: the ``*__frac`` offset variables present in
            the states (empty when fractional sampling is off).
        key: content fingerprint of everything that determined the
            states; downstream stages key their memoization on it.
    """

    states: Mapping[int, list[dict]]
    fractional_vars: tuple[str, ...]
    key: str


@dataclass(frozen=True)
class MatrixBundle:
    """Candidate-term data for one loop: basis, matrices, free atoms.

    ``raw`` is the unnormalized term matrix after filtering, ``data``
    the training matrix (row-normalized unless disabled), and
    ``degenerate`` the equality atoms read directly off duplicate /
    constant columns (they are emitted here because the duplicate
    column itself is dropped for conditioning).
    """

    basis: TermBasis
    raw: np.ndarray
    data: np.ndarray
    degenerate: tuple[Atom, ...]


def derive_loop_rng(seed: int, loop_index: int) -> np.random.Generator:
    """Per-loop model/weight-init RNG derived from an attempt seed.

    The one copy of the ``seed * 1000 + loop_index`` derivation shared
    by the engine and the baseline solvers, so a future change to the
    seed scheme cannot drift between them.
    """
    return np.random.default_rng(seed * 1000 + loop_index)


def collect_states(
    problem: Problem,
    config: InferenceConfig,
    fractional_interval: float | None,
    cache: TraceCache,
) -> StateDataset:
    """Training states per loop, optionally with fractional sampling.

    Memoized: repeated attempts with the same (source, interval) return
    the cached dataset without re-interpreting the program (or
    re-assembling the recording).  The source *kind* is part of the
    key, so a trace-only problem can never hit the cached states of a
    same-named (or even fingerprint-colliding) program problem.
    """
    source = problem.observations()
    use_fractional = (
        problem.fractional
        and config.fractional_sampling
        and fractional_interval is not None
        and source.kind == "program"  # relaxation needs a program
    )
    key_parts = (
        source.kind,
        source.fingerprint(),
        fractional_interval if use_fractional else None,
        problem.max_states,
        tuple(problem.fractional_vars or ()) if use_fractional else (),
    )
    dataset_key = repr(key_parts)

    def compute() -> StateDataset:
        states = source.train_states(problem.max_states, cache)
        fractional_vars: tuple[str, ...] = ()
        if use_fractional:
            program = problem.program
            relaxed, relaxed_vars = relax_initializers(
                program, problem.fractional_vars
            )
            if relaxed_vars:
                # The paper's relaxation (§4.3): initial values become
                # symbolic inputs V_I carried as extra state variables
                # (the ``*__frac`` offsets); the model learns the
                # *relaxed* invariant over V ∪ V_I and the pipeline
                # substitutes the exact initial offsets (zero) back in
                # (Eq. 7).  Fractional states therefore keep their
                # offset variables.
                fractional_vars = tuple(
                    v + FRACTIONAL_SUFFIX for v in relaxed_vars
                )
                base = problem.train_inputs[: max(1, len(problem.train_inputs) // 4)]
                frac_in = fractional_inputs(
                    base, relaxed_vars, interval=fractional_interval, limit=200
                )
                frac_traces = cache.traces(relaxed, frac_in)
                for loop_index in range(len(program.loops)):
                    extra = loop_dataset(
                        frac_traces, loop_index, max_states=problem.max_states
                    )
                    zero = {name: 0 for name in fractional_vars}
                    merged = [dict(s, **zero) for s in states[loop_index]]
                    merged.extend(dict(s) for s in extra)
                    seen: set[tuple] = set()
                    unique: list[dict] = []
                    for s in merged:
                        state_key = tuple(sorted(s.items()))
                        if state_key not in seen:
                            seen.add(state_key)
                            unique.append(s)
                    states[loop_index] = unique[: 2 * problem.max_states]
        return StateDataset(
            states=states, fractional_vars=fractional_vars, key=dataset_key
        )

    return cache.memoize("trace", ("states", dataset_key), compute)


def integer_external_states(
    states: list[dict], externals: list
) -> list[dict]:
    """States where every external-function argument is an integer.

    External terms (e.g. ``gcd(a, b)``, §5.3) are only defined on
    integer arguments; fractional-sampling states that give an argument
    a non-integer value are dropped before term evaluation.  Shared by
    the engine's matrix stage and the baseline solver adapters so both
    apply exactly the same filter.
    """
    if not externals:
        return states
    return [
        s
        for s in states
        if all(
            getattr(s.get(a), "denominator", 1) == 1
            for ext in externals
            for a in ext.args
        )
    ]


def build_matrix(
    problem: Problem,
    config: InferenceConfig,
    dataset: StateDataset,
    loop_index: int,
    cache: TraceCache,
) -> MatrixBundle:
    """Term basis, matrices, and degenerate-column atoms for one loop.

    Memoized on (dataset, loop, term-construction knobs); the returned
    bundle is shared across attempts and must not be mutated.
    """
    states = dataset.states[loop_index]
    variables = list(problem.loop_variables(loop_index))
    frac_vars = [
        v for v in dataset.fractional_vars if states and v in states[0]
    ]
    variables.extend(v for v in frac_vars if v not in variables)
    key = (
        dataset.key,
        loop_index,
        tuple(variables),
        problem.max_degree,
        tuple(e.name for e in problem.externals),
        config.growth_ratio_cap,
        config.data_normalization,
    )
    return cache.memoize(
        "matrix",
        key,
        lambda: _build_matrix_uncached(problem, config, states, variables),
    )


def _build_matrix_uncached(
    problem: Problem,
    config: InferenceConfig,
    states: list[dict],
    variables: list[str],
) -> MatrixBundle:
    basis = build_term_basis(
        variables, problem.max_degree, externals=problem.externals
    )
    usable_states = integer_external_states(states, problem.externals)
    raw = evaluate_terms(usable_states, basis)

    # Duplicate columns (``r`` identical to ``A`` throughout) and
    # constant columns (``q`` always 0) are *themselves* equality
    # candidates; they are emitted directly because dropping the
    # duplicate column — necessary for conditioning — would otherwise
    # hide the invariant from the model.
    degenerate: list[Atom] = []
    validator = make_exact_validator(usable_states, basis)
    dup_of = duplicate_column_map(raw)
    kept_unique = [j for j in range(raw.shape[1]) if j not in dup_of]
    for j, i in dup_of.items():
        poly = Polynomial(
            {basis.monomials[i]: 1, basis.monomials[j]: -1}
        )
        if not poly.is_zero() and validator(poly, "=="):
            degenerate.append(Atom(poly.primitive(), "=="))
    for j in kept_unique:
        column = raw[:, j]
        if basis.monomials[j].is_constant():
            continue
        if np.all(column == column[0]) and float(column[0]).is_integer():
            poly = Polynomial(
                {
                    basis.monomials[j]: 1,
                    basis.monomials[0]: -int(column[0]),
                }
            )
            if validator(poly, "=="):
                degenerate.append(Atom(poly.primitive(), "=="))

    degrees = [m.degree for m in basis.monomials]
    keep = growth_rate_filter(raw, degrees, ratio_cap=config.growth_ratio_cap)
    keep = [j for j in keep if j not in dup_of]
    basis = basis.restrict(keep)
    raw = raw[:, keep]
    if config.data_normalization:
        data = normalize_rows(raw)
    else:
        data = raw.copy()
    return MatrixBundle(
        basis=basis, raw=raw, data=data, degenerate=tuple(degenerate)
    )


def instantiate_fractional(
    atoms: list[Atom] | tuple[Atom, ...],
    states: list[dict],
    fractional_vars: tuple[str, ...],
) -> list[Atom]:
    """Substitute zero offsets into relaxed-invariant atoms (Eq. 7).

    Atoms learned over the relaxed program may mention the ``*__frac``
    initial-value variables; instantiating them at the original
    initial values (offset 0) yields candidate invariants of the
    original program, which are re-validated on the zero-offset
    samples.
    """
    if not fractional_vars:
        return list(atoms)
    zero_map = {v: Polynomial.zero() for v in fractional_vars}
    base_states = [
        {k: v for k, v in s.items() if not k.endswith(FRACTIONAL_SUFFIX)}
        for s in states
        if all(s.get(v, 0) == 0 for v in fractional_vars)
    ]
    out: list[Atom] = []
    for atom in atoms:
        poly = atom.poly.substitute(zero_map)
        if poly.is_zero() or poly.is_constant():
            continue
        if any(v.endswith(FRACTIONAL_SUFFIX) for v in poly.variables):
            continue
        candidate = Atom(poly.primitive(), atom.op)
        if all(
            candidate.evaluate({k: Fraction(v) for k, v in s.items()})
            for s in base_states
        ):
            out.append(candidate)
    return out
