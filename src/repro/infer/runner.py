"""Parallel batch execution of inference problems.

:func:`run_many` fans a list of problems out over a
``concurrent.futures`` process pool (``jobs`` workers; ``jobs=1`` runs
inline in-process), enforcing an optional per-problem wall-clock
timeout and collecting one structured :class:`ProblemRecord` per
problem, in input order.  Work dispatches through the solver registry
(:func:`repro.api.get_solver`): pass ``solver="guess_and_check"`` (or
any registered name) to batch-run a baseline under the exact same
record schema as the G-CLN, so benchmark tables, the ``python -m repro
run-all`` CLI, and solver comparisons share one result format
(:class:`~repro.api.solver.SolveResult` inside each record).

Timeouts are enforced *inside* the worker with ``SIGALRM`` (POSIX), so
a timed-out problem frees its pool slot immediately instead of
poisoning the pool.  On platforms without ``SIGALRM`` (or off the main
thread) the timeout **cannot** be enforced: the run proceeds without a
budget and every affected record carries ``timeout_enforced=False`` so
callers (e.g. the CLI) can surface the degradation instead of silently
pretending the budget was applied.

With ``cache_dir`` set, every worker opens its own
:class:`~repro.sampling.cache.TraceCache` spilling to that directory,
so parallel runs share the on-disk trace/matrix store (the spill's
``tempfile.mkstemp`` + ``os.replace`` writes are concurrency-safe).

``cross_batch > 1`` switches to single-process cross-problem training
batches (:func:`repro.infer.batcher.run_cross_batched`): same-shape
attempts from different problems train in one stacked call.

``workers > 1`` (or ``queue_dir``) switches to the distributed runner
(:mod:`repro.dist`): problems are enqueued on a journaled filesystem
work queue and drained by separate worker processes — the same queue
any number of ``python -m repro worker`` processes can share, across
hosts on a shared filesystem.  A durable ``queue_dir`` makes re-runs
resume instead of re-solving.
"""

from __future__ import annotations

import signal
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.api.solver import SolveResult, get_solver, require_solver_supports
from repro.infer.config import InferenceConfig
from repro.infer.problem import Problem
from repro.sampling.cache import TraceCache

# A pluggable solve step: (problem, config) -> SolveResult.  The
# default goes through the solver registry; InvariantService passes a
# closure here so inline runs share its cache and event bus.
SolveFn = Callable[[Problem, InferenceConfig | None], SolveResult]

# Record statuses.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


@dataclass
class ProblemRecord:
    """Outcome of one problem in a batch run.

    Attributes:
        name: problem name.
        status: ``"ok"``, ``"timeout"``, or ``"error"``.
        runtime_seconds: wall-clock time spent on the problem.
        result: the solver's result when ``status == "ok"``; the same
            :class:`~repro.api.solver.SolveResult` schema regardless
            of which registered solver ran.
        error: error description for ``"timeout"`` / ``"error"``.
        timeout_enforced: False when a timeout was requested but the
            platform could not enforce it (no ``SIGALRM``, or solving
            off the main thread) — the problem ran without a budget.
            True when the budget was applied or none was requested.
    """

    name: str
    status: str
    runtime_seconds: float = 0.0
    result: SolveResult | None = None
    error: str | None = None
    timeout_enforced: bool = True

    @property
    def solved(self) -> bool:
        return self.status == STATUS_OK and self.result is not None and self.result.solved

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "solved": self.solved,
            "runtime_seconds": self.runtime_seconds,
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.error,
            "timeout_enforced": self.timeout_enforced,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProblemRecord":
        """Rebuild a record from :meth:`to_dict` output.

        ``to_dict`` is the wire format the distributed runner journals;
        this is the receiving end (the derived ``solved`` key is
        recomputed from the embedded result, not trusted).
        """
        result = data.get("result")
        return cls(
            name=data["name"],
            status=data["status"],
            runtime_seconds=data.get("runtime_seconds", 0.0),
            result=SolveResult.from_dict(result) if result is not None else None,
            error=data.get("error"),
            timeout_enforced=data.get("timeout_enforced", True),
        )


class _Timeout(Exception):
    """Internal: the per-problem alarm fired."""


def _solve_via_registry(
    solver: str,
    problem: Problem,
    config: InferenceConfig | None,
    cache: TraceCache | None = None,
) -> SolveResult:
    """Default solve step: instantiate the named solver and run it."""
    require_solver_supports(solver, problem)
    return get_solver(solver).solve(problem, config=config, cache=cache)


def _run_one(
    problem: Problem,
    config: InferenceConfig | None,
    timeout_seconds: float | None,
    solver: str = "gcln",
    solve_fn: SolveFn | None = None,
    cache_dir: str | None = None,
) -> ProblemRecord:
    """Run one problem with an optional SIGALRM-enforced timeout.

    This is the unit of work shipped to pool workers; it must stay a
    module-level function so it pickles (``solve_fn`` closures are
    inline-only — pool workers always dispatch via ``solver`` name).
    With ``cache_dir`` set (and no ``solve_fn``), the solver gets a
    fresh :class:`TraceCache` spilling to that directory, so workers
    share the on-disk store even though each has its own memory cache.
    """
    start = time.perf_counter()
    timeout_requested = timeout_seconds is not None
    use_alarm = timeout_requested and hasattr(signal, "SIGALRM")
    previous_handler = None
    previous_timer = (0.0, 0.0)
    if use_alarm:

        def _on_alarm(_signum, _frame):
            raise _Timeout()

        try:
            previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
            previous_timer = signal.getitimer(signal.ITIMER_REAL)
            signal.setitimer(signal.ITIMER_REAL, timeout_seconds)
        except ValueError:
            # Not in the main thread; run without enforcement.
            use_alarm = False
    # A requested-but-unenforceable budget is a silent degradation
    # unless recorded: every record from this call says whether the
    # budget actually applied.
    enforced = use_alarm or not timeout_requested

    def _disarm() -> None:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)

    try:
        # The outer except catches a late alarm that fires inside one
        # of the inner handlers, so _Timeout can never escape into the
        # caller's batch loop.
        try:
            if solve_fn is not None:
                result = solve_fn(problem, config)
            else:
                cache = (
                    TraceCache(cache_dir=cache_dir)
                    if cache_dir is not None
                    else None
                )
                result = _solve_via_registry(solver, problem, config, cache)
            _disarm()
            return ProblemRecord(
                name=problem.name,
                status=STATUS_OK,
                runtime_seconds=time.perf_counter() - start,
                result=result,
                timeout_enforced=enforced,
            )
        except _Timeout:
            raise
        except Exception as exc:  # noqa: BLE001 — batch runs must not die on one problem
            _disarm()
            return ProblemRecord(
                name=problem.name,
                status=STATUS_ERROR,
                runtime_seconds=time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=5)}",
                timeout_enforced=enforced,
            )
    except _Timeout:
        return ProblemRecord(
            name=problem.name,
            status=STATUS_TIMEOUT,
            runtime_seconds=time.perf_counter() - start,
            error=f"timed out after {timeout_seconds:.0f}s",
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if previous_handler is not None:
                signal.signal(signal.SIGALRM, previous_handler)
            if previous_timer[0] > 0:
                # Re-arm the caller's pre-existing timer with the time
                # it had remaining when we took over.
                signal.setitimer(signal.ITIMER_REAL, *previous_timer)


def run_many(
    problems: Sequence[Problem],
    config: InferenceConfig | None = None,
    jobs: int = 1,
    timeout_seconds: float | None = None,
    progress: Callable[[ProblemRecord], None] | None = None,
    solver: str = "gcln",
    solve_fn: SolveFn | None = None,
    cross_batch: int = 1,
    cache_dir: str | None = None,
    cache: TraceCache | None = None,
    events=None,
    workers: "int | str" = 1,
    queue_dir: str | None = None,
    min_workers: int = 1,
    max_workers: int | None = None,
    fleet_status: Callable[[dict], None] | None = None,
) -> list[ProblemRecord]:
    """Run a registered solver on every problem, optionally in parallel.

    Args:
        problems: the problems to run.
        config: shared inference config (``None`` = paper defaults).
        jobs: worker processes; ``1`` runs inline in this process.
        timeout_seconds: per-problem wall-clock budget (soft under
            ``cross_batch > 1``; see :mod:`repro.infer.batcher`).
        progress: called with each record as it completes (completion
            order, which differs from input order when ``jobs > 1``).
        solver: registry name of the strategy to run; unknown names
            raise :class:`~repro.api.solver.UnknownSolverError` up
            front, before any work starts.  With ``jobs > 1`` each
            worker rebuilds the registry from module imports, so a
            custom solver must be registered at import time of a module
            the workers import (e.g. in your package, not inline in a
            script) to be visible under spawn/forkserver start methods.
        solve_fn: inline-only override of the solve step (used by
            :class:`~repro.api.service.InvariantService` to share its
            cache/event bus); requires ``jobs == 1``.
        cross_batch: > 1 enables cross-problem training batches: up to
            this many same-shape models from different problems train
            in one stacked call.  Single-process and engine-only
            (requires ``jobs == 1``, ``solver == "gcln"``, and no
            ``solve_fn``); produces the same invariants as sequential
            solving.
        cache_dir: on-disk trace/matrix spill directory handed to every
            worker (and to inline registry solves), so parallel runs
            share the disk cache; ignored when ``solve_fn`` or
            ``cache`` supplies caching instead.
        cache: shared in-memory cache for the ``cross_batch`` path
            (the service passes its own).
        events: event sink for the ``cross_batch`` path.
        workers: > 1 (or any value with ``queue_dir``) switches to the
            distributed runner (:mod:`repro.dist`): the problems are
            enqueued on a journaled work queue and drained by this many
            local worker processes.  ``"auto"`` runs an *elastic* fleet
            sized to queue depth between ``min_workers`` and
            ``max_workers``.  Mutually exclusive with ``jobs`` and
            ``solve_fn``; ``cross_batch`` composes (each worker claims
            cross-batch-sized item batches).
        queue_dir: durable queue directory for the ``workers`` path —
            or an ``http(s)://`` queue-server URL, making the spawned
            workers remote followers.  Re-running on a half-finished
            queue skips journaled items (resume); omitted = a private
            temporary queue.
        min_workers: elastic-fleet floor (``workers="auto"`` only).
        max_workers: elastic-fleet ceiling (``workers="auto"`` only);
            ``None`` = CPU count, capped at 8.
        fleet_status: distributed-run live tail — called with a fleet
            snapshot (live workers, queue counts, per-worker health)
            whenever the state changes.

    Returns:
        One record per problem, in input order, regardless of
        completion order or worker failures.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if timeout_seconds is not None and timeout_seconds <= 0:
        raise ValueError(
            f"timeout_seconds must be positive, got {timeout_seconds}"
        )
    if cross_batch < 1:
        raise ValueError(f"cross_batch must be >= 1, got {cross_batch}")
    if solve_fn is not None and jobs != 1:
        raise ValueError("solve_fn requires jobs == 1 (it does not pickle)")
    if cross_batch > 1:
        if jobs != 1:
            raise ValueError(
                "cross_batch requires jobs == 1: cross-problem batches "
                "amortize training within one process (use jobs OR "
                "cross_batch, not both)"
            )
        if solver != "gcln":
            raise ValueError(
                "cross_batch requires solver='gcln': only the G-CLN "
                "engine trains models that can batch across problems"
            )
        if solve_fn is not None:
            raise ValueError("cross_batch and solve_fn are mutually exclusive")
    if isinstance(workers, str):
        if workers != "auto":
            raise ValueError(
                f"workers must be an integer or 'auto', got {workers!r}"
            )
    elif workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    distributed = (
        workers == "auto" or queue_dir is not None
        or (isinstance(workers, int) and workers > 1)
    )
    if distributed:
        if jobs != 1:
            raise ValueError(
                "workers/queue_dir and jobs are mutually exclusive: the "
                "distributed runner spawns its own worker processes"
            )
        if solve_fn is not None:
            raise ValueError(
                "workers/queue_dir and solve_fn are mutually exclusive "
                "(worker processes rebuild solvers from the registry)"
            )
        if cross_batch > 1 and solver != "gcln":
            raise ValueError(
                "cross_batch requires solver='gcln': only the G-CLN "
                "engine trains models that can batch across problems"
            )
    if solve_fn is None:
        get_solver(solver)  # fail fast on unknown names
    if not problems:
        return []

    if distributed:
        from repro.dist.coordinator import run_distributed

        return run_distributed(
            problems,
            config,
            workers=workers,
            queue_dir=queue_dir,
            solver=solver,
            timeout_seconds=timeout_seconds,
            cross_batch=cross_batch,
            cache_dir=cache_dir,
            progress=progress,
            min_workers=min_workers,
            max_workers=max_workers,
            fleet_status=fleet_status,
        )

    if cross_batch > 1:
        from repro.infer.batcher import run_cross_batched

        return run_cross_batched(
            problems,
            config,
            cross_batch=cross_batch,
            timeout_seconds=timeout_seconds,
            progress=progress,
            cache=cache,
            cache_dir=cache_dir,
            events=events,
        )

    if jobs == 1:
        records = []
        for problem in problems:
            record = _run_one(
                problem, config, timeout_seconds, solver, solve_fn, cache_dir
            )
            if progress is not None:
                progress(record)
            records.append(record)
        return records

    records_by_index: dict[int, ProblemRecord] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(problems))) as pool:
        futures = {
            pool.submit(
                _run_one, problem, config, timeout_seconds, solver, None,
                cache_dir,
            ): index
            for index, problem in enumerate(problems)
        }
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = futures[future]
                try:
                    record = future.result()
                except Exception as exc:  # worker died (e.g. OOM-kill)
                    record = ProblemRecord(
                        name=problems[index].name,
                        status=STATUS_ERROR,
                        error=f"worker failed: {type(exc).__name__}: {exc}",
                    )
                records_by_index[index] = record
                if progress is not None:
                    progress(record)
    return [records_by_index[i] for i in range(len(problems))]


def summarize(records: Sequence[ProblemRecord]) -> dict:
    """Aggregate counts and timing over a batch run's records."""
    total_time = sum(r.runtime_seconds for r in records)
    return {
        "problems": len(records),
        "solved": sum(1 for r in records if r.solved),
        "ok": sum(1 for r in records if r.status == STATUS_OK),
        "timeout": sum(1 for r in records if r.status == STATUS_TIMEOUT),
        "error": sum(1 for r in records if r.status == STATUS_ERROR),
        "total_runtime_seconds": total_time,
        "mean_runtime_seconds": total_time / len(records) if records else 0.0,
    }
