"""Inference-pipeline configuration, including ablation switches."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cln.model import GCLNConfig


@dataclass
class InferenceConfig:
    """Knobs for the end-to-end pipeline.

    The four boolean switches correspond to the columns of the paper's
    Table 3 ablation; everything defaults to the full method.
    """

    # Ablation switches (Table 3).
    data_normalization: bool = True
    weight_regularization: bool = True
    term_dropout: bool = True
    fractional_sampling: bool = True

    # Retry schedule: dropout rates tried across attempts (the paper
    # adjusts the rate by 0.1 per failed attempt).
    dropout_schedule: tuple[float, ...] = (0.6, 0.7, 0.5, 0.75)
    # Random seeds paired with attempts (cycled).
    seeds: tuple[int, ...] = (1, 2, 3, 4)

    # Training budget per attempt.
    max_epochs: int = 2000
    # Fractional-sampling interval schedule (§5.4: 0.5, then 0.25, ...).
    fractional_intervals: tuple[float, ...] = (0.5, 0.25)

    # Batched retries: after the first attempt (which always runs alone,
    # preserving the fast path for problems solved immediately), up to
    # this many consecutive same-interval attempts train simultaneously
    # as stacked restarts in one taped graph (cln.train_gcln_restarts).
    # 1 disables grouping.
    attempt_batch_size: int = 2
    # Memoize checker verdicts across attempts: reachability per atom,
    # inductiveness per (atom, premise set) with monotone reuse.  The
    # candidate pool grows cumulatively across attempts, so without
    # this every retry re-checks every previously validated atom.
    checker_memoization: bool = True

    # Base G-CLN hyperparameters (copied per attempt with the dropout
    # rate and ablation switches applied).
    gcln: GCLNConfig = field(default_factory=GCLNConfig)

    # Tape replay backend forwarded into every attempt's GCLNConfig
    # ("auto" / "numpy" / "fused" / "numba"; see repro.autodiff.backend).
    backend: str = "auto"

    # Warm start (opt-in): carry gate states across retry attempts and
    # seed worse restarts from the best-loss member mid-training
    # (forwarded into every attempt's GCLNConfig.warm_start).  Off keeps
    # attempts fully independent — bitwise-identical to older builds.
    warm_start: bool = False
    # Cross-attempt tape/plan reuse: same-shape training calls re-bind
    # an already-recorded tape instead of re-recording and re-compiling.
    # Bitwise-transparent (replay == eager record), so it is on by
    # default; 0 disables the pool entirely.
    tape_pool_size: int = 8

    # Term-filtering caps.
    growth_ratio_cap: float = 1e8

    def gcln_for_attempt(self, dropout_rate: float) -> GCLNConfig:
        """GCLNConfig for one attempt, honoring ablation switches."""
        from dataclasses import replace

        rate = dropout_rate if self.term_dropout else 0.0
        return replace(
            self.gcln,
            dropout_rate=rate,
            weight_regularization=self.weight_regularization,
            max_epochs=self.max_epochs,
            backend=self.backend,
            warm_start=self.gcln.warm_start or self.warm_start,
        )
