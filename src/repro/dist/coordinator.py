"""The coordinator: enqueue a suite, run workers, merge the journal.

:func:`run_distributed` is the whole lifecycle in one call — it backs
``run_many(workers=N)`` and ``run-all --workers N``:

1. create (or re-open) the queue and enqueue one item per problem —
   ids are stable, so items already journaled from an earlier run are
   skipped (**resume is free**: a re-run after a crash only solves
   what is missing);
2. spawn N local worker processes over the queue (each is exactly the
   ``python -m repro worker`` loop), tailing the journal for live
   progress while they drain;
3. if any worker died, return its claims to ``pending`` and drain the
   remainder inline, so the call always completes the suite;
4. merge the journal back into :class:`~repro.infer.runner.
   ProblemRecord`s in input order — the same list a sequential
   ``run_many`` returns, and the same JSON payload ``run-all --json``
   emits (:func:`merge_payload`).

The queue can also be driven manually — ``python -m repro enqueue``
(:func:`enqueue_suite`) plus any number of ``python -m repro worker``
processes on other hosts sharing the queue directory — and merged
later by re-running the coordinator on the same queue.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import tempfile
import time
from typing import TYPE_CHECKING, Callable, Sequence

from repro.dist.queue import DEFAULT_LEASE_SECONDS, QueueError, WorkQueue
from repro.dist.transport import TransportNotFound
from repro.dist.wire import config_to_dict, item_for_problem
from repro.dist.worker import Worker, worker_main
from repro.errors import ReproError

#: Elastic mode never spawns more than this many extra processes after
#: retiring/replacing crashed ones — a crash-looping worker must not
#: fork-bomb the host.  The inline-drain safety net finishes the suite
#: regardless.
ELASTIC_RESPAWN_FACTOR = 4

if TYPE_CHECKING:  # pragma: no cover
    from repro.infer.config import InferenceConfig
    from repro.infer.problem import Problem
    from repro.infer.runner import ProblemRecord


def build_meta(
    *,
    solver: str = "gcln",
    config: "InferenceConfig | None" = None,
    timeout_seconds: float | None = None,
    cross_batch: int = 1,
    suite: str | None = None,
    workers: "int | str" = 1,
) -> dict:
    """The run-wide settings every worker must agree on."""
    return {
        "solver": solver,
        "config": config_to_dict(config) if config is not None else None,
        "timeout_seconds": timeout_seconds,
        "cross_batch": cross_batch,
        "suite": suite,
        "workers": workers,
    }


def enqueue_suite(
    queue_dir: str,
    suite: str,
    names: list[str] | None = None,
    *,
    solver: str = "gcln",
    config: "InferenceConfig | None" = None,
    timeout_seconds: float | None = None,
    cross_batch: int = 1,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
) -> tuple[WorkQueue, int, int]:
    """Enqueue a benchmark suite as registry-reference items.

    Returns ``(queue, added, skipped)``; already-journaled (or still
    queued) items are skipped, so re-enqueueing a half-finished suite
    only adds the missing part.
    """
    from repro.bench import suite_problems

    problems = suite_problems(suite, names)
    if not problems:
        raise ReproError(f"no problems selected from suite {suite!r}")
    queue = WorkQueue.create(
        queue_dir,
        meta=build_meta(
            solver=solver,
            config=config,
            timeout_seconds=timeout_seconds,
            cross_batch=cross_batch,
            suite=suite,
        ),
        lease_seconds=lease_seconds,
    )
    items = [
        item_for_problem(problem, index, suite=suite, solver=solver, config=config)
        for index, problem in enumerate(problems)
    ]
    added, skipped = queue.enqueue(items)
    return queue, added, skipped


def wait_for_drain(
    queue: WorkQueue,
    *,
    poll_seconds: float = 0.5,
    timeout: float | None = None,
) -> bool:
    """Block until nothing is pending or claimed; False on timeout."""
    deadline = None if timeout is None else time.monotonic() + timeout
    while queue.unfinished() > 0:
        if deadline is not None and time.monotonic() > deadline:
            return False
        time.sleep(poll_seconds)
    return True


def records_from_journal(queue: WorkQueue) -> dict[str, "ProblemRecord"]:
    """Journaled records keyed by item id (first ack of an id wins)."""
    from repro.infer.runner import ProblemRecord

    records: dict[str, "ProblemRecord"] = {}
    for entry in queue.journal_entries():
        item_id = entry["id"]
        if item_id in records:
            continue  # duplicate ack after a lease-expiry re-claim
        payload = entry.get("payload") or {}
        record = payload.get("record")
        if record is not None:
            records[item_id] = ProblemRecord.from_dict(record)
    return records


def merge_payload(queue: WorkQueue) -> dict:
    """Merge the journal into the payload ``run-all --json`` emits.

    Records are ordered by the input index embedded in each item id, so
    re-merging a finished queue is deterministic no matter which worker
    finished what.
    """
    from repro.infer.runner import summarize

    meta = queue.meta
    records = records_from_journal(queue)
    ordered = [records[item_id] for item_id in sorted(records)]
    return {
        "suite": meta.get("suite"),
        "solver": meta.get("solver", "gcln"),
        "jobs": meta.get("workers", 1),
        "cross_batch": meta.get("cross_batch", 1),
        "timeout_seconds": meta.get("timeout_seconds"),
        "summary": summarize(ordered),
        "records": [record.to_dict() for record in ordered],
    }


def _reclaim_dead(queue: WorkQueue, worker_ids: set[str]) -> int:
    """Return items claimed by known-dead workers to pending."""
    reclaimed = 0
    for name in queue.transport.listdir("claimed"):
        try:
            data = json.loads(
                queue.transport.read(f"claimed/{name}").decode("utf-8")
            )
        except (TransportNotFound, json.JSONDecodeError, UnicodeDecodeError):
            continue
        if data.get("claimed_by") in worker_ids:
            if queue.transport.rename(f"claimed/{name}", f"pending/{name}"):
                reclaimed += 1
    return reclaimed


def check_cross_batch(queue_target: "str | None", cross_batch: int) -> None:
    """Reject a cross-batch width that disagrees with an existing queue.

    A queue's ``meta.json`` is authoritative for *how* items are solved
    (the worker contract), and item ids do not embed ``cross_batch`` —
    so resuming a queue with a different width would silently re-solve
    the remainder under different batching than the journaled part.
    ``run-all --workers`` used to let ``WorkQueue.create`` overwrite
    the stored width without a word; now it is an error.
    """
    if queue_target is None:
        return
    try:
        existing = WorkQueue.open(queue_target).meta
    except QueueError:
        return  # fresh directory: nothing to disagree with
    stored = int(existing.get("cross_batch", 1) or 1)
    if stored != cross_batch:
        raise QueueError(
            f"queue {queue_target} was created with cross_batch={stored}, "
            f"but this run asked for cross_batch={cross_batch}; re-run with "
            f"--cross-batch {stored} or point at a fresh queue directory"
        )


def run_distributed(
    problems: Sequence["Problem"],
    config: "InferenceConfig | None" = None,
    *,
    workers: "int | str" = 2,
    queue_dir: str | None = None,
    solver: str = "gcln",
    timeout_seconds: float | None = None,
    cross_batch: int = 1,
    cache_dir: str | None = None,
    lease_seconds: float | None = None,
    suite: str | None = None,
    progress: Callable[["ProblemRecord"], None] | None = None,
    poll_seconds: float = 0.5,
    min_workers: int = 1,
    max_workers: int | None = None,
    fleet_status: Callable[[dict], None] | None = None,
) -> list["ProblemRecord"]:
    """Fan ``problems`` out over local worker processes.

    ``workers`` is a fixed process count, or ``"auto"`` for an elastic
    fleet: the coordinator sizes the pool to the queue depth every
    poll — spawning up to ``max_workers`` (default: CPU count, capped
    at 8) while items outnumber live workers, retiring workers (clean
    ``SIGTERM``, they finish their current item) as the queue drains
    below the pool size, and never dropping under ``min_workers``
    until the drain completes.  Dead workers are replaced within a
    bounded respawn budget.

    With ``queue_dir`` the queue is durable: a re-run on the same
    directory skips everything already journaled and only solves the
    rest (items are matched by stable ids, so the problem list must be
    the same — and the stored ``cross_batch`` must match, see
    :func:`check_cross_batch`).  Without it a temporary queue is used
    and removed.  ``queue_dir`` may also be an ``http(s)://`` queue
    server URL, in which case the spawned workers are remote followers
    of that server.

    ``fleet_status`` (if given) is called with a snapshot dict — live
    worker count, queue counts, per-worker health — every time the
    fleet or queue state changes; it is the coordinator's live tail.

    Always returns one record per problem, in input order: if worker
    processes die (OOM, SIGKILL), their leases are reclaimed and the
    remainder is drained inline in this process.
    """
    from repro.infer.runner import STATUS_ERROR, ProblemRecord

    elastic = workers == "auto"
    if elastic:
        if min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {min_workers}")
        if max_workers is None:
            max_workers = max(2, min(os.cpu_count() or 2, 8))
        if max_workers < min_workers:
            raise ValueError(
                f"max_workers ({max_workers}) must be >= min_workers "
                f"({min_workers})"
            )
    elif not isinstance(workers, int):
        raise ValueError(
            f"workers must be an integer or 'auto', got {workers!r}"
        )
    elif workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    check_cross_batch(queue_dir, cross_batch)
    temp_dir = None
    if queue_dir is None:
        temp_dir = tempfile.mkdtemp(prefix="repro-queue-")
        queue_dir = temp_dir
    try:
        queue = WorkQueue.create(
            queue_dir,
            meta=build_meta(
                solver=solver,
                config=config,
                timeout_seconds=timeout_seconds,
                cross_batch=cross_batch,
                suite=suite,
                workers=workers,
            ),
            lease_seconds=lease_seconds,
        )
        items = [
            item_for_problem(
                problem, index, suite=suite, solver=solver, config=config
            )
            for index, problem in enumerate(problems)
        ]
        queue.enqueue(items)
        expected = [item["id"] for item in items]

        emitted: set[str] = set()
        journal_cursor = 0

        def emit_new() -> None:
            """Forward newly journaled records to ``progress``.

            The journal is append-only, so a cursor over the parsed
            entries avoids rebuilding every record on every poll;
            records are only deserialized for ids not yet emitted.
            """
            nonlocal journal_cursor
            if progress is None:
                return
            entries = queue.journal_entries()
            for entry in entries[journal_cursor:]:
                item_id = entry.get("id")
                record = (entry.get("payload") or {}).get("record")
                if (
                    record is not None
                    and item_id in expected_set
                    and item_id not in emitted
                ):
                    emitted.add(item_id)
                    progress(ProblemRecord.from_dict(record))
            journal_cursor = len(entries)

        expected_set = set(expected)
        context = multiprocessing.get_context()
        processes: dict[str, multiprocessing.process.BaseProcess] = {}
        spawned = 0

        def spawn_worker() -> None:
            nonlocal spawned
            worker_id = f"local-{spawned}"
            spawned += 1
            process = context.Process(
                target=worker_main,
                args=(str(queue.root),),
                kwargs={
                    "cache_dir": cache_dir,
                    "worker_id": worker_id,
                    "poll_seconds": poll_seconds,
                },
                daemon=False,
            )
            process.start()
            processes[worker_id] = process

        def clamp_to_depth(unfinished: int) -> int:
            return min(max(unfinished, min_workers), max_workers)

        if elastic:
            spawn_budget = max_workers * ELASTIC_RESPAWN_FACTOR
            initial = clamp_to_depth(queue.unfinished()) if queue.unfinished() else 0
            for _ in range(initial):
                spawn_worker()
        else:
            spawn_budget = workers
            for _ in range(workers):
                spawn_worker()

        last_status: dict | None = None

        def emit_fleet() -> None:
            """The coordinator's live tail: one snapshot per state change."""
            nonlocal last_status
            if fleet_status is None:
                return
            counts = queue.counts()
            live = sum(1 for p in processes.values() if p.is_alive())
            snapshot = {"live_workers": live, "spawned_workers": spawned,
                        **counts}
            if snapshot == last_status:
                return
            last_status = dict(snapshot)
            snapshot["workers"] = queue.worker_health()
            fleet_status(snapshot)

        try:
            while any(p.is_alive() for p in processes.values()):
                emit_new()
                emit_fleet()
                if elastic:
                    unfinished = queue.unfinished()
                    target = clamp_to_depth(unfinished)
                    live = [
                        (wid, p) for wid, p in processes.items()
                        if p.is_alive()
                    ]
                    if (
                        unfinished > 0
                        and len(live) < target
                        and spawned < spawn_budget
                    ):
                        spawn_worker()  # one per tick: a gentle ramp
                    elif len(live) > target:
                        # Retire the newest worker.  terminate() is
                        # SIGTERM, which the worker handles gracefully:
                        # it finishes its current item, releases the
                        # rest of its claims, and exits 0.
                        live[-1][1].terminate()
                time.sleep(poll_seconds)
        finally:
            for process in processes.values():
                process.join()
        emit_fleet()
        worker_ids = set(processes)
        if queue.unfinished() > 0:
            # Some worker died (or third-party claims are stuck): take
            # back our dead workers' claims and finish here, inline.
            _reclaim_dead(queue, worker_ids)
            Worker(
                queue,
                worker_id="coordinator-inline",
                cache_dir=cache_dir,
                poll_seconds=poll_seconds,
            ).run()
        journaled = records_from_journal(queue)
        records: list["ProblemRecord"] = []
        for item in items:
            record = journaled.get(item["id"])
            if record is None:
                record = ProblemRecord(
                    name=item["name"],
                    status=STATUS_ERROR,
                    error="item was never journaled (worker failure?)",
                )
            records.append(record)
            # Every returned record reaches the progress callback
            # exactly once — including synthetic never-journaled error
            # records, which emit_new (journal-driven) cannot see.
            if progress is not None and item["id"] not in emitted:
                emitted.add(item["id"])
                progress(record)
        return records
    finally:
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)
