"""``python -m repro queue-server`` — serve a queue directory over HTTP.

A deliberately thin object-store endpoint: each request executes one
:class:`~repro.dist.transport.LocalDirTransport` verb against the
served queue directory, so every atomicity guarantee the queue relies
on (rename gates, the flock'd journal) holds on the server's
filesystem no matter how many remote followers are connected — the
server adds no state of its own and can be restarted freely.

Routes (the :class:`~repro.dist.transport.HttpTransport` client):

* ``GET  /q/<path>``              → object bytes (404 if absent)
* ``PUT  /q/<path>``              → atomic write
* ``POST /v1/rename``             → ``{"ok": bool}``   (atomic move)
* ``POST /v1/touch``              → ``{"ok": bool}``   (lease renew)
* ``POST /v1/delete``             → ``{"ok": bool}``
* ``POST /v1/exists``             → ``{"ok": bool}``
* ``POST /v1/scan``               → ``{"now": ..., "entries": [[name, mtime], ...]}``
* ``GET  /v1/journal``            → raw journal bytes
* ``POST /v1/journal/append``     → ``{"appended": bool}`` (locked, deduped)
* ``POST /v1/journal/truncate``   → ``{"ok": true}``
* ``GET  /v1/stats``              → counts + meta + per-worker health

Only queue-shaped paths are accepted (``meta.json`` and
``pending|claimed|done|health/<name>.json``), so a follower can never
read or write outside the served directory.
"""

from __future__ import annotations

import json
import re
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.dist.queue import WorkQueue
from repro.dist.transport import LocalDirTransport, TransportNotFound

DEFAULT_HOST = "127.0.0.1"

_SAFE_NAME = r"(?!\.)[^/]+\.json"
_OBJECT_PATH = re.compile(
    rf"^(meta\.json|(pending|claimed|done|health)/{_SAFE_NAME})$"
)
_SAFE_DIR = re.compile(r"^(pending|claimed|done|health)$")


def _valid_object(path: str) -> bool:
    return bool(_OBJECT_PATH.match(path)) and ".." not in path


class QueueRequestHandler(BaseHTTPRequestHandler):
    """One HTTP request → one transport verb; see the module docstring."""

    # Set by serve_queue() on the handler class.
    transport: LocalDirTransport
    queue: WorkQueue
    verbose: bool = False

    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.verbose:  # pragma: no cover - debugging aid
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        self._send(status, json.dumps(payload).encode("utf-8"))

    def _fail(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _object_path(self) -> str | None:
        """The validated queue-relative path of a ``/q/...`` URL."""
        raw = urllib.parse.unquote(self.path[len("/q/"):])
        return raw if _valid_object(raw) else None

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _body_json(self) -> dict | None:
        try:
            payload = json.loads(self._read_body().decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    # -- verbs -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path.startswith("/q/"):
                path = self._object_path()
                if path is None:
                    return self._fail(400, f"invalid object path {self.path!r}")
                try:
                    return self._send(200, self.transport.read(path))
                except TransportNotFound:
                    return self._fail(404, f"no object {path!r}")
            if self.path == "/v1/journal":
                return self._send(
                    200, self.transport.journal_read(),
                    content_type="application/x-ndjson",
                )
            if self.path == "/v1/stats":
                return self._send_json(
                    {
                        "queue_dir": self.transport.describe(),
                        # Re-read every time: a coordinator may refresh
                        # meta.json while this server keeps running.
                        "meta": self.queue._read_meta() or {},
                        "counts": self.queue.counts(),
                        "workers": self.queue.worker_health(),
                    }
                )
            return self._fail(404, f"unknown endpoint {self.path!r}")
        except Exception as exc:  # noqa: BLE001 — a 500 beats a hung follower
            self._fail(500, f"{type(exc).__name__}: {exc}")

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        try:
            if not self.path.startswith("/q/"):
                return self._fail(404, f"unknown endpoint {self.path!r}")
            path = self._object_path()
            if path is None:
                return self._fail(400, f"invalid object path {self.path!r}")
            self.transport.write(path, self._read_body())
            return self._send_json({"ok": True})
        except Exception as exc:  # noqa: BLE001
            self._fail(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            body = self._body_json()
            if body is None:
                return self._fail(400, "request body must be a JSON object")
            if self.path == "/v1/rename":
                src, dst = body.get("src", ""), body.get("dst", "")
                if not (_valid_object(src) and _valid_object(dst)):
                    return self._fail(400, f"invalid rename {src!r} -> {dst!r}")
                return self._send_json({"ok": self.transport.rename(src, dst)})
            if self.path == "/v1/touch":
                path = body.get("path", "")
                if not _valid_object(path):
                    return self._fail(400, f"invalid object path {path!r}")
                return self._send_json({"ok": self.transport.touch(path)})
            if self.path == "/v1/delete":
                path = body.get("path", "")
                if not _valid_object(path):
                    return self._fail(400, f"invalid object path {path!r}")
                return self._send_json({"ok": self.transport.delete(path)})
            if self.path == "/v1/exists":
                path = body.get("path", "")
                if not _valid_object(path):
                    return self._fail(400, f"invalid object path {path!r}")
                return self._send_json({"ok": self.transport.exists(path)})
            if self.path == "/v1/scan":
                directory = body.get("dir", "")
                if not _SAFE_DIR.match(directory):
                    return self._fail(400, f"invalid directory {directory!r}")
                now, entries = self.transport.scan(directory)
                return self._send_json(
                    {"now": now, "entries": [[n, m] for n, m in entries]}
                )
            if self.path == "/v1/journal/append":
                line, needle = body.get("line"), body.get("needle")
                if not isinstance(line, str) or not isinstance(needle, str):
                    return self._fail(400, "need string 'line' and 'needle'")
                appended = self.transport.journal_append(
                    line.encode("utf-8"), needle.encode("utf-8")
                )
                return self._send_json({"appended": appended})
            if self.path == "/v1/journal/truncate":
                try:
                    offset = int(body["offset"])
                    expected = int(body["expected_size"])
                except (KeyError, TypeError, ValueError):
                    return self._fail(
                        400, "need integer 'offset' and 'expected_size'"
                    )
                self.transport.journal_truncate(offset, expected)
                return self._send_json({"ok": True})
            return self._fail(404, f"unknown endpoint {self.path!r}")
        except Exception as exc:  # noqa: BLE001
            self._fail(500, f"{type(exc).__name__}: {exc}")


def serve_queue(
    queue_dir: str,
    host: str = DEFAULT_HOST,
    port: int = 0,
    *,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build a ready-to-run queue server (call ``serve_forever`` on it).

    The queue directory's layout is created if missing (so a server can
    be started before the first ``enqueue``), but ``meta.json`` is not:
    writing the run settings is the enqueuer's job.  ``port=0`` binds
    an ephemeral port; read it back from ``server.server_address``.
    """
    transport = LocalDirTransport(queue_dir)
    transport.ensure_layout()

    class Handler(QueueRequestHandler):
        pass

    Handler.transport = transport
    Handler.queue = WorkQueue(transport=transport)
    Handler.verbose = verbose
    server = ThreadingHTTPServer((host, port), Handler)
    server.daemon_threads = True
    return server
