"""The distributed worker: claim → solve → ack, until the queue drains.

A worker owns one :class:`~repro.api.service.InvariantService` for its
whole life, so every claim batch shares the same bounded trace cache —
and when the queue's coordinator supplied a ``cache_dir``, every worker
process spills to the *same* on-disk store (the spill writes are
``mkstemp`` + atomic-rename, so concurrent workers are safe; see PR 3).

The queue's ``meta.json`` is authoritative for *how* to solve (solver,
config, per-problem timeout, cross-batch width): every worker reads the
same settings, which is what makes a two-worker drain equivalent to a
sequential run.  Workers only choose *scheduling* knobs: how many items
to claim per batch and how often to poll.

A worker exits when the queue is fully drained (nothing pending or
claimed).  While other workers still hold claims it waits — if one of
them crashed, the lease expires and the item comes back to pending,
so a surviving worker finishes the suite.

Shutdown is graceful: ``SIGTERM`` (the entry points install a handler;
embedders call :meth:`Worker.request_stop`) finishes and acks the item
being solved, voluntarily releases every still-unstarted claim back to
``pending``, and returns normally (exit 0).  A drain resumed after a
graceful stop therefore never waits out a lease — only a *crashed*
worker (SIGKILL, OOM) leaves claims behind for lease expiry to reap.
"""

from __future__ import annotations

import os
import signal
import socket
import time
import uuid
from typing import Callable

from repro.api.service import InvariantService
from repro.dist.queue import WorkItem, WorkQueue
from repro.dist.wire import config_from_dict, resolve_item_problem
from repro.infer.runner import STATUS_ERROR, ProblemRecord

DEFAULT_POLL_SECONDS = 0.5

#: How often a worker publishes its vitals to the queue's ``health/``
#: directory (best-effort; beats never block or fail the solve loop).
DEFAULT_HEARTBEAT_SECONDS = 5.0


def default_worker_id() -> str:
    """A human-traceable unique id: host, pid, and a random suffix."""
    return (
        f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    )


class Worker:
    """One worker process draining one queue.

    Args:
        queue: the queue to drain (or a path to one).
        worker_id: identity recorded on claims and journal lines.
        cache_dir: on-disk trace-cache spill shared with other workers.
        batch_size: items claimed per round; defaults to the queue's
            ``cross_batch`` width (so cross-problem training batches
            form naturally within a claim) or 1.
        poll_seconds: sleep between claim attempts while other workers
            still hold items.
        progress: called with each finished :class:`ProblemRecord`.
        heartbeat_seconds: cadence of the per-worker health file
            (``health/<worker>.json``: pid, host, items done, last-ack
            age); ``0`` disables heartbeats entirely.
    """

    def __init__(
        self,
        queue: WorkQueue | str,
        *,
        worker_id: str | None = None,
        cache_dir: str | None = None,
        batch_size: int | None = None,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
        progress: Callable[[ProblemRecord], None] | None = None,
        heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
    ):
        self.queue = queue if isinstance(queue, WorkQueue) else WorkQueue.open(queue)
        self.worker_id = worker_id or default_worker_id()
        self.poll_seconds = poll_seconds
        self.progress = progress
        self.heartbeat_seconds = heartbeat_seconds
        self._items_done = 0
        self._last_ack_at: float | None = None
        self._started_at = time.time()
        self._last_beat = float("-inf")
        self._stop_requested = False
        meta = self.queue.meta
        self.solver = meta.get("solver", "gcln")
        self.timeout_seconds = meta.get("timeout_seconds")
        self.cross_batch = int(meta.get("cross_batch", 1) or 1)
        if batch_size is None:
            batch_size = self.cross_batch if self.cross_batch > 1 else 1
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        config_data = meta.get("config")
        config = (
            config_from_dict(config_data) if config_data is not None else None
        )
        self.service = InvariantService(config, cache_dir=cache_dir)

    def request_stop(self) -> None:
        """Ask the worker to stop gracefully (signal-handler safe).

        The item currently being solved is finished and acked; every
        other claim this worker still holds is released back to
        ``pending``; :meth:`run` then returns normally.
        """
        self._stop_requested = True

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    def beat(self, *, force: bool = False, exited: bool = False) -> None:
        """Publish this worker's vitals to the queue (best-effort).

        Throttled to :attr:`heartbeat_seconds`; never raises — a queue
        that cannot take heartbeats (transport blip) must not stop the
        solve loop, and liveness just degrades to lease expiry.
        """
        if self.heartbeat_seconds <= 0:
            return
        now = time.monotonic()
        if not force and now - self._last_beat < self.heartbeat_seconds:
            return
        self._last_beat = now
        wall = time.time()
        try:
            self.queue.heartbeat(
                self.worker_id,
                {
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                    "started_at": self._started_at,
                    "items_done": self._items_done,
                    "last_ack_age": (
                        wall - self._last_ack_at
                        if self._last_ack_at is not None
                        else None
                    ),
                    "exited": exited,
                },
            )
        except Exception:  # noqa: BLE001 — heartbeats are advisory
            pass

    def run(self, max_items: int | None = None) -> int:
        """Drain the queue; returns the number of items this worker acked.

        Stops when the queue is empty (pending *and* claimed), after
        ``max_items``, or when :meth:`request_stop` was called.  While
        other workers hold claims, waits for them to finish or for
        their leases to expire.
        """
        processed = 0
        self.beat(force=True)
        try:
            while max_items is None or processed < max_items:
                if self._stop_requested:
                    break
                self.beat()
                limit = self.batch_size
                if max_items is not None:
                    limit = min(limit, max_items - processed)
                batch = self.queue.claim(self.worker_id, limit=limit)
                if not batch:
                    if self.queue.unfinished() == 0 or self._stop_requested:
                        break
                    time.sleep(self.poll_seconds)
                    continue
                processed += self._process(batch)
        finally:
            # The final beat marks a *clean* exit; a crashed worker
            # never reaches it and shows up as "stale" instead.
            self.beat(force=True, exited=True)
        return processed

    def _process(self, batch: list[WorkItem]) -> int:
        """Solve one claim batch; returns the number of items acked.

        Items that cannot even be resolved are acked as error records.
        After a stop request, still-unstarted items are released back
        to ``pending`` instead of solved (stacked cross-problem batches
        are indivisible, so those finish whole).
        """
        problems = []
        resolved: list[WorkItem] = []
        acked = 0
        for item in batch:
            try:
                problems.append(resolve_item_problem(item.data))
                resolved.append(item)
            except Exception as exc:  # noqa: BLE001 — a bad item must not wedge the queue
                self._ack(
                    item,
                    ProblemRecord(
                        name=item.data.get("name", item.id),
                        status=STATUS_ERROR,
                        error=f"cannot resolve queue item: {exc}",
                    ),
                )
                acked += 1
        if not resolved:
            return acked

        def renew_leases(_record: ProblemRecord) -> None:
            # A finished problem proves this worker is alive; stretch
            # the lease on everything still held for this batch.
            for item in resolved:
                self.queue.renew(item.id)

        cross = (
            self.cross_batch
            if len(resolved) > 1 and self.solver == "gcln"
            else 1
        )
        if cross <= 1:
            # Without stacked training the batch is divisible: solve
            # one item at a time so a stop request between items hands
            # the rest of the claim straight back to pending (no
            # lease-expiry wait for whoever resumes the drain).
            for position, (item, problem) in enumerate(
                zip(resolved, problems)
            ):
                if self._stop_requested:
                    for leftover in resolved[position:]:
                        self.queue.release(leftover.id)
                    return acked
                records = self.service.solve_many(
                    [problem],
                    solver=self.solver,
                    timeout_seconds=self.timeout_seconds,
                    progress=renew_leases,
                )
                self._ack(item, records[0])
                acked += 1
            return acked
        records = self.service.solve_many(
            problems,
            solver=self.solver,
            timeout_seconds=self.timeout_seconds,
            progress=renew_leases,
            cross_batch=min(cross, len(resolved)),
        )
        for item, record in zip(resolved, records):
            self._ack(item, record)
            acked += 1
        return acked

    def _ack(self, item: WorkItem, record: ProblemRecord) -> None:
        self.queue.ack(
            item.id,
            {"index": item.data.get("index"), "record": record.to_dict()},
            worker=self.worker_id,
        )
        self._items_done += 1
        self._last_ack_at = time.time()
        self.beat()
        if self.progress is not None:
            self.progress(record)


def install_stop_handler(worker: Worker) -> bool:
    """Route ``SIGTERM`` to ``worker.request_stop()``.

    Returns False (and installs nothing) off the main thread, where
    CPython forbids ``signal.signal`` — embedders there call
    :meth:`Worker.request_stop` directly.
    """
    try:
        signal.signal(
            signal.SIGTERM, lambda _signum, _frame: worker.request_stop()
        )
        return True
    except ValueError:
        return False


def worker_main(
    queue_dir: str,
    cache_dir: str | None = None,
    worker_id: str | None = None,
    batch_size: int | None = None,
    max_items: int | None = None,
    poll_seconds: float = DEFAULT_POLL_SECONDS,
    heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
) -> int:
    """Module-level worker entry point (used as a process target).

    ``queue_dir`` may be a local directory or an ``http(s)://`` queue
    server URL — a remote follower is the same loop over a different
    transport.
    """
    worker = Worker(
        WorkQueue.open(queue_dir),
        worker_id=worker_id,
        cache_dir=cache_dir,
        batch_size=batch_size,
        poll_seconds=poll_seconds,
        heartbeat_seconds=heartbeat_seconds,
    )
    install_stop_handler(worker)
    return worker.run(max_items=max_items)
