"""Transport-backed, journaled work queue.

One queue is one directory — local, or served over HTTP by
``python -m repro queue-server``.  Every mutation is an atomic
operation of the underlying :class:`~repro.dist.transport.Transport`,
so any number of worker processes (or hosts, with no shared filesystem
at all) can claim from the same queue without a broker:

```
queue-dir/
├── meta.json        run-wide settings (solver, config, lease, ...)
├── pending/         one <item-id>.json per unclaimed item
├── claimed/         items leased to a worker (mtime = lease stamp)
├── done/            acked items (kept as idempotency markers)
├── health/          per-worker heartbeat files (mtime = last beat)
└── journal.jsonl    append-only finished-record log
```

* **enqueue** writes ``pending/<id>.json`` atomically and skips ids
  that are already anywhere in the queue or the journal —
  re-enqueueing a half-finished suite is a no-op for the finished
  part, which is what makes coordinator resume free.
* **claim** renames ``pending/X`` → ``claimed/X``; the rename is atomic,
  so exactly one of several racing workers wins each item.  The claimed
  file's mtime is the lease stamp: a worker renews it by touching the
  file, and any claim call first *reaps* expired leases back to
  ``pending/`` so items held by crashed workers are re-run.  Expiry is
  computed against the *transport's* clock (one ``scan`` returns the
  stamps and "now" together), so a remote follower with a skewed clock
  never mis-reaps.
* **ack** atomically renames the item's queue file onto ``done/X`` —
  of any number of racing ackers (possible after lease-expiry
  re-claims), exactly one rename wins — then appends the finished
  payload to ``journal.jsonl`` under the transport's journal lock.
  The journal itself dedups by item id, so acks are idempotent even
  when a transport retry re-delivers one (and a loser whose winner
  crashed before journaling heals the gap by appending its own line).
* **journal** writes and reads both tolerate a crash mid-append: a
  partial *trailing* line is truncated away (by the next appender
  under the lock, or by a reader), never fatal; corruption anywhere
  else raises, because that means something other than a mid-write
  crash damaged the log.
* **heartbeat** writes ``health/<worker>.json`` with the worker's
  vitals; the file's transport mtime is the beat clock, so staleness
  is judged on the queue host, not the (possibly skewed) worker.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass
from pathlib import Path

from repro.dist.transport import (
    LocalDirTransport,
    Transport,
    TransportNotFound,
    transport_for,
)
from repro.errors import ReproError

DEFAULT_LEASE_SECONDS = 300.0

#: A heartbeat older than this many seconds marks the worker "stale"
#: (likely dead; its claims will come back via lease expiry).
DEFAULT_STALE_SECONDS = 30.0

_META = "meta.json"
_JOURNAL = "journal.jsonl"

_UNSAFE_ID_CHARS = re.compile(r"[^A-Za-z0-9._-]+")


class QueueError(ReproError):
    """A work-queue operation failed or the queue is malformed."""


@dataclass(frozen=True)
class WorkItem:
    """One claimed queue item: the id plus the enqueued JSON payload."""

    id: str
    data: dict


def _dump(payload: dict) -> bytes:
    return json.dumps(payload).encode("utf-8")


def sanitize_worker_id(worker_id: str) -> str:
    """A worker id reduced to a safe ``health/`` file stem."""
    safe = _UNSAFE_ID_CHARS.sub("-", worker_id).lstrip(".")
    return safe or "worker"


class WorkQueue:
    """A queue handle over a transport; see the module docstring.

    ``root`` may be a local directory path or an ``http(s)://`` queue
    server URL (:func:`~repro.dist.transport.transport_for` picks the
    transport); pass ``transport=`` to inject a wrapped one.  For local
    queues the PR 5 path attributes (``pending_dir`` etc.) remain real
    paths; on remote transports they are ``None``.
    """

    def __init__(
        self,
        root: "str | Path | None" = None,
        *,
        transport: Transport | None = None,
    ):
        if transport is None:
            if root is None:
                raise QueueError("WorkQueue needs a root path/URL or a transport")
            transport = transport_for(root)
        self.transport = transport
        local = transport
        while not isinstance(local, LocalDirTransport):
            local = getattr(local, "inner", None)
            if local is None:
                break
        if isinstance(local, LocalDirTransport):
            self.root: "Path | str" = local.root
            self.pending_dir: "Path | None" = local.root / "pending"
            self.claimed_dir: "Path | None" = local.root / "claimed"
            self.done_dir: "Path | None" = local.root / "done"
            self.health_dir: "Path | None" = local.root / "health"
            self.journal_path: "Path | None" = local.root / _JOURNAL
            self.meta_path: "Path | None" = local.root / _META
        else:
            self.root = transport.describe()
            self.pending_dir = self.claimed_dir = self.done_dir = None
            self.health_dir = self.journal_path = self.meta_path = None
        self._meta: dict | None = None

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: "str | Path | None" = None,
        *,
        meta: dict | None = None,
        lease_seconds: float | None = None,
        transport: Transport | None = None,
    ) -> "WorkQueue":
        """Create (or re-open) the queue, writing ``meta.json``.

        Re-creating an existing queue keeps its items and journal but
        refreshes the metadata — re-running a coordinator with the same
        settings on a half-finished queue is the resume path.  The
        lease, however, is a property of the *queue*: ``None`` (the
        default) keeps an existing queue's lease instead of resetting
        it, so a resuming coordinator still reaps the original run's
        expired claims on schedule.
        """
        queue = cls(root, transport=transport)
        if lease_seconds is None:
            lease_seconds = DEFAULT_LEASE_SECONDS
            existing = queue._read_meta()
            if existing is not None:
                try:
                    lease_seconds = float(
                        existing.get("lease_seconds", DEFAULT_LEASE_SECONDS)
                    )
                except (TypeError, ValueError):
                    pass
        if lease_seconds <= 0:
            raise QueueError(
                f"lease_seconds must be positive, got {lease_seconds}"
            )
        queue.transport.ensure_layout()
        payload = dict(meta or {})
        payload["lease_seconds"] = float(lease_seconds)
        payload.setdefault("created_at", time.time())
        queue.transport.write(_META, _dump(payload))
        queue._meta = payload
        return queue

    @classmethod
    def open(
        cls,
        root: "str | Path | None" = None,
        *,
        transport: Transport | None = None,
    ) -> "WorkQueue":
        """Open an existing queue; raises if the target is not one."""
        queue = cls(root, transport=transport)
        if queue._read_meta() is None:
            raise QueueError(
                f"{queue.root} is not a work queue (no {_META}); create one "
                "with 'python -m repro enqueue --queue-dir ...'"
            )
        return queue

    def _read_meta(self) -> dict | None:
        """Parsed ``meta.json``, or ``None`` if absent/corrupt."""
        try:
            return json.loads(self.transport.read(_META).decode("utf-8"))
        except TransportNotFound:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None

    @property
    def meta(self) -> dict:
        if self._meta is None:
            try:
                raw = self.transport.read(_META)
            except TransportNotFound as exc:
                raise QueueError(f"{self.root} has no {_META}") from exc
            try:
                self._meta = json.loads(raw.decode("utf-8"))
            except json.JSONDecodeError as exc:
                raise QueueError(
                    f"corrupt {_META} in {self.root}: {exc}"
                ) from exc
        return self._meta

    @property
    def lease_seconds(self) -> float:
        return float(self.meta.get("lease_seconds", DEFAULT_LEASE_SECONDS))

    # -- enqueue ---------------------------------------------------------------

    def enqueue(self, items: list[dict]) -> tuple[int, int]:
        """Add items (each needs a unique ``"id"``); returns (new, skipped).

        An item whose id is already pending, claimed, or journaled is
        skipped, so enqueueing is idempotent and resume never re-runs
        finished work.  A ``done/`` marker *without* a journal entry
        (a worker crashed between winning the ack and appending) does
        NOT block re-enqueueing: the item is re-run, and the fresh ack
        atomically replaces the stale marker.
        """
        seen = self.known_ids()
        added = skipped = 0
        for item in items:
            item_id = item.get("id")
            if not item_id or not isinstance(item_id, str):
                raise QueueError(f"queue item needs a string 'id': {item!r}")
            if "/" in item_id or item_id.startswith("."):
                raise QueueError(f"invalid item id {item_id!r}")
            if item_id in seen:
                skipped += 1
                continue
            self.transport.write(f"pending/{item_id}.json", _dump(item))
            seen.add(item_id)
            added += 1
        return added, skipped

    # -- claim / lease ---------------------------------------------------------

    def claim(self, worker: str, limit: int = 1) -> list[WorkItem]:
        """Claim up to ``limit`` items for ``worker``.

        Expired leases are reaped first, so a crashed worker's items
        come back automatically.  Racing workers are safe: the
        pending→claimed rename is atomic and the loser just moves on to
        the next file.
        """
        if limit < 1:
            raise QueueError(f"claim limit must be >= 1, got {limit}")
        self.reap_expired()
        claimed: list[WorkItem] = []
        for name in self.transport.listdir("pending"):
            if len(claimed) >= limit:
                break
            target = f"claimed/{name}"
            if not self.transport.rename(f"pending/{name}", target):
                continue  # another worker won this item
            # Start the lease clock now: the rename kept the file's
            # pending-era mtime, and an item that waited longer than
            # the lease would otherwise look instantly expired to a
            # concurrent reaper.  That reaper can still win the
            # microscopic window before this stamp — then the file is
            # already back in pending and we just lost the race.
            self.transport.touch(target)
            try:
                data = json.loads(self.transport.read(target).decode("utf-8"))
            except TransportNotFound:
                continue  # reaped out from under us; someone else's now
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise QueueError(
                    f"corrupt queue item {target} in {self.root}: {exc}"
                ) from exc
            data["claimed_by"] = worker
            data["claimed_at"] = time.time()
            self.transport.write(target, _dump(data))  # also re-stamps the lease
            claimed.append(WorkItem(id=name[: -len(".json")], data=data))
        return claimed

    def renew(self, item_id: str) -> bool:
        """Extend the lease on a claimed item; False if no longer held."""
        return self.transport.touch(f"claimed/{item_id}.json")

    def release(self, item_id: str) -> bool:
        """Voluntarily return a claimed item to pending (e.g. shutdown)."""
        return self.transport.rename(
            f"claimed/{item_id}.json", f"pending/{item_id}.json"
        )

    def reap_expired(self) -> int:
        """Move claims whose lease expired back to pending; returns count.

        Stamps and "now" come from one transport ``scan``, so expiry is
        judged entirely on the queue host's clock.
        """
        now, stamps = self.transport.scan("claimed")
        deadline = now - self.lease_seconds
        reaped = 0
        for name, mtime in stamps:
            if mtime >= deadline:
                continue
            if self.transport.rename(f"claimed/{name}", f"pending/{name}"):
                reaped += 1
        return reaped

    # -- ack / journal ---------------------------------------------------------

    def ack(self, item_id: str, payload: dict, worker: str = "") -> bool:
        """Record a finished item: mark it done, journal the payload.

        The gate is an atomic rename of the item's queue file onto the
        ``done/`` marker, so of any number of racing ackers — e.g.
        after a lease expired mid-solve and a second worker finished
        the re-claimed item — exactly one rename wins.  The journal
        appends are idempotent on top of that (one line per id, ever),
        which covers the two gaps a rename gate alone leaves: a
        transport retry that re-delivers a rename that already
        happened, and a winner that crashed after renaming but before
        journaling (the "loser" then heals the journal with its own,
        equally valid record).  Returns True if *this call* journaled.
        """
        done_marker = f"done/{item_id}.json"
        marker_present = False
        # The common case: we still hold the claim.  If another worker
        # re-claimed the item after our lease expired, this takes
        # *their* claim file — fine: their later ack then finds no file
        # and an existing marker, and dedups in the journal.
        if not self.transport.rename(f"claimed/{item_id}.json", done_marker):
            if self.transport.exists(done_marker):
                marker_present = True
            elif not self.transport.rename(
                f"pending/{item_id}.json", done_marker
            ):
                # Not claimed, not done, not pending: the item does not
                # exist here at all — nothing to journal against.
                return False
        if marker_present and item_id in self.journaled_ids():
            return False  # someone already acked *and* journaled this item
        return self._append_journal(
            {
                # "id" first: the journal dedup scan keys on the exact
                # line prefix this ordering produces.
                "id": item_id,
                "worker": worker,
                "finished_at": time.time(),
                "payload": payload,
            }
        )

    def _append_journal(self, line: dict) -> bool:
        data = (json.dumps(line, separators=(",", ":")) + "\n").encode("utf-8")
        # Every line starts {"id":"<id>", — the dict is built id-first
        # and compact — so a prefix scan is an exact id-dedup key.
        needle = (
            b'{"id":' + json.dumps(line["id"]).encode("utf-8") + b","
        )
        return self.transport.journal_append(data, needle)

    def journal_entries(self, repair: bool = True) -> list[dict]:
        """Parsed journal lines, oldest first.

        A corrupted *trailing* line (a worker died mid-append) is
        dropped — and with ``repair`` truncated from the file — because
        its item is still claimed/pending and will be re-run.  Corrupt
        lines elsewhere raise: that is damage, not a crash artifact.
        """
        raw = self.transport.journal_read()
        entries: list[dict] = []
        offset = 0
        for line in raw.splitlines(keepends=True):
            stripped = line.strip()
            if stripped:
                try:
                    entries.append(json.loads(stripped))
                except json.JSONDecodeError as exc:
                    if raw[offset + len(line):].strip():
                        raise QueueError(
                            f"corrupt journal line at byte {offset} of "
                            f"{self.root}/{_JOURNAL}: {exc}"
                        ) from exc
                    if repair:
                        self.transport.journal_truncate(
                            offset, expected_size=len(raw)
                        )
                    break
            offset += len(line)
        return entries

    def journaled_ids(self) -> set[str]:
        return {e["id"] for e in self.journal_entries()}

    # -- worker health ---------------------------------------------------------

    def heartbeat(self, worker_id: str, payload: dict) -> None:
        """Publish a worker's vitals to ``health/``.

        The transport stamps the file's mtime on write, so "how long
        since this worker last beat" is measured on the queue host —
        workers never need synchronized clocks.
        """
        body = dict(payload)
        body["worker"] = worker_id
        self.transport.write(
            f"health/{sanitize_worker_id(worker_id)}.json", _dump(body)
        )

    def worker_health(
        self, stale_after_seconds: float = DEFAULT_STALE_SECONDS
    ) -> list[dict]:
        """Every worker that ever beat on this queue, with liveness.

        Each entry is the worker's last heartbeat payload plus
        ``age_seconds`` (since that beat, on the queue host's clock)
        and ``state``: ``"exited"`` (clean shutdown), ``"live"``, or
        ``"stale"`` (no beat for ``stale_after_seconds`` — the worker
        is probably dead and its claims will come back via the lease).
        """
        now, stamps = self.transport.scan("health")
        fleet: list[dict] = []
        for name, mtime in stamps:
            try:
                entry = json.loads(
                    self.transport.read(f"health/{name}").decode("utf-8")
                )
            except (TransportNotFound, json.JSONDecodeError,
                    UnicodeDecodeError):
                continue
            age = max(0.0, now - mtime)
            entry["age_seconds"] = age
            if entry.get("exited"):
                entry["state"] = "exited"
            elif age > stale_after_seconds:
                entry["state"] = "stale"
            else:
                entry["state"] = "live"
            fleet.append(entry)
        return fleet

    # -- introspection ---------------------------------------------------------

    def known_ids(self) -> set[str]:
        """Ids that count as present for enqueue dedup.

        Deliberately excludes ``done/``-only ids: a marker without a
        journal entry is a crash artifact (the worker died mid-ack) and
        the item's record is lost, so it must be re-runnable.
        """
        ids = self.journaled_ids()
        for directory in ("pending", "claimed"):
            ids.update(
                name[: -len(".json")]
                for name in self.transport.listdir(directory)
            )
        return ids

    def counts(self) -> dict[str, int]:
        return {
            "pending": len(self.transport.listdir("pending")),
            "claimed": len(self.transport.listdir("claimed")),
            "done": len(self.transport.listdir("done")),
            "journaled": len(self.journal_entries()),
        }

    def unfinished(self) -> int:
        """Items still pending or claimed (0 = fully drained)."""
        return (
            len(self.transport.listdir("pending"))
            + len(self.transport.listdir("claimed"))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkQueue({str(self.root)!r}, {self.counts()})"
