"""Filesystem-backed, journaled work queue.

One queue is one directory.  Every mutation is an atomic filesystem
operation, so any number of worker processes (or hosts, over a shared
filesystem) can claim from the same queue without a broker:

```
queue-dir/
├── meta.json        run-wide settings (solver, config, lease, ...)
├── pending/         one <item-id>.json per unclaimed item
├── claimed/         items leased to a worker (mtime = lease stamp)
├── done/            acked items (kept as idempotency markers)
└── journal.jsonl    append-only finished-record log
```

* **enqueue** writes ``pending/<id>.json`` via ``mkstemp`` +
  ``os.replace`` and skips ids that are already anywhere in the queue
  or the journal — re-enqueueing a half-finished suite is a no-op for
  the finished part, which is what makes coordinator resume free.
* **claim** renames ``pending/X`` → ``claimed/X``; the rename is atomic,
  so exactly one of several racing workers wins each item.  The claimed
  file's mtime is the lease stamp: a worker renews it by touching the
  file, and any claim call first *reaps* expired leases back to
  ``pending/`` so items held by crashed workers are re-run.
* **ack** atomically renames the item's queue file onto ``done/X`` —
  of any number of racing ackers (possible after lease-expiry
  re-claims), exactly one rename wins — then the winner appends the
  finished payload to ``journal.jsonl`` under an advisory ``flock``.
  Losers and repeats are no-ops, so acks are idempotent.
* **journal** writes and reads both tolerate a crash mid-append: a
  partial *trailing* line is truncated away (by the next appender
  under the lock, or by a reader), never fatal; corruption anywhere
  else raises, because that means something other than a mid-write
  crash damaged the log.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError

try:  # POSIX only; on other platforms journal appends go unlocked.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

DEFAULT_LEASE_SECONDS = 300.0

_META = "meta.json"
_JOURNAL = "journal.jsonl"
_TMP_PREFIX = ".tmp-"


class QueueError(ReproError):
    """A work-queue operation failed or the queue is malformed."""


@dataclass(frozen=True)
class WorkItem:
    """One claimed queue item: the id plus the enqueued JSON payload."""

    id: str
    data: dict


def _atomic_write_json(path: Path, payload: dict) -> None:
    fd, tmp = tempfile.mkstemp(
        prefix=_TMP_PREFIX, suffix=".json", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise


def _item_files(directory: Path) -> list[Path]:
    try:
        entries = list(os.scandir(directory))
    except FileNotFoundError:
        return []
    return sorted(
        (Path(e.path) for e in entries
         if e.name.endswith(".json") and not e.name.startswith(".")),
        key=lambda p: p.name,
    )


class WorkQueue:
    """A queue directory handle; see the module docstring for layout."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.pending_dir = self.root / "pending"
        self.claimed_dir = self.root / "claimed"
        self.done_dir = self.root / "done"
        self.journal_path = self.root / _JOURNAL
        self.meta_path = self.root / _META
        self._meta: dict | None = None

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: str | Path,
        *,
        meta: dict | None = None,
        lease_seconds: float | None = None,
    ) -> "WorkQueue":
        """Create (or re-open) the queue directory, writing ``meta.json``.

        Re-creating an existing queue keeps its items and journal but
        refreshes the metadata — re-running a coordinator with the same
        settings on a half-finished queue is the resume path.  The
        lease, however, is a property of the *queue*: ``None`` (the
        default) keeps an existing queue's lease instead of resetting
        it, so a resuming coordinator still reaps the original run's
        expired claims on schedule.
        """
        queue = cls(root)
        if lease_seconds is None:
            lease_seconds = DEFAULT_LEASE_SECONDS
            if queue.meta_path.is_file():
                try:
                    existing = json.loads(
                        queue.meta_path.read_text(encoding="utf-8")
                    )
                    lease_seconds = float(
                        existing.get("lease_seconds", DEFAULT_LEASE_SECONDS)
                    )
                except (json.JSONDecodeError, TypeError, ValueError):
                    pass
        if lease_seconds <= 0:
            raise QueueError(
                f"lease_seconds must be positive, got {lease_seconds}"
            )
        for directory in (
            queue.root, queue.pending_dir, queue.claimed_dir, queue.done_dir
        ):
            directory.mkdir(parents=True, exist_ok=True)
        payload = dict(meta or {})
        payload["lease_seconds"] = float(lease_seconds)
        payload.setdefault("created_at", time.time())
        _atomic_write_json(queue.meta_path, payload)
        queue._meta = payload
        return queue

    @classmethod
    def open(cls, root: str | Path) -> "WorkQueue":
        """Open an existing queue; raises if ``root`` is not one."""
        queue = cls(root)
        if not queue.meta_path.is_file():
            raise QueueError(
                f"{root} is not a work queue (no {_META}); create one with "
                "'python -m repro enqueue --queue-dir ...'"
            )
        return queue

    @property
    def meta(self) -> dict:
        if self._meta is None:
            try:
                self._meta = json.loads(
                    self.meta_path.read_text(encoding="utf-8")
                )
            except FileNotFoundError as exc:
                raise QueueError(f"{self.root} has no {_META}") from exc
            except json.JSONDecodeError as exc:
                raise QueueError(f"corrupt {self.meta_path}: {exc}") from exc
        return self._meta

    @property
    def lease_seconds(self) -> float:
        return float(self.meta.get("lease_seconds", DEFAULT_LEASE_SECONDS))

    # -- enqueue ---------------------------------------------------------------

    def enqueue(self, items: list[dict]) -> tuple[int, int]:
        """Add items (each needs a unique ``"id"``); returns (new, skipped).

        An item whose id is already pending, claimed, or journaled is
        skipped, so enqueueing is idempotent and resume never re-runs
        finished work.  A ``done/`` marker *without* a journal entry
        (a worker crashed between winning the ack and appending) does
        NOT block re-enqueueing: the item is re-run, and the fresh ack
        atomically replaces the stale marker.
        """
        seen = self.known_ids()
        added = skipped = 0
        for item in items:
            item_id = item.get("id")
            if not item_id or not isinstance(item_id, str):
                raise QueueError(f"queue item needs a string 'id': {item!r}")
            if "/" in item_id or item_id.startswith("."):
                raise QueueError(f"invalid item id {item_id!r}")
            if item_id in seen:
                skipped += 1
                continue
            _atomic_write_json(self.pending_dir / f"{item_id}.json", item)
            seen.add(item_id)
            added += 1
        return added, skipped

    # -- claim / lease ---------------------------------------------------------

    def claim(self, worker: str, limit: int = 1) -> list[WorkItem]:
        """Claim up to ``limit`` items for ``worker``.

        Expired leases are reaped first, so a crashed worker's items
        come back automatically.  Racing workers are safe: the
        pending→claimed rename is atomic and the loser just moves on to
        the next file.
        """
        if limit < 1:
            raise QueueError(f"claim limit must be >= 1, got {limit}")
        self.reap_expired()
        claimed: list[WorkItem] = []
        for path in _item_files(self.pending_dir):
            if len(claimed) >= limit:
                break
            target = self.claimed_dir / path.name
            try:
                os.rename(path, target)
            except FileNotFoundError:
                continue  # another worker won this item
            try:
                # Start the lease clock now: the rename kept the file's
                # pending-era mtime, and an item that waited longer
                # than the lease would otherwise look instantly expired
                # to a concurrent reaper.  That reaper can still win the
                # microscopic window before this stamp — then the file
                # is already back in pending and we just lost the race.
                os.utime(target, None)
                data = json.loads(target.read_text(encoding="utf-8"))
            except FileNotFoundError:
                continue  # reaped out from under us; someone else's now
            except (OSError, json.JSONDecodeError) as exc:
                raise QueueError(f"corrupt queue item {target}: {exc}") from exc
            data["claimed_by"] = worker
            data["claimed_at"] = time.time()
            _atomic_write_json(target, data)  # also stamps the lease mtime
            claimed.append(WorkItem(id=path.stem, data=data))
        return claimed

    def renew(self, item_id: str) -> bool:
        """Extend the lease on a claimed item; False if no longer held."""
        try:
            os.utime(self.claimed_dir / f"{item_id}.json", None)
            return True
        except FileNotFoundError:
            return False

    def release(self, item_id: str) -> bool:
        """Voluntarily return a claimed item to pending (e.g. shutdown)."""
        try:
            os.rename(
                self.claimed_dir / f"{item_id}.json",
                self.pending_dir / f"{item_id}.json",
            )
            return True
        except FileNotFoundError:
            return False

    def reap_expired(self) -> int:
        """Move claims whose lease expired back to pending; returns count."""
        deadline = time.time() - self.lease_seconds
        reaped = 0
        for path in _item_files(self.claimed_dir):
            try:
                expired = path.stat().st_mtime < deadline
            except FileNotFoundError:
                continue
            if not expired:
                continue
            try:
                os.rename(path, self.pending_dir / path.name)
                reaped += 1
            except FileNotFoundError:
                continue  # acked or reaped by someone else meanwhile
        return reaped

    # -- ack / journal ---------------------------------------------------------

    def ack(self, item_id: str, payload: dict, worker: str = "") -> bool:
        """Record a finished item: mark it done, journal the payload.

        Exactly one of any number of racing ackers journals: the gate
        is an atomic rename of the item's queue file onto the ``done/``
        marker, so double-acks — e.g. after a lease expired mid-solve
        and a second worker finished the re-claimed item — are
        idempotent without a lock.  The loser's result is discarded
        (the winner journaled the same item).
        """
        done_marker = self.done_dir / f"{item_id}.json"
        try:
            # The common case: we still hold the claim.  If another
            # worker re-claimed the item after our lease expired, this
            # takes *their* claim file — fine: their later ack then
            # finds no file and an existing marker, and backs off.
            os.rename(self.claimed_dir / f"{item_id}.json", done_marker)
        except FileNotFoundError:
            if done_marker.exists():
                return False  # someone already acked this item
            try:
                # Our claim was reaped back to pending and nobody has
                # re-claimed it yet; the work is done, so take it.
                os.rename(self.pending_dir / f"{item_id}.json", done_marker)
            except FileNotFoundError:
                return False  # lost the race at every step; discard
        return self._append_journal(
            {
                # "id" first: _append_journal's dedup scan keys on the
                # exact line prefix this ordering produces.
                "id": item_id,
                "worker": worker,
                "finished_at": time.time(),
                "payload": payload,
            }
        )

    def _append_journal(self, line: dict) -> bool:
        data = (json.dumps(line, separators=(",", ":")) + "\n").encode("utf-8")
        # Every line starts {"id":"<id>", — the dict is built id-first
        # and compact — so a prefix scan is an exact id-dedup key.
        needle = (
            b'{"id":' + json.dumps(line["id"]).encode("utf-8") + b","
        )
        # "a+b" (not "ab") so the heal/dedup logic below can read.
        with open(self.journal_path, "a+b") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                handle.seek(0)
                existing = handle.read()
                # Self-heal before appending: every complete journal
                # line ends with a newline (written in one call), so a
                # file that doesn't has a torn tail from a crashed
                # appender.  Appending after it would fuse the partial
                # record with ours into permanent mid-file corruption;
                # truncating it instead keeps the tear trailing, where
                # readers already know it means "still claimed, will be
                # re-run".
                if existing and not existing.endswith(b"\n"):
                    keep = existing.rfind(b"\n") + 1
                    handle.truncate(keep)
                    existing = existing[:keep]
                # Last line of duplicate defense: even if two ackers
                # each won a rename on *different* incarnations of the
                # item file (a claim resurrected across a reap race),
                # only one line per id ever lands in the journal.
                index = existing.find(needle)
                while index != -1:
                    if index == 0 or existing[index - 1:index] == b"\n":
                        return False
                    index = existing.find(needle, index + 1)
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
                return True
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def journal_entries(self, repair: bool = True) -> list[dict]:
        """Parsed journal lines, oldest first.

        A corrupted *trailing* line (a worker died mid-append) is
        dropped — and with ``repair`` truncated from the file — because
        its item is still claimed/pending and will be re-run.  Corrupt
        lines elsewhere raise: that is damage, not a crash artifact.
        """
        try:
            raw = self.journal_path.read_bytes()
        except FileNotFoundError:
            return []
        entries: list[dict] = []
        offset = 0
        for line in raw.splitlines(keepends=True):
            stripped = line.strip()
            if stripped:
                try:
                    entries.append(json.loads(stripped))
                except json.JSONDecodeError as exc:
                    if raw[offset + len(line):].strip():
                        raise QueueError(
                            f"corrupt journal line at byte {offset} of "
                            f"{self.journal_path}: {exc}"
                        ) from exc
                    if repair:
                        self._truncate_journal(offset, expected_size=len(raw))
                    break
            offset += len(line)
        return entries

    def _truncate_journal(self, offset: int, expected_size: int) -> None:
        with open(self.journal_path, "r+b") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                # Only repair what we actually read: if another worker
                # appended since, leave the file alone rather than chop
                # off its line (the next reader will deal with it).
                handle.seek(0, os.SEEK_END)
                if handle.tell() == expected_size:
                    handle.truncate(offset)
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def journaled_ids(self) -> set[str]:
        return {e["id"] for e in self.journal_entries()}

    # -- introspection ---------------------------------------------------------

    def known_ids(self) -> set[str]:
        """Ids that count as present for enqueue dedup.

        Deliberately excludes ``done/``-only ids: a marker without a
        journal entry is a crash artifact (the worker died mid-ack) and
        the item's record is lost, so it must be re-runnable.
        """
        ids = self.journaled_ids()
        for directory in (self.pending_dir, self.claimed_dir):
            ids.update(p.stem for p in _item_files(directory))
        return ids

    def counts(self) -> dict[str, int]:
        return {
            "pending": len(_item_files(self.pending_dir)),
            "claimed": len(_item_files(self.claimed_dir)),
            "done": len(_item_files(self.done_dir)),
            "journaled": len(self.journal_entries()),
        }

    def unfinished(self) -> int:
        """Items still pending or claimed (0 = fully drained)."""
        return (
            len(_item_files(self.pending_dir))
            + len(_item_files(self.claimed_dir))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkQueue({str(self.root)!r}, {self.counts()})"
