"""Distributed suite execution: journaled work queue + workers.

The distributed runner fans a suite out beyond one process (and, with a
shared filesystem, beyond one host) through three small pieces:

* :mod:`repro.dist.queue` — a filesystem-backed work queue.  Items are
  JSON files moved between ``pending/``, ``claimed/``, and ``done/``
  with atomic renames; finished :class:`~repro.infer.runner.
  ProblemRecord` payloads append to a ``journal.jsonl``; claims carry a
  lease so items held by crashed workers are re-claimed.
* :mod:`repro.dist.worker` — the worker loop: claim a batch, solve it
  through the :class:`~repro.api.service.InvariantService` (sharing an
  on-disk trace-cache spill), ack each record, repeat until the queue
  drains.
* :mod:`repro.dist.coordinator` — enqueue a suite (skipping journaled
  items, so resume is free), optionally spawn local workers (a fixed
  count or an elastic ``workers="auto"`` fleet sized to queue depth),
  wait, and merge the journal into the same payload ``run-all --json``
  emits.
* :mod:`repro.dist.transport` — the byte-transport layer under the
  queue: :class:`~repro.dist.transport.LocalDirTransport` (the PR 5
  directory semantics) and :class:`~repro.dist.transport.HttpTransport`
  (follow a queue with no filesystem access, with retry/backoff).
* :mod:`repro.dist.server` — ``python -m repro queue-server``, the
  thin HTTP object-store endpoint remote followers talk to.

Everything rides on the wire formats of the earlier PRs:
``ProblemRecord.to_dict()`` is the journal line and
:mod:`repro.dist.wire` round-trips problems/configs/records as JSON.
"""

from repro.dist.coordinator import (
    check_cross_batch,
    enqueue_suite,
    merge_payload,
    run_distributed,
    wait_for_drain,
)
from repro.dist.queue import QueueError, WorkItem, WorkQueue
from repro.dist.server import serve_queue
from repro.dist.transport import (
    HttpTransport,
    LocalDirTransport,
    RetryingTransport,
    Transport,
    TransportError,
    TransportNotFound,
    transport_for,
)
from repro.dist.wire import (
    config_from_dict,
    config_to_dict,
    problem_from_dict,
    problem_to_dict,
)
from repro.dist.worker import Worker, install_stop_handler

__all__ = [
    "HttpTransport",
    "LocalDirTransport",
    "QueueError",
    "RetryingTransport",
    "Transport",
    "TransportError",
    "TransportNotFound",
    "WorkItem",
    "WorkQueue",
    "Worker",
    "check_cross_batch",
    "config_from_dict",
    "config_to_dict",
    "enqueue_suite",
    "install_stop_handler",
    "merge_payload",
    "problem_from_dict",
    "problem_to_dict",
    "run_distributed",
    "serve_queue",
    "transport_for",
    "wait_for_drain",
]
