"""Distributed suite execution: journaled work queue + workers.

The distributed runner fans a suite out beyond one process (and, with a
shared filesystem, beyond one host) through three small pieces:

* :mod:`repro.dist.queue` — a filesystem-backed work queue.  Items are
  JSON files moved between ``pending/``, ``claimed/``, and ``done/``
  with atomic renames; finished :class:`~repro.infer.runner.
  ProblemRecord` payloads append to a ``journal.jsonl``; claims carry a
  lease so items held by crashed workers are re-claimed.
* :mod:`repro.dist.worker` — the worker loop: claim a batch, solve it
  through the :class:`~repro.api.service.InvariantService` (sharing an
  on-disk trace-cache spill), ack each record, repeat until the queue
  drains.
* :mod:`repro.dist.coordinator` — enqueue a suite (skipping journaled
  items, so resume is free), optionally spawn local workers, wait, and
  merge the journal into the same payload ``run-all --json`` emits.

Everything rides on the wire formats of the earlier PRs:
``ProblemRecord.to_dict()`` is the journal line and
:mod:`repro.dist.wire` round-trips problems/configs/records as JSON.
"""

from repro.dist.coordinator import (
    enqueue_suite,
    merge_payload,
    run_distributed,
    wait_for_drain,
)
from repro.dist.queue import QueueError, WorkItem, WorkQueue
from repro.dist.wire import (
    config_from_dict,
    config_to_dict,
    problem_from_dict,
    problem_to_dict,
)
from repro.dist.worker import Worker, install_stop_handler

__all__ = [
    "QueueError",
    "WorkItem",
    "WorkQueue",
    "Worker",
    "install_stop_handler",
    "config_from_dict",
    "config_to_dict",
    "enqueue_suite",
    "merge_payload",
    "problem_from_dict",
    "problem_to_dict",
    "run_distributed",
    "wait_for_drain",
]
