"""JSON wire formats for the distributed runner.

Queue items must be readable by a worker process that shares nothing
with the coordinator but the queue directory, so problems and configs
travel as plain JSON.  Two problem encodings exist:

* ``{"kind": "suite", "suite": "nla", "name": "ps2"}`` — a reference
  into the benchmark registry; the worker rebuilds the problem via
  :func:`repro.bench.suite_problems`.  This is what ``python -m repro
  enqueue`` writes: items stay tiny and always match the worker's
  registry.
* ``{"kind": "inline", ...}`` — the full problem definition
  (:func:`problem_to_dict`), used by ``run_many(workers=N)`` for
  ad-hoc problems that are not in any suite.

``Fraction`` input values are encoded as ``"num/den"`` strings (the
same convention the CLI's ``--inputs`` parser uses); JSON object keys
are strings, so integer-keyed maps (``variables``, ``ground_truth``)
are re-keyed on decode.  Trace-only problems inline their recorded
observations via :func:`repro.sampling.source.traces_to_payload`, so a
worker can solve them without any program or shared registry.
"""

from __future__ import annotations

from dataclasses import asdict, fields
from fractions import Fraction
from typing import Any

from repro.errors import ReproError
from repro.infer.config import InferenceConfig
from repro.infer.problem import Problem
from repro.sampling.source import traces_from_payload, traces_to_payload
from repro.sampling.termgen import ExternalTerm


def _encode_value(value: object) -> object:
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, (bool, int, float)):
        return value
    raise ReproError(
        f"cannot encode input value {value!r} ({type(value).__name__}) as JSON"
    )


def _decode_value(value: object) -> object:
    if isinstance(value, str):
        return Fraction(value)
    return value


def _encode_inputs(inputs: list[dict[str, object]]) -> list[dict[str, object]]:
    return [{k: _encode_value(v) for k, v in row.items()} for row in inputs]


def _decode_inputs(inputs: list[dict[str, Any]]) -> list[dict[str, object]]:
    return [{k: _decode_value(v) for k, v in row.items()} for row in inputs]


def problem_to_dict(problem: Problem) -> dict:
    """Serialize a :class:`Problem` to plain JSON types."""
    return {
        "name": problem.name,
        "source": problem.source,
        "train_inputs": _encode_inputs(problem.train_inputs),
        "check_inputs": _encode_inputs(problem.check_inputs),
        "max_degree": problem.max_degree,
        "variables": (
            {str(k): list(v) for k, v in problem.variables.items()}
            if problem.variables is not None
            else None
        ),
        "externals": [
            {"func": e.func, "args": list(e.args)} for e in problem.externals
        ],
        "learn_inequalities": problem.learn_inequalities,
        "fractional": problem.fractional,
        "fractional_vars": (
            list(problem.fractional_vars)
            if problem.fractional_vars is not None
            else None
        ),
        "ground_truth": {
            str(k): list(v) for k, v in problem.ground_truth.items()
        },
        "max_states": problem.max_states,
        "traces": (
            traces_to_payload(problem.traces)
            if problem.traces is not None
            else None
        ),
    }


def problem_from_dict(data: dict) -> Problem:
    """Rebuild a :class:`Problem` from :func:`problem_to_dict` output."""
    return Problem(
        name=data["name"],
        source=data.get("source"),
        train_inputs=_decode_inputs(data.get("train_inputs", [])),
        check_inputs=_decode_inputs(data.get("check_inputs", [])),
        max_degree=data.get("max_degree", 2),
        variables=(
            {int(k): list(v) for k, v in data["variables"].items()}
            if data.get("variables") is not None
            else None
        ),
        externals=[
            ExternalTerm(func=e["func"], args=tuple(e["args"]))
            for e in data.get("externals", [])
        ],
        learn_inequalities=data.get("learn_inequalities", False),
        fractional=data.get("fractional", False),
        fractional_vars=(
            list(data["fractional_vars"])
            if data.get("fractional_vars") is not None
            else None
        ),
        ground_truth={
            int(k): list(v) for k, v in data.get("ground_truth", {}).items()
        },
        max_states=data.get("max_states", 100),
        traces=(
            traces_from_payload(data["traces"])
            if data.get("traces") is not None
            else None
        ),
    )


def config_to_dict(config: InferenceConfig) -> dict:
    """Serialize an :class:`InferenceConfig` (tuples become lists)."""
    return asdict(config)


def _coerce_dataclass(cls, data: dict):
    kwargs = {}
    for f in fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        if isinstance(value, list):
            # Every sequence field on the config dataclasses is a tuple;
            # JSON round-trips them as lists.
            value = tuple(value)
        kwargs[f.name] = value
    return cls(**kwargs)


def config_from_dict(data: dict) -> InferenceConfig:
    """Rebuild an :class:`InferenceConfig` from :func:`config_to_dict`."""
    from repro.cln.model import GCLNConfig

    payload = dict(data)
    gcln = payload.pop("gcln", None)
    config = _coerce_dataclass(InferenceConfig, payload)
    if gcln is not None:
        config.gcln = _coerce_dataclass(GCLNConfig, gcln)
    return config


def item_for_problem(
    problem: Problem,
    index: int,
    suite: str | None = None,
    *,
    solver: str = "gcln",
    config: InferenceConfig | None = None,
) -> dict:
    """Build one queue item for ``problem``.

    Item ids are ``NNNN-name-ffffffff``: the input ``index`` (so merge
    restores input order), the problem name (so humans can read the
    queue), and a prefix of the canonical :func:`~repro.utils.
    fingerprint.problem_fingerprint` over (problem, solver, config) —
    the same keying scheme the trace-cache disk spill and the serving
    dedup use.  Re-enqueueing the same suite with the same settings
    yields the same ids (resume dedups on them); changing the problem,
    solver, or config changes the ids, so a resumed queue never serves
    stale records solved under different settings.  With ``suite``
    given, the item is a registry reference; otherwise the full problem
    is inlined.
    """
    from repro.utils.fingerprint import problem_fingerprint

    spec: dict[str, Any]
    if suite is not None:
        spec = {"kind": "suite", "suite": suite, "name": problem.name}
    else:
        spec = {"kind": "inline", **problem_to_dict(problem)}
    fingerprint = problem_fingerprint(problem, solver, config)
    return {
        "id": f"{index:04d}-{problem.name}-{fingerprint[:8]}",
        "index": index,
        "name": problem.name,
        "fingerprint": fingerprint,
        "problem": spec,
    }


def resolve_item_problem(item: dict) -> Problem:
    """Rebuild the :class:`Problem` a queue item describes."""
    spec = item["problem"]
    kind = spec.get("kind")
    if kind == "inline":
        return problem_from_dict(spec)
    if kind == "suite":
        from repro.bench import suite_problems

        matches = suite_problems(spec["suite"], [spec["name"]])
        return matches[0]
    raise ReproError(f"unknown queue item problem kind {kind!r}")
