"""Byte transports under the work queue: local directory or HTTP.

PR 5's queue semantics (atomic-rename claims, mtime leases, flock'd
journal appends) were written against a local directory.  This module
extracts the primitive operations the queue actually needs into a
:class:`Transport` interface so the *same* `WorkQueue` logic can run
against a directory it cannot see — today over HTTP against
``python -m repro queue-server``, tomorrow over anything that can
implement ~a dozen object-store verbs.

The contract every transport must honor (it is what makes the queue
crash-safe, so read carefully before adding one):

* ``write`` is atomic: readers see the old bytes or the new bytes,
  never a torn file.
* ``rename`` is atomic and reports whether *this call* moved the file:
  of any number of racing renames of one source, exactly one returns
  True.  The queue's claim and ack gates are built on this.
* ``scan`` returns modification stamps **and the transport's own
  current time** from the same clock, so lease expiry is immune to
  clock skew between workers and the queue host.
* ``journal_append`` is exclusive (one appender at a time), heals a
  torn trailing line before appending, and dedups on the given line
  prefix — the server side of the PR 5 journal logic, executed where
  the journal lives so HTTP retries are exactly-once.

:class:`LocalDirTransport` is bitwise-compatible with the PR 5 layout:
a queue directory written through it is indistinguishable from one
written by the old code, and the two can be mixed freely (a local
worker and an HTTP follower can drain the same queue).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import urllib.error
import urllib.parse
import urllib.request
from abc import ABC, abstractmethod
from pathlib import Path

from repro.errors import ReproError

try:  # POSIX only; on other platforms journal appends go unlocked.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

_TMP_PREFIX = ".tmp-"
_JOURNAL = "journal.jsonl"

#: Directories every queue has; ``health/`` is new in this PR (worker
#: heartbeats) and created lazily on old queues.
QUEUE_DIRS = ("pending", "claimed", "done", "health")


class TransportError(ReproError):
    """A transport operation failed (after any retries)."""


class TransportNotFound(TransportError):
    """The requested object does not exist on the transport."""


class Transport(ABC):
    """Primitive byte/object operations the work queue is built on.

    All paths are queue-relative POSIX strings (``"meta.json"``,
    ``"pending/0001-x.json"``); the journal has dedicated verbs because
    its append/truncate logic must execute *where the file lives* to
    stay atomic.
    """

    @abstractmethod
    def read(self, path: str) -> bytes:
        """Return the object's bytes; :class:`TransportNotFound` if absent."""

    @abstractmethod
    def write(self, path: str, data: bytes) -> None:
        """Atomically create or replace the object."""

    @abstractmethod
    def delete(self, path: str) -> bool:
        """Remove the object; False if it did not exist."""

    @abstractmethod
    def exists(self, path: str) -> bool:
        """Whether the object exists."""

    @abstractmethod
    def listdir(self, directory: str) -> list[str]:
        """Sorted ``*.json`` names in a queue directory (temp files hidden)."""

    @abstractmethod
    def scan(self, directory: str) -> tuple[float, list[tuple[str, float]]]:
        """``(now, [(name, mtime), ...])`` — stamps and *the transport's*
        clock, taken together so lease math never mixes clocks."""

    @abstractmethod
    def rename(self, src: str, dst: str) -> bool:
        """Atomically move ``src`` onto ``dst`` (replacing it); False if
        ``src`` did not exist.  Exactly one of racing renames wins."""

    @abstractmethod
    def touch(self, path: str) -> bool:
        """Refresh the object's mtime (lease renewal); False if absent."""

    @abstractmethod
    def journal_append(self, data: bytes, needle: bytes) -> bool:
        """Append one journal line under the journal lock.

        Heals a torn trailing line first, then dedups: if any existing
        line starts with ``needle`` nothing is written and False is
        returned.  True means this call appended the line.
        """

    @abstractmethod
    def journal_read(self) -> bytes:
        """The whole journal (b"" if it does not exist yet)."""

    @abstractmethod
    def journal_truncate(self, offset: int, expected_size: int) -> None:
        """Truncate the journal to ``offset`` under the journal lock —
        only if it is still exactly ``expected_size`` bytes long."""

    @abstractmethod
    def ensure_layout(self) -> None:
        """Create the queue directory skeleton if missing."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable location ('/path/to/queue', 'http://...')."""


class LocalDirTransport(Transport):
    """The PR 5 semantics, verbatim: one queue is one directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _path(self, path: str) -> Path:
        return self.root / path

    def read(self, path: str) -> bytes:
        try:
            return self._path(path).read_bytes()
        except FileNotFoundError as exc:
            raise TransportNotFound(f"{self._path(path)} does not exist") from exc

    def write(self, path: str, data: bytes) -> None:
        target = self._path(path)
        fd, tmp = tempfile.mkstemp(
            prefix=_TMP_PREFIX, suffix=".json", dir=str(target.parent)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise

    def delete(self, path: str) -> bool:
        try:
            os.unlink(self._path(path))
            return True
        except FileNotFoundError:
            return False

    def exists(self, path: str) -> bool:
        return self._path(path).exists()

    def listdir(self, directory: str) -> list[str]:
        try:
            entries = list(os.scandir(self._path(directory)))
        except FileNotFoundError:
            return []
        return sorted(
            e.name for e in entries
            if e.name.endswith(".json") and not e.name.startswith(".")
        )

    def scan(self, directory: str) -> tuple[float, list[tuple[str, float]]]:
        now = time.time()
        stamps: list[tuple[str, float]] = []
        try:
            entries = list(os.scandir(self._path(directory)))
        except FileNotFoundError:
            return now, []
        for entry in entries:
            if not entry.name.endswith(".json") or entry.name.startswith("."):
                continue
            try:
                stamps.append((entry.name, entry.stat().st_mtime))
            except FileNotFoundError:
                continue  # raced with a rename/delete
        stamps.sort()
        return now, stamps

    def rename(self, src: str, dst: str) -> bool:
        try:
            os.rename(self._path(src), self._path(dst))
            return True
        except FileNotFoundError:
            return False

    def touch(self, path: str) -> bool:
        try:
            os.utime(self._path(path), None)
            return True
        except FileNotFoundError:
            return False

    def journal_append(self, data: bytes, needle: bytes) -> bool:
        # "a+b" (not "ab") so the heal/dedup logic below can read.
        with open(self._path(_JOURNAL), "a+b") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                handle.seek(0)
                existing = handle.read()
                # Self-heal before appending: every complete journal
                # line ends with a newline (written in one call), so a
                # file that doesn't has a torn tail from a crashed
                # appender.  Appending after it would fuse the partial
                # record with ours into permanent mid-file corruption;
                # truncating it instead keeps the tear trailing, where
                # readers already know it means "still claimed, will be
                # re-run".
                if existing and not existing.endswith(b"\n"):
                    keep = existing.rfind(b"\n") + 1
                    handle.truncate(keep)
                    existing = existing[:keep]
                # Last line of duplicate defense: even if two ackers
                # each won a rename on *different* incarnations of the
                # item file (a claim resurrected across a reap race),
                # only one line per id ever lands in the journal.
                index = existing.find(needle)
                while index != -1:
                    if index == 0 or existing[index - 1:index] == b"\n":
                        return False
                    index = existing.find(needle, index + 1)
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
                return True
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def journal_read(self) -> bytes:
        try:
            return self._path(_JOURNAL).read_bytes()
        except FileNotFoundError:
            return b""

    def journal_truncate(self, offset: int, expected_size: int) -> None:
        try:
            handle = open(self._path(_JOURNAL), "r+b")
        except FileNotFoundError:
            return
        with handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                # Only repair what the caller actually read: if another
                # worker appended since, leave the file alone rather
                # than chop off its line (the next reader will deal).
                handle.seek(0, os.SEEK_END)
                if handle.tell() == expected_size:
                    handle.truncate(offset)
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def ensure_layout(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        for name in QUEUE_DIRS:
            (self.root / name).mkdir(exist_ok=True)

    def describe(self) -> str:
        return str(self.root)


class HttpTransport(Transport):
    """Follow a queue served by ``python -m repro queue-server``.

    Every verb maps to one HTTP request; the server executes the
    corresponding :class:`LocalDirTransport` operation on its own
    filesystem, so atomicity (rename gates, journal lock) holds no
    matter how many followers talk to it.

    Transient failures — connection refused/reset, timeouts, 5xx —
    are retried with exponential backoff.  Retries are safe for every
    verb: reads and writes are idempotent, renames that already
    happened report False (the queue treats that as "lost the race",
    which is correct either way), and ``journal_append`` dedups
    server-side so a retry after a lost success response appends
    nothing.
    """

    def __init__(
        self,
        base_url: str,
        *,
        retries: int = 4,
        backoff_seconds: float = 0.2,
        timeout_seconds: float = 30.0,
    ):
        self.base_url = base_url.rstrip("/")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = retries
        self.backoff_seconds = backoff_seconds
        self.timeout_seconds = timeout_seconds

    # -- plumbing --------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str = "application/json",
    ) -> tuple[int, bytes]:
        """One HTTP round-trip with retry/backoff; returns (status, body).

        404 is returned (not raised) so callers can map it to their
        "absent" semantics; other 4xx raise immediately (retrying a
        rejected request cannot help); network errors and 5xx retry.
        """
        url = f"{self.base_url}{path}"
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                request = urllib.request.Request(
                    url,
                    data=body,
                    method=method,
                    headers={"Content-Type": content_type} if body else {},
                )
                with urllib.request.urlopen(
                    request, timeout=self.timeout_seconds
                ) as response:
                    return response.status, response.read()
            except urllib.error.HTTPError as exc:
                if exc.code == 404:
                    return 404, b""
                if exc.code < 500:
                    detail = b""
                    try:
                        detail = exc.read()
                    except Exception:  # noqa: BLE001 — best-effort detail
                        pass
                    raise TransportError(
                        f"{method} {url} failed: HTTP {exc.code} "
                        f"{detail[:200].decode('utf-8', 'replace')}"
                    ) from exc
                last_error = exc
            except (urllib.error.URLError, ConnectionError, TimeoutError,
                    OSError) as exc:
                last_error = exc
            if attempt < self.retries:
                time.sleep(self.backoff_seconds * (2 ** attempt))
        raise TransportError(
            f"{method} {url} failed after {self.retries + 1} attempts: "
            f"{last_error}"
        ) from last_error

    def _object_url(self, path: str) -> str:
        return "/q/" + urllib.parse.quote(path)

    def _post_json(self, path: str, payload: dict) -> dict:
        status, body = self._request(
            "POST", path, json.dumps(payload).encode("utf-8")
        )
        if status == 404:
            raise TransportError(
                f"queue server at {self.base_url} has no endpoint {path} "
                "(version mismatch?)"
            )
        return json.loads(body)

    # -- verbs -----------------------------------------------------------------

    def read(self, path: str) -> bytes:
        status, body = self._request("GET", self._object_url(path))
        if status == 404:
            raise TransportNotFound(f"{self.base_url}: no object {path!r}")
        return body

    def write(self, path: str, data: bytes) -> None:
        status, _ = self._request("PUT", self._object_url(path), data)
        if status == 404:
            raise TransportError(
                f"{self.base_url} rejected write to {path!r}"
            )

    def delete(self, path: str) -> bool:
        return bool(self._post_json("/v1/delete", {"path": path})["ok"])

    def exists(self, path: str) -> bool:
        return bool(self._post_json("/v1/exists", {"path": path})["ok"])

    def listdir(self, directory: str) -> list[str]:
        return [name for name, _mtime in self.scan(directory)[1]]

    def scan(self, directory: str) -> tuple[float, list[tuple[str, float]]]:
        payload = self._post_json("/v1/scan", {"dir": directory})
        return (
            float(payload["now"]),
            [(name, float(mtime)) for name, mtime in payload["entries"]],
        )

    def rename(self, src: str, dst: str) -> bool:
        return bool(self._post_json("/v1/rename", {"src": src, "dst": dst})["ok"])

    def touch(self, path: str) -> bool:
        return bool(self._post_json("/v1/touch", {"path": path})["ok"])

    def journal_append(self, data: bytes, needle: bytes) -> bool:
        payload = self._post_json(
            "/v1/journal/append",
            {
                "line": data.decode("utf-8"),
                "needle": needle.decode("utf-8"),
            },
        )
        return bool(payload["appended"])

    def journal_read(self) -> bytes:
        status, body = self._request("GET", "/v1/journal")
        return b"" if status == 404 else body

    def journal_truncate(self, offset: int, expected_size: int) -> None:
        self._post_json(
            "/v1/journal/truncate",
            {"offset": offset, "expected_size": expected_size},
        )

    def ensure_layout(self) -> None:
        # The server lays out its queue directory at startup; remote
        # followers cannot (and need not) mkdir anything.
        pass

    def describe(self) -> str:
        return self.base_url


class RetryingTransport(Transport):
    """Retry every verb of an unreliable inner transport.

    :class:`HttpTransport` retries network failures itself; this
    wrapper exists for transports that surface transient
    :class:`TransportError`\\ s from their verbs directly — in-tree it
    hardens the fault-injection tests' flaky transport, and it
    documents which verbs *are* safe to blindly retry (all of them,
    for the same reasons as the HTTP transport: rename gates tolerate
    "already happened" and the journal dedups).
    """

    def __init__(
        self,
        inner: Transport,
        *,
        retries: int = 5,
        backoff_seconds: float = 0.0,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.inner = inner
        self.retries = retries
        self.backoff_seconds = backoff_seconds

    def _retry(self, operation, *args):
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                return operation(*args)
            except TransportNotFound:
                raise  # a definitive answer, not a transient failure
            except TransportError as exc:
                last_error = exc
                if attempt < self.retries and self.backoff_seconds:
                    time.sleep(self.backoff_seconds * (2 ** attempt))
        raise TransportError(
            f"operation failed after {self.retries + 1} attempts"
        ) from last_error

    def read(self, path: str) -> bytes:
        return self._retry(self.inner.read, path)

    def write(self, path: str, data: bytes) -> None:
        return self._retry(self.inner.write, path, data)

    def delete(self, path: str) -> bool:
        return self._retry(self.inner.delete, path)

    def exists(self, path: str) -> bool:
        return self._retry(self.inner.exists, path)

    def listdir(self, directory: str) -> list[str]:
        return self._retry(self.inner.listdir, directory)

    def scan(self, directory: str) -> tuple[float, list[tuple[str, float]]]:
        return self._retry(self.inner.scan, directory)

    def rename(self, src: str, dst: str) -> bool:
        return self._retry(self.inner.rename, src, dst)

    def touch(self, path: str) -> bool:
        return self._retry(self.inner.touch, path)

    def journal_append(self, data: bytes, needle: bytes) -> bool:
        return self._retry(self.inner.journal_append, data, needle)

    def journal_read(self) -> bytes:
        return self._retry(self.inner.journal_read)

    def journal_truncate(self, offset: int, expected_size: int) -> None:
        return self._retry(self.inner.journal_truncate, offset, expected_size)

    def ensure_layout(self) -> None:
        return self._retry(self.inner.ensure_layout)

    def describe(self) -> str:
        return self.inner.describe()


def is_queue_url(target: object) -> bool:
    """Whether a queue target is an HTTP(S) URL rather than a path."""
    return isinstance(target, str) and target.startswith(
        ("http://", "https://")
    )


def transport_for(target: "str | Path | Transport") -> Transport:
    """Build the right transport for a queue target.

    ``http(s)://...`` strings get an :class:`HttpTransport`; anything
    else is treated as a local directory.  A ready-made transport
    passes through, so callers can inject wrapped (retrying, flaky)
    transports anywhere a path is accepted.
    """
    if isinstance(target, Transport):
        return target
    if is_queue_url(target):
        return HttpTransport(str(target))
    return LocalDirTransport(target)
