"""Memoization for interpreter traces and evaluated term matrices.

The inference engine retries each problem across a dropout / seed /
fractional-interval schedule (paper §6), but the expensive data stages
— interpreting the program over the input space and evaluating the
candidate-term matrix — depend only on (program, inputs, interval),
not on the attempt's training knobs.  :class:`TraceCache` memoizes
both stages so that repeated attempts, the invariant checker, and
batch reruns of the same problem share one computation.

Keys are content fingerprints (program pretty-print digest + input
digest), so two structurally identical programs share entries even
when parsed separately.  Cached values are returned *by reference*;
callers must treat them as immutable.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.lang.ast import Program
from repro.lang.interp import ExecutionTrace
from repro.sampling.tracegen import collect_traces

# The fingerprint helpers moved to repro.utils.fingerprint (one
# canonical keying scheme shared with the serving dedup/memo and the
# distributed queue's item ids); re-exported here for existing callers.
from repro.utils.fingerprint import (  # noqa: F401 — re-export
    fingerprint_inputs,
    fingerprint_program,
)


@dataclass
class CacheStats:
    """Hit/miss counters, split by cached stage, plus LRU evictions.

    ``evictions`` counts entries dropped by the LRU bound — the signal
    that a long-lived service process is cycling its cache rather than
    growing without bound (and, if it climbs fast, that ``max_entries``
    is too small for the working set).
    """

    trace_hits: int = 0
    trace_misses: int = 0
    matrix_hits: int = 0
    matrix_misses: int = 0
    evictions: int = 0
    # Entries recovered from the on-disk spill (``cache_dir``) instead
    # of being recomputed — the signal that benchmark reruns are
    # skipping interpretation entirely.
    disk_hits: int = 0

    @property
    def hits(self) -> int:
        return self.trace_hits + self.matrix_hits

    @property
    def misses(self) -> int:
        return self.trace_misses + self.matrix_misses

    def to_dict(self) -> dict[str, int]:
        return {
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "matrix_hits": self.matrix_hits,
            "matrix_misses": self.matrix_misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
        }


# Bump when cached value layouts change; baked into every disk key so
# stale spills from older code are ignored rather than unpickled.
# v2: Monomial no longer serializes its cached (per-process) hash.
# v3: state-dataset keys carry the observation-source kind (trace-only
#     vs program-backed problems must never share entries).
_DISK_FORMAT_VERSION = 3


class TraceCache:
    """LRU memo for traces and term matrices, shared across attempts.

    One instance is owned by each :class:`~repro.infer.pipeline.
    InferenceEngine` (or injected, to share across engines / with the
    checker).  Entries are evicted least-recently-used once
    ``max_entries`` is exceeded, bounding memory during batch runs.

    With ``cache_dir`` set, every computed entry is also spilled to
    disk under a digest of its content key (program/input fingerprints
    and stage knobs), and misses consult the spill before recomputing —
    so a benchmark rerun, or a fresh process pointed at the same
    directory, skips interpretation and term evaluation entirely.
    Disk recoveries are counted in ``stats.disk_hits``; unreadable or
    stale spill files are treated as misses, never as errors.
    """

    def __init__(
        self,
        max_entries: int = 128,
        cache_dir: str | os.PathLike | None = None,
    ):
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        # Guards the LRU bookkeeping only: the serving front end solves
        # on a thread pool sharing one cache, and OrderedDict reordering
        # is not safe under concurrent mutation.  compute() runs outside
        # the lock — two threads may race to compute the same entry
        # (one result wins, both are correct), but never block each
        # other's unrelated work.
        self._lock = threading.Lock()
        self.cache_dir: Path | None = Path(cache_dir) if cache_dir else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- disk spill ------------------------------------------------------------

    def _disk_path(self, full_key: tuple) -> Path:
        digest = hashlib.sha1(
            repr((_DISK_FORMAT_VERSION, *full_key)).encode()
        ).hexdigest()
        return self.cache_dir / f"{digest}.pkl"  # type: ignore[operator]

    def _disk_load(self, full_key: tuple) -> tuple[bool, object]:
        if self.cache_dir is None:
            return False, None
        path = self._disk_path(full_key)
        try:
            with open(path, "rb") as handle:
                return True, pickle.load(handle)
        except Exception:  # noqa: BLE001 — any unreadable spill is a miss
            # Corrupt bytes, renamed classes, truncated writes: the
            # spill is an optimization, so recompute rather than fail.
            return False, None

    def _disk_store(self, full_key: tuple, value: object) -> None:
        if self.cache_dir is None:
            return
        path = self._disk_path(full_key)
        try:
            fd, tmp = tempfile.mkstemp(
                dir=self.cache_dir, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except (OSError, pickle.PicklingError, TypeError):
            # Unpicklable or unwritable: stay memory-only.
            return

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- generic memoization ---------------------------------------------------

    def _lookup(self, key: tuple) -> tuple[bool, object]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return True, self._entries[key]
            return False, None

    def _store(self, key: tuple, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def memoize(
        self,
        kind: str,
        key: tuple,
        compute: Callable[[], object],
    ) -> object:
        """Memoize ``compute()`` under ``(kind, *key)``.

        ``kind`` must be ``"trace"`` or ``"matrix"``; it selects which
        stat counters are bumped and namespaces the key.
        """
        full_key = (kind, *key)
        hit, value = self._lookup(full_key)
        if hit:
            if kind == "trace":
                self.stats.trace_hits += 1
            else:
                self.stats.matrix_hits += 1
            return value
        disk_hit, value = self._disk_load(full_key)
        if disk_hit:
            self.stats.disk_hits += 1
            self._store(full_key, value)
            return value
        if kind == "trace":
            self.stats.trace_misses += 1
        else:
            self.stats.matrix_misses += 1
        value = compute()
        self._store(full_key, value)
        self._disk_store(full_key, value)
        return value

    # -- trace collection ------------------------------------------------------

    def traces(
        self,
        program: Program,
        inputs: Sequence[Mapping[str, object]],
        fuel: int = 100_000,
        max_traces: int | None = None,
    ) -> list[ExecutionTrace]:
        """Memoized :func:`~repro.sampling.tracegen.collect_traces`."""
        key = (
            "collect",
            fingerprint_program(program),
            fingerprint_inputs(inputs),
            fuel,
            max_traces,
        )
        return self.memoize(
            "trace",
            key,
            lambda: collect_traces(program, inputs, fuel=fuel, max_traces=max_traces),
        )

    def checker_traces(
        self,
        program: Program,
        inputs: Sequence[Mapping[str, object]],
        fuel: int,
        run: Callable[[], list[ExecutionTrace]],
    ) -> list[ExecutionTrace]:
        """Memoized checker-side trace collection.

        The checker tolerates interpreter errors that the sampler
        propagates, so its traces are cached under a separate key even
        for identical (program, inputs).
        """
        key = (
            "checker",
            fingerprint_program(program),
            fingerprint_inputs(inputs),
            fuel,
        )
        return self.memoize("trace", key, run)
