"""Program execution over an input space and per-loop dataset assembly."""

from __future__ import annotations

from itertools import product as iter_product
from typing import Iterable, Mapping, Sequence

from repro.errors import FuelExhausted, InterpError
from repro.lang.ast import Program
from repro.lang.interp import ExecutionTrace, Interpreter


def enumerate_inputs(
    ranges: Mapping[str, Sequence[object]],
    limit: int | None = None,
) -> list[dict[str, object]]:
    """Cartesian product of per-variable value lists.

    Args:
        ranges: for each input variable, the values to try.
        limit: optional cap on the number of combinations (taken in
            iteration order, which is deterministic).
    """
    names = list(ranges)
    combos: list[dict[str, object]] = []
    for values in iter_product(*(ranges[n] for n in names)):
        combos.append(dict(zip(names, values)))
        if limit is not None and len(combos) >= limit:
            break
    return combos


def collect_traces(
    program: Program,
    inputs: Iterable[Mapping[str, object]],
    fuel: int = 100_000,
    max_traces: int | None = None,
) -> list[ExecutionTrace]:
    """Run ``program`` on each input assignment, keeping valid traces.

    Runs violating an ``assume`` are dropped (their traces are empty by
    construction); runs that exhaust fuel are skipped with the partial
    trace discarded, matching how the paper bounds sampling.
    """
    interp = Interpreter(program, fuel=fuel)
    traces: list[ExecutionTrace] = []
    for assignment in inputs:
        try:
            trace = interp.run(assignment)
        except FuelExhausted:
            continue
        if trace.assume_violated:
            continue
        traces.append(trace)
        if max_traces is not None and len(traces) >= max_traces:
            break
    if not traces:
        raise InterpError(
            f"no valid traces for program {program.name!r}; "
            "check the input space against the assume clauses"
        )
    return traces


def loop_dataset(
    traces: Sequence[ExecutionTrace],
    loop_id: int,
    include_exit: bool = True,
    max_states: int | None = None,
    dedup: bool = True,
) -> list[dict[str, object]]:
    """Gather loop-head states for one loop across traces.

    Args:
        traces: execution traces from :func:`collect_traces`.
        loop_id: which loop's snapshots to keep.
        include_exit: include the state at the final (failing) guard
            test; the paper logs it too (Fig. 4a).
        max_states: optional cap (states are kept in execution order).
        dedup: drop exact duplicate states, which otherwise skew the
            loss toward heavily revisited states.

    Returns:
        A list of variable-environment dicts.
    """
    states: list[dict[str, object]] = []
    seen: set[tuple] = set()
    for trace in traces:
        for snapshot in trace.snapshots:
            if snapshot.loop_id != loop_id:
                continue
            if not include_exit and not snapshot.guard_value:
                continue
            state = dict(snapshot.state)
            if dedup:
                key = tuple(sorted(state.items()))
                if key in seen:
                    continue
                seen.add(key)
            states.append(state)
            if max_states is not None and len(states) >= max_states:
                return states
    return states
