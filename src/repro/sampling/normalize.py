"""Per-sample data normalization (§5.1.1, Table 1 of the paper).

Each sample row (including the constant-1 column) is rescaled so its
L2 norm equals ``l`` (the paper uses l = 10).  Scaling a row by a
positive constant preserves both equalities ``w·x = 0`` and
inequalities ``w·x >= 0``, so normalization cannot change which
formulas fit the data — it only conditions the optimization.
"""

from __future__ import annotations

import numpy as np


def normalize_rows(matrix: np.ndarray, target_norm: float = 10.0) -> np.ndarray:
    """Rescale every row to L2 norm ``target_norm``.

    Zero rows are left as zeros (they satisfy every homogeneous
    constraint and carry no directional information).
    """
    if target_norm <= 0:
        raise ValueError(f"target_norm must be positive, got {target_norm}")
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    safe = np.where(norms == 0.0, 1.0, norms)
    return matrix * (target_norm / safe)
