"""Fractional sampling: sound relaxation of initial values (§4.3).

The paper relaxes the initial values of loop variables to the real
domain: any invariant of the relaxed program (with initial values seen
as symbolic inputs ``V_I``) instantiated at the concrete initial values
is an invariant of the original program.

We implement the relaxation as a program transformation: every
top-level constant initializer ``x = c`` executed before the first loop
is rewritten to ``x = c + x__frac`` where ``x__frac`` is a fresh input
variable.  Sampling ``x__frac`` on progressively finer grids
(0.5, 0.25, ...) around 0 produces the dense rational samples of
Fig. 8c while ``x__frac = 0`` recovers the original program exactly.
"""

from __future__ import annotations

import copy
from fractions import Fraction
from itertools import product as iter_product
from typing import Sequence

from repro.errors import LangError
from repro.lang.ast import Assign, Binary, IntLit, Program, Unary, Var, While

FRACTIONAL_SUFFIX = "__frac"


def _constant_value(expr) -> int | None:
    """Evaluate a constant integer expression, else None."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, Unary) and expr.op == "-":
        inner = _constant_value(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, Binary) and expr.op in ("+", "-", "*"):
        left = _constant_value(expr.left)
        right = _constant_value(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        return left * right
    return None


def relax_initializers(
    program: Program,
    variables: Sequence[str] | None = None,
) -> tuple[Program, list[str]]:
    """Relax constant initializers to fractional inputs.

    Args:
        program: program to relax (not mutated).
        variables: which variables to relax; by default, every variable
            with a top-level constant initializer before the first loop.

    Returns:
        ``(relaxed_program, relaxed_variable_names)`` where the relaxed
        program has one extra input ``v + FRACTIONAL_SUFFIX`` per
        relaxed variable.  Passing 0 for every fractional input makes
        the relaxed program behave exactly like the original.
    """
    relaxed = copy.deepcopy(program)
    relaxed_vars: list[str] = []
    for stmt in relaxed.body.statements:
        if isinstance(stmt, While):
            break
        if not isinstance(stmt, Assign):
            continue
        if variables is not None and stmt.name not in variables:
            continue
        if _constant_value(stmt.value) is None:
            continue
        frac_name = stmt.name + FRACTIONAL_SUFFIX
        if frac_name in relaxed.inputs:
            raise LangError(f"fractional input {frac_name!r} already exists")
        stmt.value = Binary("+", stmt.value, Var(frac_name))
        relaxed.inputs.append(frac_name)
        relaxed_vars.append(stmt.name)
    # Re-collect loops: deepcopy duplicated the While nodes, so rebuild
    # the loops list from the copied body to keep identity consistent.
    from repro.lang.ast import walk_statements

    relaxed.loops = [s for s in walk_statements(relaxed.body) if isinstance(s, While)]
    return relaxed, relaxed_vars


def fractional_inputs(
    base_inputs: Sequence[dict[str, object]],
    relaxed_vars: Sequence[str],
    interval: float = 0.5,
    span: float = 1.0,
    limit: int | None = 400,
) -> list[dict[str, object]]:
    """Input assignments for the relaxed program.

    For each base input assignment, takes the Cartesian grid of
    fractional offsets in ``[-span, span]`` with step ``interval`` for
    every relaxed variable (the paper samples on 0.5 intervals first,
    then 0.25, ...).

    Args:
        base_inputs: assignments for the original input variables.
        relaxed_vars: names returned by :func:`relax_initializers`.
        interval: grid step for the offsets.
        span: maximum absolute offset.
        limit: cap on the number of generated assignments.

    Returns:
        Assignments including the ``*__frac`` inputs, always containing
        the all-zero offsets (original semantics) first.
    """
    steps: list[Fraction] = [Fraction(0)]
    step = Fraction(interval).limit_denominator(1000)
    span_frac = Fraction(span).limit_denominator(1000)
    k = 1
    while k * step <= span_frac:
        steps.extend([k * step, -k * step])
        k += 1
    out: list[dict[str, object]] = []
    for base in base_inputs:
        for offsets in iter_product(steps, repeat=len(relaxed_vars)):
            assignment = dict(base)
            for var, offset in zip(relaxed_vars, offsets):
                assignment[var + FRACTIONAL_SUFFIX] = offset
            out.append(assignment)
            if limit is not None and len(out) >= limit:
                return out
    return out
