"""Candidate-term construction (Fig. 4b of the paper).

A :class:`TermBasis` is an ordered list of monomials over *extended
variables*: the program variables plus names like ``"gcd(a,b)"`` for
sampled external functions (§5.3).  States are extended with the
external values and then each monomial is evaluated, producing the
training matrix whose columns are the candidate terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from itertools import combinations
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ReproError
from repro.lang.builtins import lookup_builtin
from repro.poly.faulhaber import monomial_terms_up_to_degree
from repro.poly.monomial import Monomial
from repro.poly.polynomial import Polynomial
from repro.smt.convert import external_term_name


@dataclass(frozen=True)
class ExternalTerm:
    """A sampled external-function application, e.g. ``gcd(a, b)``."""

    func: str
    args: tuple[str, ...]

    @property
    def name(self) -> str:
        return external_term_name(self.func, self.args)


@dataclass
class TermBasis:
    """Ordered candidate terms for one loop.

    Attributes:
        variables: base program variables, in order.
        externals: external-function terms sampled alongside.
        monomials: candidate monomials over extended variables, graded
            lex order with the constant term first.
    """

    variables: list[str]
    externals: list[ExternalTerm] = field(default_factory=list)
    monomials: list[Monomial] = field(default_factory=list)

    @property
    def names(self) -> list[str]:
        return [str(m) for m in self.monomials]

    def __len__(self) -> int:
        return len(self.monomials)

    def polynomial(self, coeffs: Sequence[object]) -> Polynomial:
        """Build ``sum(coeffs[i] * monomials[i])``."""
        if len(coeffs) != len(self.monomials):
            raise ReproError(
                f"expected {len(self.monomials)} coefficients, got {len(coeffs)}"
            )
        return Polynomial(
            [(m, Fraction(c) if not isinstance(c, float) else Fraction(c).limit_denominator(10**9))
             for m, c in zip(self.monomials, coeffs)]
        )

    def restrict(self, keep: Sequence[int]) -> "TermBasis":
        """A new basis containing only the monomials at ``keep`` indices."""
        return TermBasis(
            variables=list(self.variables),
            externals=list(self.externals),
            monomials=[self.monomials[i] for i in keep],
        )


def build_term_basis(
    variables: Sequence[str],
    max_degree: int,
    externals: Sequence[ExternalTerm] = (),
    external_degree: int = 1,
) -> TermBasis:
    """Enumerate monomials up to ``max_degree`` over variables + externals.

    External-function terms participate only up to ``external_degree``
    (the paper uses them linearly, e.g. ``z == gcd(x, y)``); monomials
    mixing two external terms are excluded to keep the basis small.
    """
    base = monomial_terms_up_to_degree(list(variables), max_degree)
    extended = list(base)
    for ext in externals:
        for exp in range(1, external_degree + 1):
            ext_mono = Monomial.var(ext.name, exp)
            extended.append(ext_mono)
            if exp == 1:
                # Products of one external with degree-1 base terms let the
                # model express constraints like x*gcd == ... if needed.
                for var in variables:
                    extended.append(ext_mono * Monomial.var(var))
    seen: set[Monomial] = set()
    unique: list[Monomial] = []
    for mono in extended:
        if mono not in seen:
            seen.add(mono)
            unique.append(mono)
    return TermBasis(
        variables=list(variables),
        externals=list(externals),
        monomials=sorted(unique, key=Monomial.sort_key),
    )


def external_candidates(
    variables: Sequence[str], funcs: Sequence[str]
) -> list[ExternalTerm]:
    """All binary external applications over distinct variable pairs."""
    out: list[ExternalTerm] = []
    for func in funcs:
        for a, b in combinations(variables, 2):
            out.append(ExternalTerm(func, (a, b)))
    return out


def extend_state(
    state: Mapping[str, object], externals: Sequence[ExternalTerm]
) -> dict[str, object]:
    """Add external-function values to a program state.

    Non-integer arguments make an external term undefined; the sampler
    filters such states out before training on external terms.
    """
    extended = dict(state)
    for ext in externals:
        func = lookup_builtin(ext.func)
        args = [state[a] for a in ext.args]
        extended[ext.name] = func(*args)
    return extended


def evaluate_terms(
    states: Sequence[Mapping[str, object]],
    basis: TermBasis,
) -> np.ndarray:
    """Evaluate every basis monomial on every state.

    Returns:
        Array of shape ``(len(states), len(basis))`` in float64.
    """
    rows = np.empty((len(states), len(basis.monomials)), dtype=np.float64)
    for i, state in enumerate(states):
        extended = extend_state(state, basis.externals) if basis.externals else state
        for j, mono in enumerate(basis.monomials):
            value = 1.0
            for var, exp in mono:
                value *= float(extended[var]) ** exp
            rows[i, j] = value
    return rows


def evaluate_terms_exact(
    states: Sequence[Mapping[str, object]],
    basis: TermBasis,
) -> list[list[Fraction]]:
    """Exact-rational version of :func:`evaluate_terms` (for nullspace)."""
    rows: list[list[Fraction]] = []
    for state in states:
        extended = extend_state(state, basis.externals) if basis.externals else state
        row: list[Fraction] = []
        for mono in basis.monomials:
            value = Fraction(1)
            for var, exp in mono:
                value *= Fraction(extended[var]) ** exp
            row.append(value)
        rows.append(row)
    return rows
