"""Candidate-term filters (§5.1.3 of the paper).

The paper adopts the growth-rate heuristic of Sharma et al. [33] to
discard monomials that cannot appear in an invariant because they grow
strictly faster along every trace than any program value they could be
balanced against.  Our implementation estimates each term's growth
order along traces and removes terms whose magnitude dwarfs every
degree-1 term by more than ``ratio_cap`` at the end of the longest
trace; exact duplicate columns are also merged.
"""

from __future__ import annotations

import numpy as np


def growth_rate_filter(
    matrix: np.ndarray,
    degrees: list[int],
    ratio_cap: float = 1e8,
    magnitude_cap: float = 1e12,
) -> list[int]:
    """Indices of terms to keep.

    Args:
        matrix: samples x terms data matrix.
        degrees: total degree of each term (degree-0 constant is always
            kept).
        ratio_cap: a higher-degree term is dropped when its maximum
            magnitude exceeds ``ratio_cap`` times the largest degree-1
            magnitude (it could never be balanced in an equality).
        magnitude_cap: absolute cap guarding against float overflow.

    Returns:
        Sorted list of column indices that survive.
    """
    if matrix.ndim != 2 or matrix.shape[1] != len(degrees):
        raise ValueError("matrix/degrees mismatch in growth_rate_filter")
    max_abs = np.abs(matrix).max(axis=0) if len(matrix) else np.zeros(len(degrees))
    linear_scale = max(
        (max_abs[j] for j, d in enumerate(degrees) if d == 1), default=1.0
    )
    linear_scale = max(linear_scale, 1.0)
    keep: list[int] = []
    for j, degree in enumerate(degrees):
        if degree == 0:
            keep.append(j)
            continue
        if max_abs[j] > magnitude_cap:
            continue
        if max_abs[j] > ratio_cap * linear_scale:
            continue
        keep.append(j)
    return keep


def growth_order_filter(
    trace_matrices: list[np.ndarray],
    degrees: list[int],
    order_slack: float = 0.75,
    min_length: int = 6,
) -> list[int]:
    """Growth-order heuristic from Sharma et al. [33] (§5.1.3).

    Estimates each term's growth order (the exponent ``k`` in
    ``|value| ~ iteration^k``) by log-log regression along each trace,
    and drops terms growing strictly faster than the fastest-growing
    *single variable* — such terms cannot be balanced in any invariant
    over the candidate basis.

    Args:
        trace_matrices: per-trace term matrices (iterations x terms),
            in iteration order.
        degrees: total degree of each term.
        order_slack: tolerance added to the cutoff.
        min_length: traces shorter than this are ignored (regression
            would be meaningless).

    Returns:
        Sorted indices of surviving terms (constant always survives).
    """
    n_terms = len(degrees)
    usable = [m for m in trace_matrices if m.shape[0] >= min_length]
    if not usable:
        return list(range(n_terms))
    orders = np.zeros(n_terms)
    for j in range(n_terms):
        estimates = []
        for matrix in usable:
            values = np.abs(matrix[:, j])
            iterations = np.arange(1, len(values) + 1, dtype=float)
            mask = values > 1e-12
            if mask.sum() < min_length:
                continue
            slope, _ = np.polyfit(
                np.log(iterations[mask]), np.log(values[mask]), 1
            )
            estimates.append(slope)
        orders[j] = max(estimates) if estimates else 0.0
    single_var = [
        j for j in range(n_terms) if degrees[j] == 1
    ]
    cutoff = max((orders[j] for j in single_var), default=max(orders)) + order_slack
    return sorted(
        j for j in range(n_terms) if degrees[j] == 0 or orders[j] <= cutoff
    )


def duplicate_column_map(matrix: np.ndarray) -> dict[int, int]:
    """Map each duplicate column index to its first occurrence.

    Columns are keyed by their byte representation, hashed once each
    (O(columns) instead of the pairwise O(columns²) comparison).  For
    float matrices, adding ``0.0`` first canonicalizes ``-0.0`` so the
    grouping matches elementwise equality; integer (and other exact)
    dtypes are hashed as-is to avoid lossy float coercion.  Object
    arrays fall back to pairwise comparison (their bytes are pointers).
    """
    first: dict[bytes, int] = {}
    dup_of: dict[int, int] = {}
    if matrix.dtype == object:
        keep: list[int] = []
        for j in range(matrix.shape[1]):
            for i in keep:
                if np.array_equal(matrix[:, i], matrix[:, j]):
                    dup_of[j] = i
                    break
            else:
                keep.append(j)
        return dup_of
    floating = np.issubdtype(matrix.dtype, np.floating)
    for j in range(matrix.shape[1]):
        column = matrix[:, j] + 0.0 if floating else matrix[:, j]
        key = column.tobytes()
        if key in first:
            dup_of[j] = first[key]
        else:
            first[key] = j
    return dup_of


def dedup_columns(matrix: np.ndarray, tol: float = 0.0) -> list[int]:
    """Indices of the first occurrence of each distinct column.

    Duplicate columns (e.g. a variable that equals another throughout
    the sampled traces) would make the learned coefficients
    unidentifiable; keeping one representative is enough because any
    invariant over the dropped column can be rewritten over the kept
    one on the sampled data.
    """
    if tol == 0.0:
        dup_of = duplicate_column_map(matrix)
        return [j for j in range(matrix.shape[1]) if j not in dup_of]
    keep: list[int] = []
    for j in range(matrix.shape[1]):
        duplicate = False
        for i in keep:
            if np.max(np.abs(matrix[:, i] - matrix[:, j])) <= tol:
                duplicate = True
                break
        if not duplicate:
            keep.append(j)
    return keep
