"""Trace collection and training-data construction (paper §3, §5.1).

Pipeline: run the program over an input space (``tracegen``), expand
loop-head states to candidate monomial/external terms (``termgen``),
filter unstable terms (``filters``), normalize rows (``normalize``),
and densify with fractional sampling when needed (``fractional``).
"""

from repro.sampling.tracegen import collect_traces, loop_dataset, enumerate_inputs
from repro.sampling.termgen import (
    TermBasis,
    build_term_basis,
    extend_state,
    evaluate_terms,
)
from repro.sampling.filters import growth_rate_filter, dedup_columns
from repro.sampling.normalize import normalize_rows
from repro.sampling.fractional import relax_initializers, fractional_inputs

__all__ = [
    "collect_traces",
    "loop_dataset",
    "enumerate_inputs",
    "TermBasis",
    "build_term_basis",
    "extend_state",
    "evaluate_terms",
    "growth_rate_filter",
    "dedup_columns",
    "normalize_rows",
    "relax_initializers",
    "fractional_inputs",
]
