"""Trace collection and training-data construction (paper §3, §5.1).

Pipeline: run the program over an input space (``tracegen``), expand
loop-head states to candidate monomial/external terms (``termgen``),
filter unstable terms (``filters``), normalize rows (``normalize``),
and densify with fractional sampling when needed (``fractional``).

Stage boundary: everything in this package is *data production* — pure
functions from (program, inputs) to traces, states, and matrices, with
no knowledge of training or checking.  The ``cache`` module provides
the :class:`~repro.sampling.cache.TraceCache` memo that the inference
runtime layers on top, so retries, the checker, and batch reruns share
one trace collection and one term-matrix evaluation per distinct
(program fingerprint, inputs, fractional interval) key.

The ``source`` module abstracts *where states come from*: the
:class:`~repro.sampling.source.ObservationSource` protocol with an
interpreter-backed implementation (today's path) and a recorded-trace
implementation (trace-first solving, no program required).
"""

from repro.sampling.source import (
    InterpreterSource,
    LoopTrace,
    Observation,
    ObservationSource,
    RecordedTraceSource,
    traces_from_csv,
    traces_from_payload,
    traces_to_payload,
)
from repro.sampling.tracegen import collect_traces, loop_dataset, enumerate_inputs
from repro.sampling.termgen import (
    TermBasis,
    build_term_basis,
    extend_state,
    evaluate_terms,
)
from repro.sampling.filters import (
    growth_rate_filter,
    dedup_columns,
    duplicate_column_map,
)
from repro.sampling.normalize import normalize_rows
from repro.sampling.fractional import relax_initializers, fractional_inputs
from repro.sampling.cache import CacheStats, TraceCache

__all__ = [
    "Observation",
    "LoopTrace",
    "ObservationSource",
    "InterpreterSource",
    "RecordedTraceSource",
    "traces_to_payload",
    "traces_from_payload",
    "traces_from_csv",
    "collect_traces",
    "loop_dataset",
    "enumerate_inputs",
    "TermBasis",
    "build_term_basis",
    "extend_state",
    "evaluate_terms",
    "growth_rate_filter",
    "dedup_columns",
    "duplicate_column_map",
    "normalize_rows",
    "relax_initializers",
    "fractional_inputs",
    "CacheStats",
    "TraceCache",
]
