"""Observation sources: where the learner's program states come from.

The paper's method learns invariants from *observed loop-head states*;
nothing in training or checking actually requires the mini-language
interpreter — only the states it produces.  This module makes that
boundary first-class:

* :class:`InterpreterSource` — today's path: run ``lang/interp.py``
  over a training input space (via :func:`~repro.sampling.tracegen.
  collect_traces`) and read loop-head snapshots off the traces.
* :class:`RecordedTraceSource` — the trace-first path: raw per-loop
  state sequences recorded elsewhere (another language, a production
  log, a ``python -m repro record`` run) and loaded from JSON or CSV.

Both implement the :class:`ObservationSource` protocol the inference
stages consume (:mod:`repro.infer.stages`), so every layer above —
training, checking, the solver registry, the HTTP front end, the
distributed queue — is agnostic about whether a program exists.

Seed-equivalence contract: for a program-backed problem, recording its
interpreter observations (:func:`repro.infer.record.record_problem`)
and re-solving through :class:`RecordedTraceSource` must produce
byte-identical training states — the dedup/cap logic here mirrors
:func:`~repro.sampling.tracegen.loop_dataset` exactly.

Layering: this module sits with the rest of :mod:`repro.sampling`
(below ``checker``/``infer``); it imports only the language layer's
fingerprints and must not reach upward.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Iterable, Mapping, Protocol, Sequence, runtime_checkable

from repro.errors import ReproError
from repro.utils.fingerprint import (
    fingerprint_inputs,
    fingerprint_program,
    fingerprint_traces,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.lang.ast import Program
    from repro.sampling.cache import TraceCache


@dataclass(frozen=True)
class Observation:
    """One recorded loop-head state.

    Attributes:
        state: variable environment at the loop head.
        guard: the loop-guard value at this state; ``False`` marks the
            exit observation (the paper logs it too, Fig. 4a).
    """

    state: Mapping[str, object]
    guard: bool = True


@dataclass
class LoopTrace:
    """Recorded observations for one loop.

    Attributes:
        train: observation sequence used for training, in recording
            order (duplicates allowed — dedup happens at dataset
            assembly, mirroring :func:`~repro.sampling.tracegen.
            loop_dataset`).
        check: held-out observations for the degraded (bounded)
            checker; ``None`` reuses ``train``.
    """

    train: list[Observation] = field(default_factory=list)
    check: list[Observation] | None = None

    @property
    def effective_check(self) -> list[Observation]:
        return self.check if self.check is not None else self.train


TraceData = dict[int, LoopTrace]


@runtime_checkable
class ObservationSource(Protocol):
    """Where training/checking states come from; what stages consume."""

    kind: str  # "program" or "trace"

    @property
    def n_loops(self) -> int: ...

    def fingerprint(self) -> str:
        """Content digest of everything that determines the states."""
        ...

    def train_states(
        self, max_states: int | None, cache: "TraceCache | None" = None
    ) -> dict[int, list[dict]]:
        """Deduplicated, capped training states for every loop."""
        ...

    def variables(self, loop_index: int) -> list[str] | None:
        """Term variables for one loop, or ``None`` if not derivable."""
        ...


def _dedup_cap(
    observations: Sequence[Observation], max_states: int | None
) -> list[dict]:
    """``loop_dataset``'s dedup/cap applied to a recorded sequence."""
    states: list[dict] = []
    seen: set[tuple] = set()
    for ob in observations:
        state = dict(ob.state)
        key = tuple(sorted(state.items()))
        if key in seen:
            continue
        seen.add(key)
        states.append(state)
        if max_states is not None and len(states) >= max_states:
            break
    return states


class InterpreterSource:
    """Observations produced by interpreting a program over inputs."""

    kind = "program"

    def __init__(
        self,
        program: "Program",
        train_inputs: Sequence[Mapping[str, object]],
    ):
        self.program = program
        self.train_inputs = list(train_inputs)

    @property
    def n_loops(self) -> int:
        return len(self.program.loops)

    def fingerprint(self) -> str:
        return (
            fingerprint_program(self.program)
            + ":"
            + fingerprint_inputs(self.train_inputs)
        )

    def train_states(
        self, max_states: int | None, cache: "TraceCache | None" = None
    ) -> dict[int, list[dict]]:
        from repro.sampling.tracegen import collect_traces, loop_dataset

        if cache is not None:
            traces = cache.traces(self.program, self.train_inputs)
        else:
            traces = collect_traces(self.program, self.train_inputs)
        return {
            loop_index: loop_dataset(traces, loop_index, max_states=max_states)
            for loop_index in range(self.n_loops)
        }

    def variables(self, loop_index: int) -> list[str] | None:
        return None  # the Problem falls back to program_variables


class RecordedTraceSource:
    """Observations loaded from a recording instead of an interpreter."""

    kind = "trace"

    def __init__(self, data: Mapping[int, LoopTrace]):
        if not data:
            raise ReproError("recorded trace payload has no loops")
        expected = set(range(len(data)))
        if set(data) != expected:
            raise ReproError(
                f"recorded trace loop ids must be contiguous from 0; "
                f"got {sorted(data)}"
            )
        self.data: TraceData = dict(data)

    @property
    def n_loops(self) -> int:
        return len(self.data)

    def fingerprint(self) -> str:
        return fingerprint_traces(self.data)

    def train_states(
        self, max_states: int | None, cache: "TraceCache | None" = None
    ) -> dict[int, list[dict]]:
        return {
            loop_index: _dedup_cap(self.data[loop_index].train, max_states)
            for loop_index in range(self.n_loops)
        }

    def check_observations(self, loop_index: int) -> list[Observation]:
        """Held-out observations for the degraded (bounded) checker."""
        return list(self.data[loop_index].effective_check)

    def variables(self, loop_index: int) -> list[str] | None:
        for ob in self.data[loop_index].train:
            return sorted(ob.state)
        return None


# -- JSON / CSV payloads -----------------------------------------------------
#
# The wire convention matches repro.dist.wire input encoding: Fractions
# travel as "num/den" strings, everything else as native JSON scalars.
# (Defined here, not imported from dist/, to keep layering downward.)


def _encode_state_value(value: object) -> object:
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, (bool, int, float)):
        return value
    raise ReproError(
        f"cannot encode state value {value!r} ({type(value).__name__}) as JSON"
    )


def _decode_state_value(value: object) -> object:
    if isinstance(value, str):
        return Fraction(value)
    return value


def _encode_observation(ob: Observation) -> dict:
    return {
        "state": {k: _encode_state_value(v) for k, v in ob.state.items()},
        "guard": bool(ob.guard),
    }


def _decode_observation(data: Mapping) -> Observation:
    return Observation(
        state={k: _decode_state_value(v) for k, v in data["state"].items()},
        guard=bool(data.get("guard", True)),
    )


def traces_to_payload(data: Mapping[int, LoopTrace]) -> dict:
    """Serialize recorded traces to plain JSON types (string loop keys)."""
    payload: dict[str, dict] = {}
    for loop_index in sorted(data):
        trace = data[loop_index]
        payload[str(loop_index)] = {
            "train": [_encode_observation(ob) for ob in trace.train],
            "check": (
                None
                if trace.check is None
                else [_encode_observation(ob) for ob in trace.check]
            ),
        }
    return payload


def traces_from_payload(payload: Mapping) -> TraceData:
    """Rebuild recorded traces from :func:`traces_to_payload` output."""
    data: TraceData = {}
    for key, trace in payload.items():
        data[int(key)] = LoopTrace(
            train=[_decode_observation(ob) for ob in trace.get("train", [])],
            check=(
                None
                if trace.get("check") is None
                else [_decode_observation(ob) for ob in trace["check"]]
            ),
        )
    return data


def _parse_csv_value(text: str) -> object:
    text = text.strip()
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    try:
        return int(text)
    except ValueError:
        pass
    if "/" in text:
        return Fraction(text)
    return float(text)


def traces_from_csv(rows: Iterable[str]) -> TraceData:
    """Parse recorded traces from CSV lines.

    Expected header: ``loop`` plus one column per variable; optional
    ``kind`` (``train``/``check``, default ``train``) and ``guard``
    (``1``/``0``/``true``/``false``, default true) columns.  Values are
    integers, ``num/den`` fractions, or floats.
    """
    reader = csv.DictReader(rows)
    if reader.fieldnames is None or "loop" not in reader.fieldnames:
        raise ReproError("trace CSV needs a header with a 'loop' column")
    reserved = {"loop", "kind", "guard"}
    data: TraceData = {}
    for row in reader:
        loop_index = int(row["loop"])
        kind = (row.get("kind") or "train").strip() or "train"
        if kind not in ("train", "check"):
            raise ReproError(
                f"trace CSV 'kind' must be 'train' or 'check', got {kind!r}"
            )
        guard_text = (row.get("guard") or "").strip()
        guard = guard_text not in ("0", "false", "False") if guard_text else True
        state = {
            name: _parse_csv_value(value)
            for name, value in row.items()
            if name not in reserved and value is not None and value.strip() != ""
        }
        trace = data.setdefault(loop_index, LoopTrace())
        observation = Observation(state=state, guard=guard)
        if kind == "check":
            if trace.check is None:
                trace.check = []
            trace.check.append(observation)
        else:
            trace.train.append(observation)
    if not data:
        raise ReproError("trace CSV contains no observations")
    return data
