"""Rational rounding helpers used by formula extraction (Algorithm 1).

The paper (§4.1) scales learned real coefficients so the largest has
magnitude 1 and then rounds each to the nearest rational with a bounded
denominator, finally clearing denominators to obtain integer invariant
coefficients.  These helpers implement that procedure exactly, using
:class:`fractions.Fraction` throughout so no floating-point error can
leak into a candidate invariant.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence


def round_to_rational(value: float, max_denominator: int) -> Fraction:
    """Round ``value`` to the nearest rational with bounded denominator.

    Args:
        value: the real number to round.
        max_denominator: largest denominator permitted (>= 1).

    Returns:
        The closest ``Fraction`` whose denominator does not exceed
        ``max_denominator``.
    """
    if max_denominator < 1:
        raise ValueError(f"max_denominator must be >= 1, got {max_denominator}")
    if not math.isfinite(value):
        raise ValueError(f"cannot round non-finite value {value!r}")
    return Fraction(value).limit_denominator(max_denominator)


def scale_to_integer_coeffs(coeffs: Sequence[Fraction]) -> list[int]:
    """Clear denominators from rational coefficients.

    Multiplies all coefficients by the least common multiple of their
    denominators and divides by the greatest common divisor of the
    resulting integers, yielding the canonical primitive integer vector.

    Args:
        coeffs: rational coefficients; must not be all-zero.

    Returns:
        Integer coefficients with gcd 1, proportional to ``coeffs``.
    """
    if all(c == 0 for c in coeffs):
        raise ValueError("cannot scale an all-zero coefficient vector")
    lcm = 1
    for c in coeffs:
        lcm = lcm * c.denominator // math.gcd(lcm, c.denominator)
    ints = [int(c * lcm) for c in coeffs]
    g = 0
    for v in ints:
        g = math.gcd(g, abs(v))
    return [v // g for v in ints]


def round_coefficient_vector(
    scaled: Sequence[float],
    max_denominator: int,
    zero_tolerance: float = 0.02,
) -> list[int] | None:
    """Round an already-scaled weight vector to integer coefficients.

    Entries within ``zero_tolerance`` of zero are dropped to exactly
    zero; the rest are rounded to rationals with bounded denominator and
    denominators are cleared.

    Returns:
        Primitive integer coefficients, or ``None`` when every entry
        rounds to zero or an entry is non-finite.
    """
    rationals = []
    for s in scaled:
        if not math.isfinite(s):
            return None
        if abs(s) < zero_tolerance:
            rationals.append(Fraction(0))
        else:
            rationals.append(round_to_rational(s, max_denominator))
    if all(r == 0 for r in rationals):
        return None
    return scale_to_integer_coeffs(rationals)


def nice_coefficients(
    weights: Sequence[float],
    max_denominator: int,
    zero_tolerance: float = 0.02,
) -> list[int] | None:
    """Turn learned real weights into candidate integer coefficients.

    Implements the extraction recipe from §4.1 of the paper: scale the
    weight vector so the maximum absolute entry is 1, round each entry to
    the nearest rational with the given maximum denominator (entries
    within ``zero_tolerance`` of zero are dropped to exactly zero), and
    clear denominators.

    Args:
        weights: raw learned weights for each term.
        max_denominator: maximum denominator for rounding.
        zero_tolerance: scaled magnitudes below this become zero.

    Returns:
        Primitive integer coefficients, or ``None`` when every weight
        rounds to zero (no meaningful constraint was learned).
    """
    top = max(abs(w) for w in weights) if weights else 0.0
    if top == 0.0 or not math.isfinite(top):
        return None
    return round_coefficient_vector(
        [w / top for w in weights], max_denominator, zero_tolerance
    )
