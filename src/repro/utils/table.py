"""Plain-text table formatting for benchmark harness output.

The benchmark harnesses print the same rows the paper's tables report;
this module renders them with aligned columns so the output is directly
comparable to the paper.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    Args:
        headers: column headers.
        rows: table body; each cell is converted with ``str``.
        title: optional title line printed above the table.

    Returns:
        The formatted table as a single string.
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
