"""Tiny wall-clock stopwatch used by the pipeline and benchmarks."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating stopwatch.

    Example:
        >>> sw = Stopwatch()
        >>> with sw:
        ...     pass
        >>> sw.elapsed >= 0.0
        True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None
