"""Shared utilities: rational rounding, fingerprints, timing, tables."""

from repro.utils.rational import (
    round_to_rational,
    scale_to_integer_coeffs,
    nice_coefficients,
)
from repro.utils.fingerprint import (
    fingerprint_inputs,
    fingerprint_program,
    fingerprint_traces,
    problem_fingerprint,
)
from repro.utils.timing import Stopwatch
from repro.utils.table import format_table

__all__ = [
    "round_to_rational",
    "scale_to_integer_coeffs",
    "nice_coefficients",
    "fingerprint_inputs",
    "fingerprint_program",
    "fingerprint_traces",
    "problem_fingerprint",
    "Stopwatch",
    "format_table",
]
