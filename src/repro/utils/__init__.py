"""Shared utilities: rational rounding, RNG plumbing, timing, tables."""

from repro.utils.rational import (
    round_to_rational,
    scale_to_integer_coeffs,
    nice_coefficients,
)
from repro.utils.timing import Stopwatch
from repro.utils.table import format_table

__all__ = [
    "round_to_rational",
    "scale_to_integer_coeffs",
    "nice_coefficients",
    "Stopwatch",
    "format_table",
]
