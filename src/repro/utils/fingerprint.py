"""Canonical content fingerprints for programs, inputs, and problems.

One keying scheme for every layer that identifies work by content
rather than by object identity: the :class:`~repro.sampling.cache.
TraceCache` disk spill, the serving front end's request dedup/memo
(:mod:`repro.serve.dedup`), the :class:`~repro.api.service.
InvariantService` solved-result memo, and the distributed queue's item
ids (:mod:`repro.dist.wire`).  Two structurally identical requests —
even built in different processes, or parsed from different source
strings that pretty-print the same — share a fingerprint, so dedup and
resume work across process and host boundaries.

Layering: this module may import :mod:`repro.lang` and the wire
helpers, but nothing above them (no api/, serve/, dist/ imports), so
every layer can use it.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.lang.pretty import pretty_program

if TYPE_CHECKING:  # pragma: no cover
    from repro.infer.config import InferenceConfig
    from repro.infer.problem import Problem
    from repro.lang.ast import Program
    from repro.sampling.source import LoopTrace


def fingerprint_program(program: "Program") -> str:
    """Stable digest of a program's structure (via the pretty-printer).

    Computed fresh every call: memoizing it on the AST would survive
    ``copy.deepcopy`` (e.g. ``relax_initializers``) and hand a
    structurally different program the original's digest.
    """
    return hashlib.sha1(pretty_program(program).encode()).hexdigest()


def fingerprint_inputs(inputs: Iterable[Mapping[str, object]]) -> str:
    """Stable digest of an input-assignment sequence."""
    hasher = hashlib.sha1()
    for assignment in inputs:
        for name, value in sorted(assignment.items()):
            hasher.update(name.encode())
            hasher.update(b"=")
            hasher.update(repr(value).encode())
            hasher.update(b";")
        hasher.update(b"|")
    return hasher.hexdigest()


def fingerprint_traces(traces: Mapping[int, "LoopTrace"]) -> str:
    """Stable digest of a recorded-trace payload.

    States are serialized with sorted keys and canonical value reprs,
    so two structurally identical recordings — built in different
    processes, loaded from JSON or CSV, or with differently-ordered
    state dicts — share a fingerprint.  Train and check sequences hash
    under distinct section markers (a state moved between them changes
    the digest), and a ``check=None`` (reuse train) hashes differently
    from an explicit copy of the train states.
    """
    hasher = hashlib.sha1()

    def _feed(observations) -> None:
        for ob in observations:
            for name, value in sorted(ob.state.items()):
                hasher.update(name.encode())
                hasher.update(b"=")
                hasher.update(repr(value).encode())
                hasher.update(b";")
            hasher.update(b"g" if ob.guard else b"G")
            hasher.update(b"|")

    for loop_index in sorted(traces):
        trace = traces[loop_index]
        hasher.update(f"loop:{loop_index}/train:".encode())
        _feed(trace.train)
        if trace.check is not None:
            hasher.update(f"loop:{loop_index}/check:".encode())
            _feed(trace.check)
    return hasher.hexdigest()


def problem_fingerprint(
    problem: "Problem",
    solver: str = "gcln",
    config: "InferenceConfig | None" = None,
) -> str:
    """Canonical digest of one solve request: (problem, solver, config).

    This is *the* dedup/memo key: two requests with the same fingerprint
    are guaranteed to produce the same :class:`~repro.api.solver.
    SolveResult` (modulo timing fields), so one solve can answer both.

    The problem travels through :func:`repro.dist.wire.problem_to_dict`
    — the same JSON encoding queue items use — except the program
    source, which is fingerprinted via the pretty-printer so formatting
    differences don't split the key.  The config travels through
    :func:`repro.dist.wire.config_to_dict`; ``None`` (paper defaults)
    hashes distinctly from an explicit default config only if their
    encodings differ, which they don't — ``None`` is normalized to the
    default config's encoding.
    """
    from repro.dist.wire import config_to_dict, problem_to_dict
    from repro.infer.config import InferenceConfig

    payload = problem_to_dict(problem)
    if problem.source is not None:
        # Key the program by structure, not by source bytes: comments
        # and whitespace must not defeat dedup.
        payload["source"] = fingerprint_program(problem.program)
    if problem.traces is not None:
        # Trace payloads can be large; key them by their canonical
        # digest (sorted-key state serialization) instead of inlining.
        payload["traces"] = fingerprint_traces(problem.traces)
    if config is None:
        config = InferenceConfig()
    blob = json.dumps(
        {"problem": payload, "solver": solver, "config": config_to_dict(config)},
        sort_keys=True,
        separators=(",", ":"),
        default=repr,  # Fractions in ground-truth-free fields, if any
    )
    return hashlib.sha1(blob.encode()).hexdigest()
