"""PIE-style enumerative template search with a budget.

LoopInvGen/PIE synthesizes invariants by enumerating candidate atomic
predicates and boolean combinations, checking each against the data.
The search space over nonlinear polynomial atoms grows combinatorially
with the number of terms and coefficient range, which is why PIE times
out on every nonlinear problem in Table 2.  This baseline enumerates
small-coefficient atoms over the term basis within a candidate budget;
the Table 2 bench records whether the documented invariant is reached
before the budget is exhausted.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Callable, Mapping, Sequence

from repro.poly.polynomial import Polynomial
from repro.sampling.termgen import TermBasis
from repro.smt.formula import Atom
from repro.cln.extract import make_exact_validator


def enumerative_search(
    states: Sequence[Mapping[str, object]],
    basis: TermBasis,
    max_terms: int = 3,
    coefficient_range: tuple[int, ...] = (-3, -2, -1, 1, 2, 3),
    budget: int = 200_000,
    target: Callable[[Atom], bool] | None = None,
) -> tuple[list[Atom], int, bool]:
    """Enumerate small atoms, validating each against the data.

    Args:
        states: loop-head samples.
        basis: candidate terms.
        max_terms: atoms use at most this many terms.
        coefficient_range: integer coefficients tried per term.
        budget: maximum candidates examined before giving up.
        target: optional predicate; when it accepts a found atom the
            search stops early (used to measure time-to-solution).

    Returns:
        ``(valid_atoms, candidates_examined, budget_exhausted)``.
    """
    validator = make_exact_validator(states, basis)
    found: list[Atom] = []
    seen: set[str] = set()
    examined = 0
    n = len(basis)
    for size in range(1, max_terms + 1):
        for term_idx in combinations(range(n), size):
            for coeffs in product(coefficient_range, repeat=size):
                examined += 1
                if examined > budget:
                    return found, examined - 1, True
                poly = Polynomial(
                    {basis.monomials[i]: c for i, c in zip(term_idx, coeffs)}
                )
                if poly.is_zero() or poly.is_constant():
                    continue
                if validator(poly, "=="):
                    atom = Atom(poly.primitive(), "==")
                    key = str(atom.poly)
                    if key not in seen:
                        seen.add(key)
                        found.append(atom)
                        if target is not None and target(atom):
                            return found, examined, False
    return found, examined, False
