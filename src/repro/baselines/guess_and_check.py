"""Guess-and-Check polynomial equality learning [Sharma et al. 2013].

Evaluates all candidate monomials on the samples (the "polynomial
kernel") and computes the exact rational nullspace of the data matrix:
every nullspace vector is an equality satisfied by all samples.  This
is the equality core of NumInv and the natural exact baseline for the
G-CLN's gradient-based equality learning; it cannot learn disjunctions
or inequalities (§7 of the paper).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.poly.nullspace import rational_nullspace
from repro.sampling.termgen import TermBasis, evaluate_terms_exact
from repro.smt.formula import Atom


def guess_and_check_equalities(
    states: Sequence[Mapping[str, object]],
    basis: TermBasis,
    max_invariants: int = 20,
) -> list[Atom]:
    """Equality atoms spanning all polynomial relations on the samples.

    Args:
        states: loop-head states.
        basis: candidate term basis.
        max_invariants: cap on returned atoms (nullspace can be large
            when samples are few).

    Returns:
        One ``== 0`` atom per nullspace basis vector, primitive-scaled.
    """
    rows = evaluate_terms_exact(states, basis)
    vectors = rational_nullspace(rows)
    atoms: list[Atom] = []
    for vec in vectors[:max_invariants]:
        poly = basis.polynomial(vec)
        if poly.is_zero() or poly.is_constant():
            continue
        atoms.append(Atom(poly.primitive(), "=="))
    return atoms
