"""Octahedral inequality inference (NumInv's inequality domain).

NumInv infers bounds of the octahedral form ``±x ±y <= c`` over program
variables — it "does not infer the nonlinear and 3 variable
inequalities in the benchmark" (§6.1 of the paper).  This baseline
computes the tightest such bounds holding on the samples, which is what
the paper's comparison column reflects.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import Mapping, Sequence

from repro.poly.monomial import Monomial
from repro.poly.polynomial import Polynomial
from repro.smt.formula import Atom


def octahedral_inequalities(
    states: Sequence[Mapping[str, object]],
    variables: Sequence[str],
) -> list[Atom]:
    """Tightest octahedral bounds ``±x <= c`` and ``±x ±y <= c``.

    Returns atoms of the form ``c - (±x ±y) >= 0`` with ``c`` the exact
    maximum of the left side over the samples (so every bound is tight
    by construction).
    """
    atoms: list[Atom] = []
    if not states:
        return atoms

    def bound_of(expr_terms: dict[str, int]) -> Fraction:
        best: Fraction | None = None
        for state in states:
            value = Fraction(0)
            for var, sign in expr_terms.items():
                value += sign * Fraction(state[var])
            if best is None or value > best:
                best = value
        assert best is not None
        return best

    def make_atom(expr_terms: dict[str, int]) -> Atom:
        c = bound_of(expr_terms)
        poly = Polynomial.constant(c)
        for var, sign in expr_terms.items():
            poly = poly - Polynomial({Monomial.var(var): Fraction(sign)})
        return Atom(poly.primitive(preserve_sign=True), ">=")

    for var in variables:
        atoms.append(make_atom({var: 1}))
        atoms.append(make_atom({var: -1}))
    for a, b in combinations(variables, 2):
        for sa in (1, -1):
            for sb in (1, -1):
                atoms.append(make_atom({a: sa, b: sb}))
    return atoms
