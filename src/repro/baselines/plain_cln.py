"""Template-based ungated CLN (CLN2INV [30]) — the Table 4 baseline.

The original CLN requires a formula template: a fixed conjunction (or
disjunction) of atomic equality units over all candidate terms, with no
gates, no term dropout, and no adaptive regularization.  Clauses with
poorly initialized weights cannot be pruned, which is exactly the
instability the paper's Table 4 measures: the baseline converges on
58.3% of runs vs 97.5% for the G-CLN.

``train_plain_cln`` trains one model (no restarts) and reports whether
a valid invariant could be extracted, which is the convergence
criterion used by the stability bench.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import TrainingError
from repro.autodiff.optim import Adam, clip_grad_norm
from repro.autodiff.tensor import Tensor
from repro.autodiff.functional import stack
from repro.cln.activations import gaussian_equality
from repro.cln.extract import make_exact_validator
from repro.poly.polynomial import Polynomial
from repro.sampling.termgen import TermBasis
from repro.smt.formula import Atom
from repro.utils.rational import nice_coefficients


class PlainCLN:
    """Fixed-template CLN: conjunction or disjunction of equality units.

    Every unit sees every term (no dropout masks, no gating).
    """

    def __init__(
        self,
        n_terms: int,
        n_units: int,
        rng: np.random.Generator,
        disjunction: bool = False,
        sigma: float = 0.1,
    ):
        if n_units < 1:
            raise TrainingError("PlainCLN needs at least one unit")
        self.n_terms = n_terms
        self.disjunction = disjunction
        self.sigma = sigma
        self.weights = [
            Tensor(rng.normal(0.0, 1.0, size=n_terms), requires_grad=True)
            for _ in range(n_units)
        ]

    def unit_outputs(self, X: Tensor, relax_scale: float = 1.0) -> Tensor:
        outputs = []
        for w in self.weights:
            norm = ((w * w).sum() + 1e-12) ** 0.5
            r = X @ (w / norm)
            outputs.append(gaussian_equality(r, self.sigma * relax_scale))
        return stack(outputs, axis=1)

    def forward(self, X: Tensor, relax_scale: float = 1.0) -> Tensor:
        units = self.unit_outputs(X, relax_scale)
        if self.disjunction:
            return 1.0 - (1.0 - units).prod(axis=1)
        return units.prod(axis=1)

    def weight_vectors(self) -> list[np.ndarray]:
        out = []
        for w in self.weights:
            data = w.data
            norm = float(np.linalg.norm(data)) + 1e-12
            out.append(data / norm)
        return out


def train_plain_cln(
    model: PlainCLN,
    data: np.ndarray,
    basis: TermBasis,
    states: Sequence[Mapping[str, object]],
    max_epochs: int = 2000,
    learning_rate: float = 0.01,
    lr_decay: float = 0.9996,
    anneal_init: float = 100.0,
) -> list[Atom]:
    """Train the template model once and extract validated atoms.

    Returns the distinct valid equality atoms (possibly empty — that is
    a non-converged run for the stability study).  The same annealing
    and Adam settings as the G-CLN trainer are used so the comparison
    isolates the architectural difference (gates/dropout), not the
    optimizer.
    """
    X = Tensor(data)
    optimizer = Adam(model.weights, lr=learning_rate, decay=lr_decay)
    anneal_epochs = max(1, max_epochs // 2)
    anneal_decay = anneal_init ** (-1.0 / anneal_epochs)
    relax_scale = anneal_init
    for _ in range(max_epochs):
        optimizer.zero_grad()
        loss = (1.0 - model.forward(X, relax_scale)).sum()
        loss.backward()
        clip_grad_norm(model.weights, 100.0)
        optimizer.step()
        relax_scale = max(relax_scale * anneal_decay, 1.0)
        if not np.isfinite(loss.item()):
            return []

    # Extraction is the *published* CLN2INV recipe: scale by the max
    # weight, round with bounded denominators, validate, discard.  The
    # robustified multi-reference rescaling and support-guided recovery
    # belong to the G-CLN reproduction, not this baseline — giving the
    # baseline those improvements would mask exactly the instability
    # Table 4 measures.
    validator = make_exact_validator(states, basis)
    atoms: list[Atom] = []
    seen: set[str] = set()
    for vec in model.weight_vectors():
        for max_den in (10, 15, 30):
            coeffs = nice_coefficients(list(vec), max_den)
            if coeffs is None:
                continue
            poly = Polynomial(
                {m: c for m, c in zip(basis.monomials, coeffs)}
            )
            if poly.is_zero() or poly.is_constant():
                continue
            if not validator(poly, "=="):
                continue
            atom = Atom(poly.primitive(), "==")
            key = str(atom.poly)
            if key not in seen:
                seen.add(key)
                atoms.append(atom)
            break
    return atoms
