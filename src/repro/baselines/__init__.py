"""Baseline systems reimplemented for comparison (Table 2 / Table 4).

* ``guess_and_check`` — exact polynomial-kernel nullspace equality
  learner [Sharma et al. 2013], the core of NumInv's equality engine.
* ``octahedral`` — octahedral (±x ±y <= c) inequality inference,
  NumInv's inequality domain [Nguyen et al. 2017].
* ``plain_cln`` — template-based ungated CLN (CLN2INV [30]), used as
  the stability baseline in Table 4.
* ``enumerative`` — a PIE-style enumerative template search with a
  budget, which times out on nonlinear problems as in Table 2.
"""

from repro.baselines.guess_and_check import guess_and_check_equalities
from repro.baselines.octahedral import octahedral_inequalities
from repro.baselines.plain_cln import PlainCLN, train_plain_cln
from repro.baselines.enumerative import enumerative_search

__all__ = [
    "guess_and_check_equalities",
    "octahedral_inequalities",
    "PlainCLN",
    "train_plain_cln",
    "enumerative_search",
]
