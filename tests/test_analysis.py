"""Tests for static analysis: path extraction and polynomial updates."""

from repro.lang import parse_program
from repro.lang.analysis import (
    assigned_variables,
    expr_to_polynomial,
    expr_variables,
    extract_loop_paths,
    program_variables,
)
from repro.lang.parser import parse_expr
from tests.test_polynomial import P


def test_expr_variables():
    assert expr_variables(parse_expr("x + gcd(y, z) * 2")) == {"x", "y", "z"}


def test_assigned_and_program_variables():
    program = parse_program(
        """
program vars;
input n;
x = 0;
while (x < n) { x = x + 1; y = x; }
"""
    )
    assert assigned_variables(program.body) == {"x", "y"}
    assert program_variables(program) == ["n", "x", "y"]


def test_expr_to_polynomial_basics():
    assert expr_to_polynomial(parse_expr("x * (y + 2)")) == P("x*y + 2*x")


def test_expr_to_polynomial_division_by_constant():
    poly = expr_to_polynomial(parse_expr("(x + y) / 2"))
    assert poly is not None
    assert poly.scale(2) == P("x + y")


def test_expr_to_polynomial_rejects_mod():
    assert expr_to_polynomial(parse_expr("mod(x, 2)")) is None


def test_expr_to_polynomial_rejects_nonconstant_division():
    assert expr_to_polynomial(parse_expr("x / y")) is None


def test_straightline_path(sqrt1_program):
    paths = extract_loop_paths(sqrt1_program.loops[0])
    assert paths is not None and len(paths) == 1
    updates = paths[0].updates
    assert updates["a"] == P("a + 1")
    assert updates["t"] == P("t + 2")
    # s reads the already-updated t: s + (t + 2).
    assert updates["s"] == P("s + t + 2")


def test_branching_paths():
    program = parse_program(
        """
program branch;
input n;
x = 0; y = 0;
while (x < n) {
  if (x > 2) { y = y + x; } else { y = y - 1; }
  x = x + 1;
}
"""
    )
    paths = extract_loop_paths(program.loops[0])
    assert paths is not None and len(paths) == 2
    updates = {str(p.updates["y"]) for p in paths}
    assert updates == {"y + x", "y - 1"}
    assert all(p.updates["x"] == P("x + 1") for p in paths)
    assert [p.conditions[0][1] for p in paths] == [True, False]


def test_nested_loop_body_unsupported():
    program = parse_program(
        """
program nested;
input n;
i = 0;
while (i < n) {
  j = 0;
  while (j < i) { j = j + 1; }
  i = i + 1;
}
"""
    )
    assert extract_loop_paths(program.loops[0]) is None
    assert extract_loop_paths(program.loops[1]) is not None


def test_nonpolynomial_body_unsupported():
    program = parse_program(
        """
program np;
input n;
x = n;
while (x > 1) { x = x / 2; y = mod(x, 3); }
"""
    )
    assert extract_loop_paths(program.loops[0]) is None
