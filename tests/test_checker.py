"""Tests for the hybrid invariant checker (the Z3 substitute)."""

import numpy as np
import pytest

from repro.checker import CheckOutcome, InvariantChecker
from repro.checker.symbolic import equality_inductive_symbolic
from repro.infer.problem import parse_ground_truth
from repro.lang import parse_program
from repro.lang.analysis import extract_loop_paths
from repro.smt.formula import And
from tests.conftest import SQRT1_SOURCE


@pytest.fixture(scope="module")
def sqrt1_checker():
    program = parse_program(SQRT1_SOURCE)
    return InvariantChecker(
        program,
        [{"n": v} for v in range(0, 60)],
        rng=np.random.default_rng(7),
    )


def test_symbolic_inductive_valid(sqrt1_program):
    paths = extract_loop_paths(sqrt1_program.loops[0])
    atom = parse_ground_truth("t == 2*a + 1")
    verdict = equality_inductive_symbolic(atom.poly, [atom.poly], paths)
    assert verdict is CheckOutcome.VALID


def test_symbolic_inductive_needs_companions(sqrt1_program):
    paths = extract_loop_paths(sqrt1_program.loops[0])
    # s = (a+1)^2 is only inductive together with t = 2a + 1.
    s_atom = parse_ground_truth("s == (a + 1) * (a + 1)")
    alone = equality_inductive_symbolic(s_atom.poly, [s_atom.poly], paths)
    assert alone is CheckOutcome.UNKNOWN
    t_atom = parse_ground_truth("t == 2*a + 1")
    together = equality_inductive_symbolic(
        s_atom.poly, [s_atom.poly, t_atom.poly], paths
    )
    assert together is CheckOutcome.VALID


def test_reachable_check_accepts_truth(sqrt1_checker):
    atom = parse_ground_truth("t == 2*a + 1")
    outcome, cex = sqrt1_checker.bounded.holds_on_reachable(
        atom, 0, sqrt1_checker.traces
    )
    assert outcome is CheckOutcome.VALID and cex is None


def test_reachable_check_rejects_falsehood(sqrt1_checker):
    atom = parse_ground_truth("t == 2*a")
    outcome, cex = sqrt1_checker.bounded.holds_on_reachable(
        atom, 0, sqrt1_checker.traces
    )
    assert outcome is CheckOutcome.INVALID
    assert cex is not None and cex["t"] != 2 * cex["a"]


def test_filter_sound_atoms_prunes_noninductive(sqrt1_checker):
    good = [
        parse_ground_truth("t == 2*a + 1"),
        parse_ground_truth("s == (a + 1) * (a + 1)"),
    ]
    # False on some reachable state within the checking input range:
    # s <= 3t + 10 breaks once a > 6.
    shaky = parse_ground_truth("s <= 3 * t + 10")
    result = sqrt1_checker.filter_sound_atoms(0, good + [shaky])
    kept = {str(a) for a in result.sound}
    assert str(good[0]) in kept and str(good[1]) in kept
    assert str(shaky) not in kept
    assert result.rejected and result.counterexamples


def test_check_invariant_valid_report(sqrt1_checker, sqrt1_program):
    invariant = And(
        [
            parse_ground_truth("t == 2*a + 1"),
            parse_ground_truth("s == (a + 1) * (a + 1)"),
            parse_ground_truth("n >= a * a"),
        ]
    )
    posts = [s.cond for s in sqrt1_program.asserts]
    report = sqrt1_checker.check_invariant(0, invariant, posts)
    assert report.precondition is CheckOutcome.VALID
    assert report.inductive is CheckOutcome.VALID
    assert report.postcondition is CheckOutcome.VALID
    assert report.is_valid


def test_check_invariant_insufficient_post(sqrt1_checker, sqrt1_program):
    # Equalities alone cannot prove a*a <= n.
    invariant = And([parse_ground_truth("t == 2*a + 1")])
    posts = [s.cond for s in sqrt1_program.asserts]
    report = sqrt1_checker.check_invariant(0, invariant, posts)
    assert report.postcondition is CheckOutcome.INVALID
    assert report.counterexamples


def test_check_invariant_invalid_on_reachable(sqrt1_checker):
    report = sqrt1_checker.check_invariant(
        0, And([parse_ground_truth("a == 1")]), []
    )
    assert report.outcome is CheckOutcome.INVALID


def test_guard_fn_uses_interpreter_semantics():
    program = parse_program(
        """
program modguard;
input n;
x = n;
while (mod(x, 2) == 0) { x = x / 2; }
"""
    )
    checker = InvariantChecker(program, [{"n": v} for v in range(1, 20)])
    guard = checker.bounded.guard_fn(program.loops[0])
    assert guard({"n": 4, "x": 4})
    assert not guard({"n": 4, "x": 3})


def test_filter_sound_atoms_memoizes_repeat_checks(sqrt1_program):
    """Re-submitting a grown candidate pool reuses prior verdicts."""
    checker = InvariantChecker(
        sqrt1_program,
        [{"n": v} for v in range(0, 60)],
        rng=np.random.default_rng(7),
    )
    good = parse_ground_truth("t == 2*a + 1")
    bad = parse_ground_truth("a == n")
    first = checker.filter_sound_atoms(0, [good, bad])
    assert [str(a) for a in first.sound] == [str(good)]
    hits_after_first = checker.memo_hits

    again = checker.filter_sound_atoms(0, [good, bad])
    assert [str(a) for a in again.sound] == [str(good)]
    assert [r for a, r in again.rejected] == [r for a, r in first.rejected]
    assert checker.memo_hits > hits_after_first


def test_filter_sound_atoms_memo_disabled_matches(sqrt1_program):
    inputs = [{"n": v} for v in range(0, 60)]
    atoms = [parse_ground_truth("t == 2*a + 1"), parse_ground_truth("a >= 0")]
    memoized = InvariantChecker(
        sqrt1_program, inputs, rng=np.random.default_rng(7)
    )
    plain = InvariantChecker(
        sqrt1_program, inputs, rng=np.random.default_rng(7), memoize=False
    )
    a = memoized.filter_sound_atoms(0, atoms)
    b = plain.filter_sound_atoms(0, atoms)
    assert [str(x) for x in a.sound] == [str(x) for x in b.sound]
    assert plain.memo_hits == 0
