"""Tests for Faulhaber power-sum closed forms and term enumeration."""


import pytest
from hypothesis import given, strategies as st

from repro.errors import PolyError
from repro.poly.faulhaber import (
    monomial_terms_up_to_degree,
    power_sum_invariant,
    power_sum_polynomial,
)
from tests.test_polynomial import P


@given(st.integers(0, 6), st.integers(0, 20))
def test_power_sum_matches_direct_sum(k, n):
    closed = power_sum_polynomial(k)
    direct = sum(i**k for i in range(1, n + 1))
    assert closed.evaluate({"y": n}) == direct


def test_ps2_invariant():
    # primitive() normalizes the leading (graded-lex) coefficient positive.
    assert power_sum_invariant(1) == P("y*y + y - 2*x")


def test_ps4_invariant():
    assert power_sum_invariant(3) == P("y*y*y*y + 2*y*y*y + y*y - 4*x")


def test_power_sum_degree():
    for k in range(5):
        assert power_sum_polynomial(k).degree == k + 1


def test_negative_exponent_rejected():
    with pytest.raises(PolyError):
        power_sum_polynomial(-1)


def test_term_enumeration_count():
    # C(n_vars + d, d) monomials of degree <= d.
    terms = monomial_terms_up_to_degree(["x", "y", "z"], 2)
    assert len(terms) == 10


def test_term_enumeration_sorted_and_unique():
    terms = monomial_terms_up_to_degree(["a", "b"], 3)
    assert len(set(terms)) == len(terms)
    degrees = [t.degree for t in terms]
    assert degrees == sorted(degrees)


def test_term_enumeration_degree_zero():
    terms = monomial_terms_up_to_degree(["x"], 0)
    assert len(terms) == 1 and terms[0].is_constant()


def test_term_enumeration_negative_rejected():
    with pytest.raises(PolyError):
        monomial_terms_up_to_degree(["x"], -1)
