"""Integration tests for the end-to-end inference pipeline."""

import pytest

from repro.infer import InferenceConfig, InferenceEngine, Problem
from repro.infer.pipeline import _ground_truth_implied, _reduce_redundant
from repro.infer.problem import parse_ground_truth
from repro.smt.formula import Atom
from tests.test_polynomial import P


def test_reduce_redundant_drops_implied():
    atoms = [
        Atom(P("t - 2*a - 1"), "=="),
        Atom(P("n*t - 2*a*n - n"), "=="),  # n * (t - 2a - 1)
        Atom(P("n - a*a"), ">="),
    ]
    reduced = _reduce_redundant(atoms)
    polys = {str(a.poly) for a in reduced}
    assert "t - 2*a - 1" in polys
    assert "n*t - 2*a*n - n" not in polys
    assert len([a for a in reduced if a.op == ">="]) == 1


def test_ground_truth_implied_equalities():
    truth = [parse_ground_truth("s == (a + 1) * (a + 1)")]
    sound = [
        Atom(P("t - 2*a - 1"), "=="),
        Atom(P("t*t + 2*t - 4*s + 1"), "=="),
    ]
    assert _ground_truth_implied(truth, sound)
    assert not _ground_truth_implied(truth, sound[:1])


def test_ground_truth_implied_inequality_matching():
    truth = [parse_ground_truth("n >= a * a")]
    assert _ground_truth_implied(truth, [Atom(P("n - a*a"), ">=")])
    assert not _ground_truth_implied(truth, [Atom(P("n - a"), ">=")])
    # An equality n == a*a would also imply the bound.
    assert _ground_truth_implied(truth, [Atom(P("n - a*a"), "==")])


def test_ground_truth_empty_is_trivially_implied():
    assert _ground_truth_implied([], [])


@pytest.mark.slow
def test_pipeline_solves_ps2():
    problem = Problem(
        name="ps2",
        source="""
program ps2;
input k;
assume (k >= 0);
x = 0; y = 0;
while (y < k) { y = y + 1; x = x + y; }
assert (2 * x == y * y + y);
""",
        train_inputs=[{"k": v} for v in range(0, 20)],
        ground_truth={0: ["2 * x == y * y + y"]},
    )
    config = InferenceConfig(max_epochs=2000, dropout_schedule=(0.6, 0.7, 0.5))
    result = InferenceEngine(problem, config).run()
    assert result.solved
    assert result.loops[0].ground_truth_implied
    # Per-stage profiling rides along with every run.
    assert result.stage_timings["train"] > 0
    assert result.stage_timings["check"] > 0


@pytest.mark.slow
def test_pipeline_ablation_no_normalization_struggles():
    """Table 3 shape: disabling data normalization breaks learning."""
    problem = Problem(
        name="ps3_ablate",
        source="""
program ps3;
input k;
assume (k >= 0);
x = 0; y = 0;
while (y < k) { y = y + 1; x = x + y * y; }
""",
        train_inputs=[{"k": v} for v in range(0, 20)],
        max_degree=3,
        ground_truth={0: ["6 * x == 2*y*y*y + 3*y*y + y"]},
    )
    config = InferenceConfig(
        data_normalization=False,
        max_epochs=600,
        dropout_schedule=(0.6,),
    )
    result = InferenceEngine(problem, config).run()
    # Raw high-magnitude terms destabilize training; the run must not
    # crash, and (matching Table 3) typically fails to solve.
    assert result.attempts == 1


def test_pipeline_rejects_loopless_program():
    problem = Problem(
        name="noloop",
        source="program noloop;\ninput n;\nx = n;",
        train_inputs=[{"n": 1}],
    )
    from repro.errors import InferenceError

    with pytest.raises(InferenceError):
        InferenceEngine(problem).run()


def test_problem_helpers():
    problem = Problem(
        name="p",
        source="program p;\ninput n;\nx = 0;\nwhile (x < n) { x = x + 1; }",
        train_inputs=[{"n": 3}],
        ground_truth={0: ["x >= 0"]},
    )
    assert problem.loop_variables(0) == ["n", "x"]
    atoms = problem.ground_truth_atoms(0)
    assert len(atoms) == 1 and atoms[0].op == ">="
    assert problem.effective_check_inputs == problem.train_inputs
