"""Tests for the queue transport layer: local, HTTP, and fault injection.

The contract under test (see :mod:`repro.dist.transport`): a queue
drained over :class:`HttpTransport` — no filesystem access — behaves
exactly like a local one (same records as sequential solving, same
crash/resume semantics), and the queue's claim/ack/journal invariants
survive a transport that drops, duplicates, and delays operations.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.dist import (
    HttpTransport,
    LocalDirTransport,
    QueueError,
    RetryingTransport,
    Transport,
    TransportError,
    TransportNotFound,
    Worker,
    WorkQueue,
    run_distributed,
    serve_queue,
    transport_for,
)
from repro.dist.coordinator import build_meta, check_cross_batch
from repro.dist.wire import item_for_problem
from repro.infer import InferenceConfig, Problem
from repro.infer.runner import run_many

FAST_CONFIG = InferenceConfig(max_epochs=60, dropout_schedule=(0.6,))


def tiny_problem(name: str, step: int = 1) -> Problem:
    return Problem(
        name=name,
        source=f"""
program {name};
input n;
assume (n >= 0);
i = 0; x = 0;
while (i < n) {{ i = i + 1; x = x + {step}; }}
""",
        train_inputs=[{"n": v} for v in range(0, 8)],
        max_degree=1,
        ground_truth={0: [f"x == {step} * i"]},
    )


def make_item(item_id: str, index: int = 0) -> dict:
    return {"id": item_id, "index": index, "name": item_id, "problem": {}}


def normalized(record) -> dict:
    """A record's wire dict minus timing/host-dependent fields."""
    data = record.to_dict()
    data.pop("runtime_seconds")
    if data["result"] is not None:
        data["result"].pop("runtime_seconds")
        data["result"].pop("stage_timings")
        data["result"].pop("cache_stats")
    return data


@pytest.fixture
def http_queue(tmp_path):
    """A live queue server over a tmp directory: (url, queue_dir, server)."""
    queue_dir = tmp_path / "served-q"
    server = serve_queue(str(queue_dir), port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}", queue_dir, server
    finally:
        server.shutdown()
        server.server_close()


def fast_http(url: str) -> HttpTransport:
    """An HttpTransport that fails fast (tests hit a live local server)."""
    return HttpTransport(url, retries=1, backoff_seconds=0.01)


def _follower_env() -> dict:
    """Environment for a `python -m repro worker` follower subprocess."""
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src), env.get("PYTHONPATH")) if p
    )
    return env


# -- local transport primitives ------------------------------------------------


def test_local_transport_read_write_delete(tmp_path):
    transport = LocalDirTransport(tmp_path / "q")
    transport.ensure_layout()
    with pytest.raises(TransportNotFound):
        transport.read("pending/0000-a.json")
    transport.write("pending/0000-a.json", b'{"id": "0000-a"}')
    assert transport.read("pending/0000-a.json") == b'{"id": "0000-a"}'
    assert transport.exists("pending/0000-a.json")
    assert transport.delete("pending/0000-a.json") is True
    assert transport.delete("pending/0000-a.json") is False
    assert not transport.exists("pending/0000-a.json")


def test_local_transport_rename_gate(tmp_path):
    transport = LocalDirTransport(tmp_path / "q")
    transport.ensure_layout()
    transport.write("pending/0000-a.json", b"{}")
    assert transport.rename("pending/0000-a.json", "claimed/0000-a.json")
    # The source is gone: a second (racing or retried) rename loses.
    assert not transport.rename("pending/0000-a.json", "claimed/0000-a.json")
    assert transport.listdir("claimed") == ["0000-a.json"]


def test_local_transport_scan_shares_one_clock(tmp_path):
    transport = LocalDirTransport(tmp_path / "q")
    transport.ensure_layout()
    transport.write("claimed/0000-a.json", b"{}")
    now, stamps = transport.scan("claimed")
    assert [name for name, _ in stamps] == ["0000-a.json"]
    # Fresh file: its stamp is "now" up to clock resolution.
    assert abs(now - stamps[0][1]) < 5.0
    assert transport.scan("nonexistent")[1] == []


def test_local_transport_listdir_hides_temp_files(tmp_path):
    transport = LocalDirTransport(tmp_path / "q")
    transport.ensure_layout()
    transport.write("pending/0000-a.json", b"{}")
    (tmp_path / "q" / "pending" / ".tmp-zzz.json").write_bytes(b"{}")
    (tmp_path / "q" / "pending" / "notes.txt").write_bytes(b"")
    assert transport.listdir("pending") == ["0000-a.json"]


def test_local_transport_journal_append_dedups_on_needle(tmp_path):
    transport = LocalDirTransport(tmp_path / "q")
    transport.ensure_layout()
    line = b'{"id":"a","payload":1}\n'
    assert transport.journal_append(line, b'{"id":"a",') is True
    assert transport.journal_append(line, b'{"id":"a",') is False
    assert transport.journal_append(b'{"id":"b"}\n', b'{"id":"b",') is True
    assert transport.journal_read().count(b'"id":"a"') == 1


def test_local_transport_journal_append_heals_torn_tail(tmp_path):
    transport = LocalDirTransport(tmp_path / "q")
    transport.ensure_layout()
    transport.journal_append(b'{"id":"a"}\n', b'{"id":"a",')
    with open(tmp_path / "q" / "journal.jsonl", "ab") as handle:
        handle.write(b'{"id":"b", TORN')
    assert transport.journal_append(b'{"id":"c"}\n', b'{"id":"c",') is True
    assert transport.journal_read() == b'{"id":"a"}\n{"id":"c"}\n'


# -- HTTP transport over a live server -----------------------------------------


def test_http_transport_matches_local_semantics(http_queue):
    url, queue_dir, _server = http_queue
    remote = fast_http(url)
    local = LocalDirTransport(queue_dir)
    remote.write("pending/0000-a.json", b'{"id": "0000-a"}')
    # The same bytes are visible through both transports: one queue.
    assert local.read("pending/0000-a.json") == b'{"id": "0000-a"}'
    assert remote.read("pending/0000-a.json") == b'{"id": "0000-a"}'
    assert remote.exists("pending/0000-a.json")
    with pytest.raises(TransportNotFound):
        remote.read("pending/missing.json")
    assert remote.rename("pending/0000-a.json", "claimed/0000-a.json")
    assert not remote.rename("pending/0000-a.json", "claimed/0000-a.json")
    assert remote.listdir("claimed") == ["0000-a.json"]
    assert remote.touch("claimed/0000-a.json")
    now, stamps = remote.scan("claimed")
    assert [name for name, _ in stamps] == ["0000-a.json"]
    assert abs(now - stamps[0][1]) < 5.0
    assert remote.delete("claimed/0000-a.json") is True
    assert remote.delete("claimed/0000-a.json") is False


def test_http_transport_journal_roundtrip(http_queue):
    url, queue_dir, _server = http_queue
    remote = fast_http(url)
    line = b'{"id":"a","payload":1}\n'
    assert remote.journal_read() == b""
    assert remote.journal_append(line, b'{"id":"a",') is True
    # Retry-after-lost-response: the dedup makes re-sends exactly-once.
    assert remote.journal_append(line, b'{"id":"a",') is False
    assert remote.journal_read() == line
    assert (queue_dir / "journal.jsonl").read_bytes() == line
    remote.journal_truncate(0, expected_size=len(line))
    assert remote.journal_read() == b""


def test_http_transport_rejects_unsafe_paths(http_queue):
    url, _queue_dir, _server = http_queue
    remote = fast_http(url)
    for bad in ("../secrets.json", "pending/../../etc/passwd.json",
                "pending/.tmp-x.json", "somewhere/else.json"):
        with pytest.raises(TransportError):
            remote.write(bad, b"{}")


def test_http_transport_retries_then_raises_when_unreachable():
    transport = HttpTransport(
        "http://127.0.0.1:1", retries=2, backoff_seconds=0.01,
        timeout_seconds=0.2,
    )
    start = time.monotonic()
    with pytest.raises(TransportError, match="after 3 attempts"):
        transport.read("meta.json")
    assert time.monotonic() - start >= 0.03  # backoff actually slept


def test_transport_for_dispatches_on_scheme(tmp_path):
    assert isinstance(transport_for(tmp_path / "q"), LocalDirTransport)
    assert isinstance(transport_for("http://example:1"), HttpTransport)
    inner = LocalDirTransport(tmp_path / "q")
    assert transport_for(inner) is inner


# -- a full queue over HTTP ----------------------------------------------------


def test_queue_over_http_is_same_queue_as_local(http_queue):
    url, queue_dir, _server = http_queue
    queue = WorkQueue.create(url, meta={"solver": "gcln"})
    queue.enqueue([make_item("0000-a"), make_item("0001-b", 1)])
    # The served directory is a perfectly normal local queue.
    local = WorkQueue.open(queue_dir)
    assert local.counts()["pending"] == 2
    claimed = queue.claim("remote-w", limit=1)
    assert [i.id for i in claimed] == ["0000-a"]
    assert local.counts() == {
        "pending": 1, "claimed": 1, "done": 0, "journaled": 0,
    }
    assert queue.ack("0000-a", {"record": None}, worker="remote-w") is True
    assert queue.ack("0000-a", {"record": None}, worker="remote-w") is False
    assert local.journaled_ids() == {"0000-a"}
    # And vice versa: a local claim is visible remotely.
    local.claim("local-w", limit=1)
    assert queue.counts()["claimed"] == 1
    assert queue.unfinished() == 1


def test_queue_open_rejects_server_with_no_meta(http_queue):
    url, _queue_dir, _server = http_queue
    with pytest.raises(QueueError, match="not a work queue"):
        WorkQueue.open(url)


def test_two_http_workers_match_sequential(http_queue):
    url, _queue_dir, _server = http_queue
    problems = [tiny_problem("ta"), tiny_problem("tb", step=2),
                tiny_problem("tc", step=3)]
    queue = WorkQueue.create(
        url, meta=build_meta(solver="gcln", config=FAST_CONFIG)
    )
    items = [
        item_for_problem(p, i, solver="gcln", config=FAST_CONFIG)
        for i, p in enumerate(problems)
    ]
    queue.enqueue(items)

    # Two real follower processes, exactly as a remote operator would
    # run them: no shared filesystem, only the URL.  (Threads will not
    # do here — the autodiff tape is a per-process singleton, which is
    # why the coordinator forks worker *processes* too.)
    followers = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--queue-url", url, "--worker-id", f"follower-{i}",
                "--poll", "0.05",
            ],
            env=_follower_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for i in range(2)
    ]
    for process in followers:
        assert process.wait(timeout=120) == 0
    assert queue.unfinished() == 0
    entries = queue.journal_entries()
    assert {e["id"] for e in entries} == {i["id"] for i in items}
    by_id = {e["id"]: e["payload"]["record"] for e in entries}
    from repro.infer.runner import ProblemRecord

    remote = [
        normalized(ProblemRecord.from_dict(by_id[i["id"]])) for i in items
    ]
    sequential = [normalized(r) for r in run_many(problems, FAST_CONFIG)]
    assert remote == sequential
    # Both followers reported health; the queue host saw them exit.
    fleet = {w["worker"]: w for w in queue.worker_health()}
    assert set(fleet) == {"follower-0", "follower-1"}
    assert all(w["state"] == "exited" for w in fleet.values())
    assert sum(w["items_done"] for w in fleet.values()) == len(items)


def test_killed_http_follower_claim_is_reaped_and_resumed(http_queue):
    """A follower that dies mid-claim (SIGKILL: no release, no ack) loses
    its lease; a second follower re-claims and the records still match
    sequential solving exactly."""
    url, _queue_dir, _server = http_queue
    problems = [tiny_problem("ka"), tiny_problem("kb", step=2)]
    queue = WorkQueue.create(
        url,
        meta=build_meta(solver="gcln", config=FAST_CONFIG),
        lease_seconds=0.5,
    )
    items = [
        item_for_problem(p, i, solver="gcln", config=FAST_CONFIG)
        for i, p in enumerate(problems)
    ]
    queue.enqueue(items)
    # The "killed" follower: claims over HTTP, then vanishes without
    # acking or releasing — exactly what SIGKILL leaves behind.
    killed = WorkQueue.open(url).claim("killed-follower", limit=1)
    assert len(killed) == 1
    time.sleep(0.6)  # let the lease expire
    Worker(
        WorkQueue.open(url), worker_id="survivor", poll_seconds=0.05,
        heartbeat_seconds=0,
    ).run()
    assert queue.unfinished() == 0
    from repro.infer.runner import ProblemRecord

    by_id = {
        e["id"]: e["payload"]["record"] for e in queue.journal_entries()
    }
    resumed = [
        normalized(ProblemRecord.from_dict(by_id[i["id"]])) for i in items
    ]
    sequential = [normalized(r) for r in run_many(problems, FAST_CONFIG)]
    assert resumed == sequential
    # Exactly one journal line per item despite the re-claim.
    assert len(queue.journal_entries()) == len(items)


def test_http_stats_endpoint_reports_counts_and_health(http_queue):
    url, _queue_dir, _server = http_queue
    queue = WorkQueue.create(url, meta={"solver": "gcln", "suite": "nla"})
    queue.enqueue([make_item("0000-a")])
    queue.heartbeat("w1", {"pid": 1, "host": "h", "items_done": 0})
    import urllib.request

    with urllib.request.urlopen(f"{url}/v1/stats", timeout=5) as response:
        stats = json.loads(response.read())
    assert stats["counts"]["pending"] == 1
    assert stats["meta"]["solver"] == "gcln"
    assert [w["worker"] for w in stats["workers"]] == ["w1"]
    assert stats["workers"][0]["state"] == "live"


# -- heartbeats and health -----------------------------------------------------


def test_worker_health_states(tmp_path):
    queue = WorkQueue.create(tmp_path / "q")
    queue.heartbeat("alive", {"pid": 1, "items_done": 2, "exited": False})
    queue.heartbeat("gone", {"pid": 2, "items_done": 5, "exited": True})
    fleet = {w["worker"]: w for w in queue.worker_health()}
    assert fleet["alive"]["state"] == "live"
    assert fleet["alive"]["age_seconds"] < 5.0
    assert fleet["gone"]["state"] == "exited"
    # A beat nobody refreshed goes stale once it outlives the window.
    assert (
        {w["worker"]: w["state"] for w in queue.worker_health(
            stale_after_seconds=0.0
        )}["alive"]
        == "stale"
    )


def test_worker_heartbeats_during_run(tmp_path):
    problems = [tiny_problem("hb")]
    queue = WorkQueue.create(
        tmp_path / "q", meta=build_meta(solver="gcln", config=FAST_CONFIG)
    )
    queue.enqueue([
        item_for_problem(p, i, solver="gcln", config=FAST_CONFIG)
        for i, p in enumerate(problems)
    ])
    Worker(queue, worker_id="beater", heartbeat_seconds=0.01).run()
    (entry,) = queue.worker_health()
    assert entry["worker"] == "beater"
    assert entry["state"] == "exited"
    assert entry["items_done"] == 1
    assert entry["pid"] > 0
    assert entry["host"]
    assert entry["last_ack_age"] is not None


def test_heartbeat_failure_never_breaks_the_worker(tmp_path):
    class NoHealthTransport(LocalDirTransport):
        def write(self, path, data):
            if path.startswith("health/"):
                raise TransportError("health writes rejected")
            super().write(path, data)

    transport = NoHealthTransport(tmp_path / "q")
    queue = WorkQueue.create(
        transport=transport,
        meta=build_meta(solver="gcln", config=FAST_CONFIG),
    )
    queue.enqueue([
        item_for_problem(tiny_problem("nh"), 0, solver="gcln",
                         config=FAST_CONFIG)
    ])
    processed = Worker(
        queue, worker_id="stoic", heartbeat_seconds=0.01
    ).run()
    assert processed == 1  # the solve loop shrugged the beats off
    assert queue.worker_health() == []


def test_worker_id_sanitized_for_health_path(tmp_path):
    queue = WorkQueue.create(tmp_path / "q")
    queue.heartbeat("host name/with:odd chars", {"pid": 1})
    (entry,) = queue.worker_health()
    # The payload keeps the real id; only the filename is sanitized.
    assert entry["worker"] == "host name/with:odd chars"


# -- fault injection -----------------------------------------------------------


class FlakyTransport(Transport):
    """Deterministically unreliable transport: drops, duplicates, delays.

    Every Nth operation fails *before* reaching the inner transport
    (dropped request), every Mth fails *after* it took effect (dropped
    response — the retry then re-delivers a completed operation), and
    mutating verbs are sporadically executed twice (duplicated
    delivery).  A tiny delay widens race windows.
    """

    def __init__(self, inner: Transport, *, fail_before_every: int = 7,
                 fail_after_every: int = 11, duplicate_every: int = 5,
                 delay_seconds: float = 0.0):
        self.inner = inner
        self.fail_before_every = fail_before_every
        self.fail_after_every = fail_after_every
        self.duplicate_every = duplicate_every
        self.delay_seconds = delay_seconds
        self._calls = 0
        self._lock = threading.Lock()
        self.faults = {"before": 0, "after": 0, "duplicated": 0}

    def _invoke(self, name, *args, mutating=False):
        with self._lock:
            self._calls += 1
            calls = self._calls
        if self.delay_seconds:
            time.sleep(self.delay_seconds)
        if calls % self.fail_before_every == 0:
            self.faults["before"] += 1
            raise TransportError(f"injected drop before {name}")
        result = getattr(self.inner, name)(*args)
        if mutating and calls % self.duplicate_every == 0:
            self.faults["duplicated"] += 1
            getattr(self.inner, name)(*args)  # double delivery
        if calls % self.fail_after_every == 0:
            self.faults["after"] += 1
            raise TransportError(f"injected drop after {name}")
        return result

    def read(self, path):
        return self._invoke("read", path)

    def write(self, path, data):
        return self._invoke("write", path, data, mutating=True)

    def delete(self, path):
        return self._invoke("delete", path)

    def exists(self, path):
        return self._invoke("exists", path)

    def listdir(self, directory):
        return self._invoke("listdir", directory)

    def scan(self, directory):
        return self._invoke("scan", directory)

    def rename(self, src, dst):
        return self._invoke("rename", src, dst, mutating=True)

    def touch(self, path):
        return self._invoke("touch", path, mutating=True)

    def journal_append(self, data, needle):
        return self._invoke("journal_append", data, needle, mutating=True)

    def journal_read(self):
        return self._invoke("journal_read")

    def journal_truncate(self, offset, expected_size):
        return self._invoke("journal_truncate", offset, expected_size)

    def ensure_layout(self):
        return self.inner.ensure_layout()

    def describe(self):
        return f"flaky({self.inner.describe()})"


def test_flaky_transport_drain_matches_sequential(tmp_path):
    """A worker on a dropping/duplicating/delaying transport still
    produces exactly the sequential records: claims never double-solve
    into the journal and no journal line tears."""
    problems = [tiny_problem("fa"), tiny_problem("fb", step=2),
                tiny_problem("fc", step=3)]
    flaky = FlakyTransport(LocalDirTransport(tmp_path / "q"))
    transport = RetryingTransport(flaky, retries=6)
    queue = WorkQueue.create(
        transport=transport,
        meta=build_meta(solver="gcln", config=FAST_CONFIG),
        lease_seconds=2.0,
    )
    items = [
        item_for_problem(p, i, solver="gcln", config=FAST_CONFIG)
        for i, p in enumerate(problems)
    ]
    queue.enqueue(items)
    # Two rounds so duplicated acks/renames from round one meet the
    # dedup defenses in round two as well.
    Worker(queue, worker_id="flaky-w", heartbeat_seconds=0.05,
           poll_seconds=0.05).run()
    assert queue.unfinished() == 0
    assert flaky.faults["before"] > 0 and flaky.faults["after"] > 0
    assert flaky.faults["duplicated"] > 0

    # Journal integrity: parses cleanly, exactly one line per item.
    clean = WorkQueue.open(tmp_path / "q")
    entries = clean.journal_entries(repair=False)
    assert sorted(e["id"] for e in entries) == sorted(i["id"] for i in items)
    raw = clean.transport.journal_read()
    assert raw.endswith(b"\n")
    for line in raw.splitlines():
        json.loads(line)  # no torn/fused lines anywhere

    from repro.infer.runner import ProblemRecord

    by_id = {e["id"]: e["payload"]["record"] for e in entries}
    flaky_records = [
        normalized(ProblemRecord.from_dict(by_id[i["id"]])) for i in items
    ]
    sequential = [normalized(r) for r in run_many(problems, FAST_CONFIG)]
    assert flaky_records == sequential


def test_duplicated_claims_stay_exclusive(tmp_path):
    """Duplicate rename delivery must never hand one item to two
    workers: the second delivery of pending->claimed finds the source
    gone and reports False."""
    flaky = FlakyTransport(
        LocalDirTransport(tmp_path / "q"), duplicate_every=2,
        fail_before_every=10 ** 9, fail_after_every=10 ** 9,
    )
    transport = RetryingTransport(flaky, retries=6)
    queue = WorkQueue.create(transport=transport)
    queue.enqueue([make_item(f"{i:04d}-it", i) for i in range(6)])
    seen: list[str] = []
    for worker in ("w1", "w2", "w3"):
        for item in queue.claim(worker, limit=2):
            seen.append(item.id)
    assert len(seen) == len(set(seen)) == 6  # every item claimed once
    assert queue.counts()["claimed"] == 6


def test_retrying_transport_gives_up_after_budget(tmp_path):
    class AlwaysDown(LocalDirTransport):
        def read(self, path):
            raise TransportError("down")

    transport = RetryingTransport(AlwaysDown(tmp_path / "q"), retries=2)
    with pytest.raises(TransportError, match="after 3 attempts"):
        transport.read("meta.json")


def test_retrying_transport_passes_not_found_through(tmp_path):
    transport = RetryingTransport(LocalDirTransport(tmp_path / "q"))
    transport.ensure_layout()
    with pytest.raises(TransportNotFound):
        transport.read("pending/none.json")


def test_ack_journals_even_when_winner_crashed_before_journaling(tmp_path):
    """A done/ marker without a journal line (the winner died between
    rename and append) is healed by any later acker instead of losing
    the record — the idempotence retries rely on."""
    queue = WorkQueue.create(tmp_path / "q")
    queue.enqueue([make_item("0000-a")])
    queue.claim("w1")
    # Simulate the winner's crash: the rename happened, the append did
    # not.
    assert queue.transport.rename("claimed/0000-a.json", "done/0000-a.json")
    assert queue.journal_entries() == []
    # A retried/racing ack now completes the job.
    assert queue.ack("0000-a", {"record": None}, worker="w2") is True
    assert queue.journaled_ids() == {"0000-a"}
    # And further acks are still no-ops.
    assert queue.ack("0000-a", {"record": None}, worker="w3") is False
    assert len(queue.journal_entries()) == 1


# -- elastic fleet -------------------------------------------------------------


def test_run_distributed_auto_matches_sequential(tmp_path):
    problems = [tiny_problem("ea"), tiny_problem("eb", step=2),
                tiny_problem("ec", step=3)]
    records = run_distributed(
        problems,
        FAST_CONFIG,
        workers="auto",
        max_workers=2,
        queue_dir=str(tmp_path / "q"),
        poll_seconds=0.1,
    )
    sequential = run_many(problems, FAST_CONFIG)
    assert [normalized(r) for r in records] == [
        normalized(r) for r in sequential
    ]


def test_run_distributed_auto_reports_fleet_status(tmp_path):
    snapshots: list[dict] = []
    run_distributed(
        [tiny_problem("fs")],
        FAST_CONFIG,
        workers="auto",
        max_workers=2,
        queue_dir=str(tmp_path / "q"),
        poll_seconds=0.05,
        fleet_status=snapshots.append,
    )
    assert snapshots, "the live tail never fired"
    assert all("live_workers" in s and "pending" in s for s in snapshots)
    final = snapshots[-1]
    assert final["journaled"] == 1
    assert isinstance(final["workers"], list)


def test_run_distributed_validates_worker_bounds():
    with pytest.raises(ValueError, match="integer or 'auto'"):
        run_distributed([tiny_problem("vb")], FAST_CONFIG, workers="many")
    with pytest.raises(ValueError, match="min_workers"):
        run_distributed(
            [tiny_problem("vb")], FAST_CONFIG, workers="auto", min_workers=0
        )
    with pytest.raises(ValueError, match="max_workers"):
        run_distributed(
            [tiny_problem("vb")], FAST_CONFIG, workers="auto",
            min_workers=3, max_workers=2,
        )


def test_run_many_accepts_auto(tmp_path):
    records = run_many(
        [tiny_problem("rma")],
        FAST_CONFIG,
        workers="auto",
        max_workers=1,
        queue_dir=str(tmp_path / "q"),
    )
    assert len(records) == 1 and records[0].solved
    with pytest.raises(ValueError, match="integer or 'auto'"):
        run_many([tiny_problem("rma")], FAST_CONFIG, workers="soon")


# -- cross-batch meta guard ----------------------------------------------------


def test_cross_batch_mismatch_rejected(tmp_path):
    queue_dir = tmp_path / "q"
    WorkQueue.create(queue_dir, meta=build_meta(cross_batch=2))
    with pytest.raises(QueueError, match="cross_batch=2"):
        check_cross_batch(str(queue_dir), 1)
    check_cross_batch(str(queue_dir), 2)  # matching width: fine
    check_cross_batch(str(tmp_path / "fresh"), 1)  # no queue yet: fine
    check_cross_batch(None, 1)  # temporary queue: fine
    with pytest.raises(QueueError, match="cross_batch=2"):
        run_distributed(
            [tiny_problem("cb")], FAST_CONFIG, workers=1,
            queue_dir=str(queue_dir), cross_batch=1,
        )


def test_cli_run_all_rejects_cross_batch_mismatch(tmp_path):
    from repro.cli import main

    queue_dir = tmp_path / "q"
    WorkQueue.create(queue_dir, meta=build_meta(cross_batch=2))
    with pytest.raises(SystemExit, match="cross_batch=2"):
        main([
            "run-all", "--problems", "ps2", "--workers", "1",
            "--queue-dir", str(queue_dir), "--epochs", "60",
        ])


# -- CLI surface ---------------------------------------------------------------


def test_cli_run_all_workers_auto_validation():
    from repro.cli import main

    with pytest.raises(SystemExit, match="integer or 'auto'"):
        main(["run-all", "--workers", "soon"])
    with pytest.raises(SystemExit, match="workers"):
        main(["run-all", "--workers", "0"])
    with pytest.raises(SystemExit, match="min-workers"):
        main(["run-all", "--workers", "auto", "--min-workers", "0"])
    with pytest.raises(SystemExit, match="max-workers"):
        main([
            "run-all", "--workers", "auto",
            "--min-workers", "3", "--max-workers", "2",
        ])


def test_cli_worker_requires_exactly_one_queue_target(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match="queue-dir"):
        main(["worker"])
    with pytest.raises(SystemExit, match="mutually exclusive"):
        main([
            "worker", "--queue-dir", str(tmp_path / "q"),
            "--queue-url", "http://127.0.0.1:1",
        ])


def test_cli_queue_status_local(tmp_path, capsys):
    from repro.cli import main

    queue = WorkQueue.create(
        tmp_path / "q", meta=build_meta(solver="gcln", suite="nla")
    )
    queue.enqueue([make_item("0000-a")])
    queue.heartbeat(
        "w1", {"pid": 42, "host": "box", "items_done": 3, "last_ack_age": 1.5}
    )
    assert main(["queue-status", "--queue-dir", str(tmp_path / "q")]) == 0
    out = capsys.readouterr().out
    assert "1 pending" in out
    assert "w1" in out and "box" in out and "42" in out
    assert "live" in out


def test_cli_queue_status_json_over_http(http_queue, capsys):
    from repro.cli import main

    url, _queue_dir, _server = http_queue
    queue = WorkQueue.create(url, meta=build_meta(solver="gcln"))
    queue.enqueue([make_item("0000-a")])
    queue.heartbeat("remote-w", {"pid": 7, "host": "far", "items_done": 0})
    assert main(["queue-status", "--queue-url", url, "--json", "-"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["pending"] == 1
    assert payload["workers"][0]["worker"] == "remote-w"
    assert payload["workers"][0]["state"] == "live"


def test_cli_worker_drains_over_queue_url(http_queue, capsys):
    from repro.cli import main

    url, _queue_dir, _server = http_queue
    queue = WorkQueue.create(
        url, meta=build_meta(solver="gcln", config=FAST_CONFIG)
    )
    queue.enqueue([
        item_for_problem(tiny_problem("cu"), 0, solver="gcln",
                         config=FAST_CONFIG)
    ])
    assert main(["worker", "--queue-url", url]) == 0
    out = capsys.readouterr().out
    assert "processed 1 item(s)" in out
    assert queue.unfinished() == 0


def test_serve_executor_describe_includes_worker_health(tmp_path):
    from repro.serve.executor import QueueExecutor

    executor = QueueExecutor(str(tmp_path / "q"), solver="gcln")
    executor.queue.heartbeat("serve-w", {"pid": 9, "items_done": 4})
    description = executor.describe()
    assert description["mode"] == "queue"
    assert [w["worker"] for w in description["workers"]] == ["serve-w"]
