"""Tests for the G-CLN model, training, and formula extraction."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.autodiff import Tensor
from repro.cln.bounds import BoundBank, enumerate_bound_masks, extract_bound_atoms, train_bound_bank
from repro.cln.extract import extract_equalities, extract_formula, make_exact_validator, make_touch_checker
from repro.cln.model import (
    AtomicKind,
    AtomicUnit,
    GCLN,
    GCLNConfig,
    complexity_term_weights,
    _random_mask,
)
from repro.cln.train import train_gcln
from repro.sampling import build_term_basis, evaluate_terms, normalize_rows


def small_config(**overrides) -> GCLNConfig:
    defaults = dict(max_epochs=800, n_clauses=6)
    defaults.update(overrides)
    return GCLNConfig(**defaults)


def line_states(n=20):
    """States on the variety y = 2x + 1, z free."""
    states = []
    for x in range(n):
        states.append({"x": x, "y": 2 * x + 1, "z": (x * 7) % 5})
    return states


def test_random_mask_protects_and_caps(rng):
    mask = _random_mask(20, 0.5, rng, protected=[0], max_kept=5)
    assert mask[0]
    assert mask.sum() <= 6  # 5 kept + protected


def test_complexity_term_weights():
    weights = complexity_term_weights([0, 1, 2, 3], [0, 1, 1, 2])
    assert weights[0] == 1.0 and weights[1] == 1.0
    assert weights[2] == 0.5
    assert weights[3] == 0.25


def test_atomic_unit_rejects_empty_mask(rng):
    with pytest.raises(TrainingError):
        AtomicUnit(AtomicKind.EQ, np.zeros(4, dtype=bool), rng, small_config())


def test_unit_weight_normalized(rng):
    unit = AtomicUnit(AtomicKind.EQ, np.ones(4, dtype=bool), rng, small_config())
    assert np.linalg.norm(unit.weight_numpy()) == pytest.approx(1.0)


def test_unit_prune(rng):
    unit = AtomicUnit(AtomicKind.EQ, np.ones(4, dtype=bool), rng, small_config())
    unit.weight.data[:] = np.array([1.0, 0.001, 0.5, 0.002])
    assert unit.prune(threshold=0.05)
    assert unit.mask.tolist() == [True, False, True, False]


def test_model_forward_shape(rng):
    model = GCLN(5, small_config(), rng, protected_terms=[0])
    X = Tensor(np.random.default_rng(0).normal(size=(7, 5)))
    out = model.forward(X)
    assert out.shape == (7,)
    assert np.all(out.data >= 0) and np.all(out.data <= 1)


def test_gate_projection(rng):
    model = GCLN(5, small_config(), rng)
    model.and_gates.data[:] = 2.0
    model.project_gates()
    assert model.and_gates.data.max() <= 1.0


def test_gates_saturated(rng):
    model = GCLN(5, small_config(), rng)
    model.and_gates.data[:] = 1.0
    for g in model.or_gates:
        g.data[:] = 0.0
    assert model.gates_saturated()
    model.and_gates.data[0] = 0.5
    assert not model.gates_saturated()


def test_training_rejects_empty_data(rng):
    model = GCLN(3, small_config(), rng)
    with pytest.raises(TrainingError):
        train_gcln(model, np.zeros((0, 3)))


def test_learns_simple_equality(rng):
    """End-to-end: learn y = 2x + 1 from data."""
    states = line_states()
    basis = build_term_basis(["x", "y", "z"], 1)
    raw = evaluate_terms(states, basis)
    data = normalize_rows(raw)
    model = GCLN(
        len(basis), small_config(dropout_rate=0.25), rng, protected_terms=[0]
    )
    result = train_gcln(model, data)
    assert result.epochs > 0
    atoms = extract_equalities(model, basis, states)
    assert any(str(a.poly) in ("y - 2*x - 1", "2*x - y + 1") for a in atoms)


def test_extract_formula_returns_cnf(rng, sqrt1_data):
    states, basis, raw, data = sqrt1_data
    model = GCLN(len(basis), small_config(max_epochs=600), rng, protected_terms=[0])
    train_gcln(model, data)
    formula = extract_formula(model, basis, states)
    # Whatever was extracted must hold on every sample, exactly.
    from fractions import Fraction

    for state in states:
        exact = {k: Fraction(v) for k, v in state.items()}
        assert formula.evaluate(exact)


def test_validator_and_touch(sqrt1_data):
    states, basis, _raw, _data = sqrt1_data
    validator = make_exact_validator(states, basis)
    touch = make_touch_checker(states, basis)
    from tests.test_polynomial import P

    assert validator(P("t - 2*a - 1"), "==")
    assert not validator(P("t - 2*a"), "==")
    assert validator(P("n - a*a"), ">=")
    assert touch(P("n - a*a"))
    assert validator(P("n + 1"), ">=")
    assert not touch(P("n + 1"))


def test_bound_bank_learns_tight_bound(rng, sqrt1_data):
    states, basis, _raw, data = sqrt1_data
    config = small_config(max_epochs=1200)
    masks = enumerate_bound_masks(
        [m.variables for m in basis.monomials],
        [m.degree for m in basis.monomials],
        config,
    )
    bank = BoundBank(masks, config, rng)
    train_bound_bank(bank, data)
    atoms = extract_bound_atoms(bank, basis, states, data)
    assert atoms, "bound bank should extract at least one tight bound"
    from fractions import Fraction

    for atom in atoms:
        for state in states:
            exact = {k: Fraction(v) for k, v in state.items()}
            assert atom.evaluate(exact)


def test_enumerate_bound_masks_requires_constant():
    with pytest.raises(TrainingError):
        enumerate_bound_masks([frozenset({"x"})], [1], small_config())


def test_enumerate_bound_masks_structure():
    config = small_config()
    variables = [frozenset(), frozenset({"x"}), frozenset({"y"}), frozenset({"x", "y"})]
    degrees = [0, 1, 1, 2]
    masks = enumerate_bound_masks(variables, degrees, config)
    # Every mask keeps the constant and at most 2 non-constant terms.
    assert all(mask[0] for mask in masks)
    assert all(mask[1:].sum() <= 2 for mask in masks)
