"""Tests for polynomial reduction and exact nullspace computation."""

from fractions import Fraction

from hypothesis import given, strategies as st

from repro.poly.nullspace import rational_nullspace
from repro.poly.reduce import inter_reduce, is_implied_equality, reduce_modulo
from tests.test_polynomial import P


def test_reduce_exact_multiple():
    remainder = reduce_modulo(P("x*y - 2*y"), [P("x - 2")])
    assert remainder.is_zero()


def test_reduce_leaves_independent_poly():
    remainder = reduce_modulo(P("y - 1"), [P("x - 2")])
    assert remainder == P("y - 1")


def test_reduce_prefers_largest_lead():
    # Cancelling r^3 via the lead-r^2 reducer would spiral; the lead-r^3
    # reducer must be preferred (freire2 regression).
    a1 = P("12*r*r - 4*s + 1")
    a2 = P("4*r*r*r - 6*r*r + 3*r + 4*x - 4*a - 1")
    stepped = a2.substitute(
        {"x": P("x - s"), "s": P("s + 6*r + 3"), "r": P("r + 1")}
    )
    assert reduce_modulo(stepped, [a1, a2]).is_zero()


def test_inter_reduce_exposes_derived_equality():
    basis = inter_reduce([P("t - 2*a - 1"), P("t*t + 2*t - 4*s + 1")])
    target = P("s - a*a - 2*a - 1")
    assert reduce_modulo(target, basis).is_zero()


def test_is_implied_equality():
    assert is_implied_equality(
        P("s - a*a - 2*a - 1"),
        [P("t - 2*a - 1"), P("t*t + 2*t - 4*s + 1")],
    )
    assert not is_implied_equality(P("s - a"), [P("t - 2*a - 1")])


def test_implied_zero_trivially():
    assert is_implied_equality(P("x - x"), [])


def test_nullspace_simple():
    basis = rational_nullspace([[1, 1], [2, 2]])
    assert len(basis) == 1
    v = basis[0]
    assert v[0] + v[1] == 0


def test_nullspace_full_rank():
    assert rational_nullspace([[1, 0], [0, 1]]) == []


def test_nullspace_exact_fractions():
    basis = rational_nullspace([[Fraction(1, 3), Fraction(1, 6)]])
    assert len(basis) == 1
    v = basis[0]
    assert Fraction(1, 3) * v[0] + Fraction(1, 6) * v[1] == 0


def test_nullspace_empty_matrix():
    assert rational_nullspace([]) == []


@given(
    st.lists(
        st.lists(st.integers(-4, 4), min_size=3, max_size=3),
        min_size=1,
        max_size=5,
    )
)
def test_nullspace_vectors_annihilate(rows):
    for vec in rational_nullspace(rows):
        for row in rows:
            assert sum(Fraction(r) * c for r, c in zip(row, vec)) == 0


@given(
    st.lists(
        st.lists(st.integers(-3, 3), min_size=4, max_size=4),
        min_size=1,
        max_size=3,
    )
)
def test_nullspace_dimension_rank_nullity(rows):
    import numpy as np

    rank = np.linalg.matrix_rank(np.array(rows, dtype=float))
    basis = rational_nullspace(rows)
    assert len(basis) == 4 - rank
