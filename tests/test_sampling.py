"""Tests for trace collection, term generation, filtering, normalization."""

from fractions import Fraction

import numpy as np
import pytest

from repro.errors import InterpError
from repro.lang import parse_program
from repro.sampling import (
    build_term_basis,
    collect_traces,
    dedup_columns,
    enumerate_inputs,
    evaluate_terms,
    fractional_inputs,
    growth_rate_filter,
    loop_dataset,
    normalize_rows,
    relax_initializers,
)
from repro.sampling.termgen import (
    ExternalTerm,
    evaluate_terms_exact,
    extend_state,
    external_candidates,
)


def test_enumerate_inputs_product_and_limit():
    combos = enumerate_inputs({"a": [1, 2], "b": [10, 20, 30]})
    assert len(combos) == 6
    assert enumerate_inputs({"a": [1, 2], "b": [10, 20]}, limit=3) == [
        {"a": 1, "b": 10},
        {"a": 1, "b": 20},
        {"a": 2, "b": 10},
    ]


def test_collect_traces_drops_assume_violations(ps2_program):
    traces = collect_traces(ps2_program, [{"k": -1}, {"k": 2}])
    assert len(traces) == 1


def test_collect_traces_raises_when_empty(ps2_program):
    with pytest.raises(InterpError):
        collect_traces(ps2_program, [{"k": -1}])


def test_loop_dataset_dedup_and_cap(ps2_program):
    traces = collect_traces(ps2_program, [{"k": v} for v in range(6)])
    states = loop_dataset(traces, 0)
    keys = {tuple(sorted(s.items())) for s in states}
    assert len(keys) == len(states)
    capped = loop_dataset(traces, 0, max_states=3)
    assert len(capped) == 3


def test_loop_dataset_exit_states(ps2_program):
    traces = collect_traces(ps2_program, [{"k": 3}])
    with_exit = loop_dataset(traces, 0, include_exit=True, dedup=False)
    without = loop_dataset(traces, 0, include_exit=False, dedup=False)
    assert len(with_exit) == len(without) + 1


def test_build_term_basis_counts():
    basis = build_term_basis(["a", "b"], 2)
    assert len(basis) == 6  # 1, a, b, a^2, ab, b^2
    assert basis.names[0] == "1"


def test_term_basis_externals():
    ext = ExternalTerm("gcd", ("a", "b"))
    basis = build_term_basis(["a", "b"], 1, externals=[ext])
    assert "gcd(a,b)" in {str(m) for m in basis.monomials}


def test_external_candidates():
    cands = external_candidates(["a", "b", "c"], ["gcd"])
    assert len(cands) == 3


def test_extend_state():
    ext = ExternalTerm("gcd", ("a", "b"))
    state = extend_state({"a": 12, "b": 18}, [ext])
    assert state["gcd(a,b)"] == 6


def test_evaluate_terms_matches_exact():
    basis = build_term_basis(["x", "y"], 2)
    states = [{"x": 2, "y": 3}, {"x": -1, "y": 4}]
    approx = evaluate_terms(states, basis)
    exact = evaluate_terms_exact(states, basis)
    for i in range(2):
        for j in range(len(basis)):
            assert approx[i, j] == pytest.approx(float(exact[i][j]))


def test_normalize_rows_preserves_direction():
    data = np.array([[3.0, 4.0], [0.0, 0.0]])
    normalized = normalize_rows(data, target_norm=10.0)
    assert np.linalg.norm(normalized[0]) == pytest.approx(10.0)
    np.testing.assert_allclose(normalized[1], [0.0, 0.0])
    # Homogeneous constraints preserved.
    w = np.array([4.0, -3.0])
    assert normalized[0] @ w == pytest.approx(0.0)


def test_normalize_rows_rejects_bad_norm():
    with pytest.raises(ValueError):
        normalize_rows(np.ones((1, 2)), target_norm=0.0)


def test_growth_rate_filter_drops_huge_terms():
    matrix = np.array([[1.0, 2.0, 1e15], [1.0, 3.0, 2e15]])
    keep = growth_rate_filter(matrix, [0, 1, 2])
    assert keep == [0, 1]


def test_growth_rate_filter_keeps_constant():
    matrix = np.zeros((2, 1))
    assert growth_rate_filter(matrix, [0]) == [0]


def test_dedup_columns():
    matrix = np.array([[1.0, 1.0, 2.0], [3.0, 3.0, 4.0]])
    assert dedup_columns(matrix) == [0, 2]


def test_dedup_columns_with_tolerance():
    matrix = np.array([[1.0, 1.05, 2.0], [3.0, 3.0, 4.0]])
    assert dedup_columns(matrix) == [0, 1, 2]
    assert dedup_columns(matrix, tol=0.1) == [0, 2]


def test_duplicate_column_map():
    from repro.sampling import duplicate_column_map

    matrix = np.array(
        [[1.0, 1.0, 2.0, 1.0, 2.0], [3.0, 3.0, 4.0, 3.0, 4.0]]
    )
    assert duplicate_column_map(matrix) == {1: 0, 3: 0, 4: 2}


def test_duplicate_column_map_canonicalizes_negative_zero():
    from repro.sampling import duplicate_column_map

    matrix = np.array([[0.0, -0.0], [1.0, 1.0]])
    assert duplicate_column_map(matrix) == {1: 0}


def test_duplicate_column_map_exact_for_integer_dtypes():
    from repro.sampling import duplicate_column_map

    # Distinguishable as int64 but identical after float64 coercion.
    matrix = np.array([[2**53, 2**53 + 1], [1, 1]], dtype=np.int64)
    assert duplicate_column_map(matrix) == {}
    assert dedup_columns(matrix) == [0, 1]


def test_duplicate_column_map_object_dtype_fallback():
    from fractions import Fraction

    from repro.sampling import duplicate_column_map

    matrix = np.array(
        [[Fraction(1, 2), Fraction(1, 2), Fraction(3, 2)]], dtype=object
    )
    assert duplicate_column_map(matrix) == {1: 0}


def test_relax_initializers_adds_fractional_inputs():
    program = parse_program(
        """
program frac;
input k;
x = 0; y = 1;
while (y < k) { y = y + 1; x = x + y; }
"""
    )
    relaxed, names = relax_initializers(program)
    assert names == ["x", "y"]
    assert "x__frac" in relaxed.inputs and "y__frac" in relaxed.inputs
    # Zero offsets reproduce original semantics.
    from repro.lang import run_program

    base = run_program(program, {"k": 5}).final_state
    zeroed = run_program(
        relaxed, {"k": 5, "x__frac": 0, "y__frac": 0}
    ).final_state
    assert base["x"] == zeroed["x"] and base["y"] == zeroed["y"]


def test_relax_initializers_respects_variable_selection():
    program = parse_program("program p;\ninput k;\nx = 0; y = 1;")
    _, names = relax_initializers(program, variables=["y"])
    assert names == ["y"]


def test_fractional_inputs_grid():
    inputs = fractional_inputs([{"k": 3}], ["x"], interval=0.5, span=1.0)
    offsets = {i["x__frac"] for i in inputs}
    assert offsets == {0, Fraction(1, 2), -Fraction(1, 2), 1, -1}
    assert inputs[0]["x__frac"] == 0  # original semantics first


def test_fractional_inputs_limit():
    inputs = fractional_inputs(
        [{"k": 1}], ["x", "y"], interval=0.25, span=1.0, limit=10
    )
    assert len(inputs) == 10


def test_fractional_sampling_produces_rational_states():
    """Fig. 8c: relaxed initial values yield dense rational samples."""
    program = parse_program(
        """
program ps4;
input k;
assume (k >= 0);
x = 0; y = 0;
while (y < k) { y = y + 1; x = x + y * y * y; }
"""
    )
    relaxed, names = relax_initializers(program, variables=["x", "y"])
    inputs = fractional_inputs([{"k": 3}], names, interval=0.5)
    traces = collect_traces(relaxed, inputs)
    states = loop_dataset(traces, 0)
    assert any(
        isinstance(s["y"], Fraction) and s["y"].denominator == 2 for s in states
    )
